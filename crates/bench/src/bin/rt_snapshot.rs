//! Real-clock runtime benchmark: drives the threaded backend with
//! concurrent client threads and emits `BENCH_rt.json` — membership-read
//! throughput (ops/sec) and read-latency p99 per read policy, plus
//! per-node mailbox high-water marks.
//!
//! ```text
//! cargo run --release -p weakset-bench --bin rt_snapshot
//! cargo run --release -p weakset-bench --bin rt_snapshot -- --out target/bench --threads 4 --ops 2000
//! ```
//!
//! This binary is also the telemetry plane's dogfood: every worker view
//! publishes into a shared [`TelemetryHub`], a [`TelemetryServer`] is
//! scraped *mid-run* for live p50/p99 (instead of waiting for the
//! workers to join and merging their registries back), and the final
//! numbers are read from `GET /snapshot.json` — the same bytes any
//! external scraper would see. A [`Watchdog`] and [`FlightRecorder`]
//! ride along so a wedged run leaves a Perfetto-loadable dump behind.
//!
//! Unlike the simulator snapshots (E1–E11), these numbers come from the
//! wall clock on real OS threads and real mailboxes, so they vary with
//! the machine and the scheduler. The CI compare gate therefore treats
//! `BENCH_rt.json` as *report-only*: deltas are printed next to the
//! gated objectives but never fail the build.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use weakset_obs::telemetry::{self, FlightRecorder, TelemetryHub, TelemetryServer, Watchdog};
use weakset_obs::{http_get, parse_prometheus, Direction, ObsSnapshot};
use weakset_runtime::prelude::*;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_store::collection::MemberEntry;
use weakset_store::msg::StoreMsg;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreServer};

const COLL: CollectionId = CollectionId(1);
const MEMBERS: u64 = 64;

fn policy_label(p: ReadPolicy) -> &'static str {
    match p {
        ReadPolicy::Primary => "primary",
        ReadPolicy::Any => "any",
        ReadPolicy::Quorum => "quorum",
        ReadPolicy::Leaderless => "leaderless",
        ReadPolicy::CausalSession => "causal_session",
    }
}

/// One `GET /snapshot.json` against the live endpoint.
fn scrape_snapshot(addr: std::net::SocketAddr) -> ObsSnapshot {
    let (status, body) =
        http_get(addr, "/snapshot.json", Duration::from_secs(2)).expect("scrape /snapshot.json");
    assert_eq!(status, 200, "snapshot endpoint answered {status}");
    ObsSnapshot::from_json(&body).expect("snapshot endpoint served canonical JSON")
}

fn main() {
    let mut out = PathBuf::from(".");
    let mut seed = 42u64;
    let mut threads = 4usize;
    let mut ops = 2000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out requires a directory")),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed requires a value")
                    .parse()
                    .expect("--seed must be an unsigned integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads requires a value")
                    .parse()
                    .expect("--threads must be a positive integer");
            }
            "--ops" => {
                ops = args
                    .next()
                    .expect("--ops requires a value")
                    .parse()
                    .expect("--ops must be a positive integer");
            }
            "--help" | "-h" => {
                eprintln!("usage: rt_snapshot [--out DIR] [--seed N] [--threads T] [--ops N]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    std::fs::create_dir_all(&out).expect("create output directory");

    // The telemetry plane: hub + black box + slow-op watchdog + scrape
    // endpoint. Worker views inherit all of it through `rt.clone()`.
    let hub = TelemetryHub::new();
    let flight = FlightRecorder::new(2048).with_dump_path(out.join("flight-rt.json"));
    let watchdog = Watchdog::spawn(
        Duration::from_secs(5),
        Duration::from_millis(250),
        hub.clone(),
        Some(flight.clone()),
    );
    let server =
        TelemetryServer::serve("127.0.0.1:0", hub.clone(), "rt", seed).expect("bind endpoint");
    println!("telemetry endpoint: http://{}/metrics", server.addr());

    // One fleet for the whole run: three store servers hosting a
    // replicated collection, pre-populated with MEMBERS elements.
    let mut rt = ThreadedRuntime::<StoreMsg>::new(seed);
    rt.attach_telemetry(hub.clone(), Duration::from_millis(25));
    rt.attach_flight_recorder(flight.clone());
    rt.attach_watchdog(watchdog.clone());
    let servers: Vec<NodeId> = (0..3).map(|i| rt.add_node(format!("s{i}"))).collect();
    for &s in &servers {
        rt.install_service(s, Box::new(StoreServer::new()));
    }
    let setup_node = rt.add_node("setup");
    let setup = StoreClient::new(setup_node, SimDuration::from_millis(500));
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    setup.create_collection(&mut rt, &cref).unwrap();
    for i in 1..=MEMBERS {
        let home = servers[(i % 3) as usize];
        setup
            .put_object(
                &mut rt,
                home,
                ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"payload"[..]),
            )
            .unwrap();
        setup
            .add_member(
                &mut rt,
                &cref,
                MemberEntry {
                    elem: ObjectId(i),
                    home,
                },
            )
            .unwrap();
    }

    let mut objectives: Vec<(String, f64, Direction)> = Vec::new();
    for policy in [
        ReadPolicy::Primary,
        ReadPolicy::Quorum,
        ReadPolicy::Leaderless,
    ] {
        let label = policy_label(policy);
        // One client node (and thus one mailbox identity) per worker
        // thread, each driving its own cloned runtime view. Views are
        // consumed by their threads: results reach us only through the
        // hub (publish on cadence, flush on drop).
        let worker_nodes: Vec<NodeId> = (0..threads)
            .map(|t| rt.add_node(format!("load.{label}.{t}")))
            .collect();
        let started = Instant::now();
        let handles: Vec<_> = worker_nodes
            .into_iter()
            .map(|node| {
                let mut view = rt.clone();
                let cref = cref.clone();
                let metric = format!("rt.read.{label}.us");
                std::thread::spawn(move || {
                    let client = StoreClient::new(node, SimDuration::from_millis(500));
                    for _ in 0..ops {
                        let t0 = Instant::now();
                        let read = client
                            .read_members(&mut view, &cref, policy)
                            .expect("read against a healthy fleet");
                        assert_eq!(read.entries.len() as u64, MEMBERS);
                        view.metrics_mut()
                            .observe(&metric, t0.elapsed().as_micros() as u64);
                    }
                })
            })
            .collect();

        // Mid-run scrape: the workers are still hammering the fleet
        // while we read live quantiles off the endpoint — the entire
        // point of the telemetry plane.
        std::thread::sleep(Duration::from_millis(120));
        let (status, text) =
            http_get(server.addr(), "/metrics", Duration::from_secs(2)).expect("scrape /metrics");
        assert_eq!(status, 200, "metrics endpoint answered {status}");
        let families = parse_prometheus(&text).expect("exposition parses");
        let live = scrape_snapshot(server.addr());
        match live.latencies.get(&format!("rt.read.{label}.us")) {
            Some(s) => println!(
                "{label:>10} (live): p50 {} us, p99 {} us after {} read(s), {} series scraped",
                s.p50_us,
                s.p99_us,
                s.count,
                families.len()
            ),
            None => println!(
                "{label:>10} (live): no samples published yet, {} series scraped",
                families.len()
            ),
        }

        for h in handles {
            h.join().expect("worker thread panicked");
        }
        let elapsed = started.elapsed().as_secs_f64();
        let total_ops = (threads * ops) as u64;
        let ops_per_sec = total_ops as f64 / elapsed.max(f64::EPSILON);
        hub.with_shared(|m| m.add(&format!("rt.read.{label}.ops"), total_ops));
        // Final per-policy quantiles come off the endpoint too — the
        // workers' drop-flush makes their last samples visible.
        let snap = scrape_snapshot(server.addr());
        let p99 = snap
            .latencies
            .get(&format!("rt.read.{label}.us"))
            .map_or(0, |s| s.p99_us);
        println!("{label:>10}: {ops_per_sec:>10.0} ops/sec, read p99 {p99} us");
        objectives.push((
            format!("rt.{label}.ops_per_sec"),
            ops_per_sec,
            Direction::HigherIsBetter,
        ));
        objectives.push((
            format!("rt.{label}.read_p99_us"),
            p99 as f64,
            Direction::LowerIsBetter,
        ));
    }

    // Report-only health tail: unclosed spans, watchdog trips, and the
    // per-node mailbox high-water marks sampled by the live gauges.
    let unclosed = rt.finish_spans();
    objectives.push((
        "rt.unclosed_spans".into(),
        unclosed.len() as f64,
        Direction::LowerIsBetter,
    ));
    objectives.push((
        "rt.watchdog_slow_ops".into(),
        watchdog.slow_ops() as f64,
        Direction::LowerIsBetter,
    ));
    rt.flush_telemetry();
    if let Err(hung) = rt.shutdown(Duration::from_secs(10)) {
        eprintln!("warning: node threads still running at shutdown: {hung:?}");
    }
    watchdog.stop();

    // The checked-in snapshot is exactly what the endpoint serves,
    // plus the objectives computed above.
    let mut frozen = scrape_snapshot(server.addr());
    for &server_node in &["s0", "s1", "s2"] {
        for name in [
            telemetry::mailbox_backlog_max(server_node),
            telemetry::queue_depth_max(server_node),
        ] {
            let high_water = frozen.gauges.get(&name).copied().unwrap_or(0);
            objectives.push((name, high_water as f64, Direction::LowerIsBetter));
        }
    }
    for (name, value, direction) in objectives {
        frozen = frozen.with_objective(&name, value, direction);
    }
    server.stop();

    let path = out.join(frozen.file_name());
    std::fs::write(&path, frozen.to_json()).expect("write snapshot");
    println!(
        "{} ({} counters, {} latencies, {} objectives)",
        path.display(),
        frozen.counters.len(),
        frozen.latencies.len(),
        frozen.objectives.len()
    );
}
