//! Emits machine-readable perf snapshots: one `BENCH_<scenario>.json`
//! per scenario (E1–E11 plus `fuzz`).
//!
//! ```text
//! cargo run -p weakset-bench --bin snapshot            # all, into cwd
//! cargo run -p weakset-bench --bin snapshot -- --out target/bench e1 e10
//! cargo run -p weakset-bench --bin snapshot -- --seed 7
//! ```
//!
//! Snapshots are deterministic: the same seed produces byte-identical
//! files, so diffs against the checked-in baselines are meaningful.

use std::path::PathBuf;
use weakset_bench::snapshot::{build, DEFAULT_SEED, SCENARIOS};

fn main() {
    let mut out = PathBuf::from(".");
    let mut seed = DEFAULT_SEED;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().expect("--out requires a directory"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed requires a value")
                    .parse()
                    .expect("--seed must be an unsigned integer");
            }
            "--help" | "-h" => {
                eprintln!("usage: snapshot [--out DIR] [--seed N] [scenario...]");
                eprintln!("scenarios: {}", SCENARIOS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = SCENARIOS.iter().map(ToString::to_string).collect();
    }
    std::fs::create_dir_all(&out).expect("create output directory");
    for id in &ids {
        let snap = build(id, seed);
        let path = out.join(snap.file_name());
        std::fs::write(&path, snap.to_json()).expect("write snapshot");
        println!(
            "{} ({} counters, {} latencies, {} objectives)",
            path.display(),
            snap.counters.len(),
            snap.latencies.len(),
            snap.objectives.len()
        );
    }
}
