//! Regenerates every experiment table (or a named subset).

use weakset_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        for table in experiments::run(id) {
            println!("{table}");
        }
    }
}
