//! The perf regression gate: diffs current `BENCH_*.json` snapshots
//! against checked-in baselines and fails on objective regressions.
//!
//! ```text
//! cargo run -p weakset-bench --bin compare -- --baseline . --current target/bench
//! cargo run -p weakset-bench --bin compare -- --tolerance 0.10 ...
//! ```
//!
//! Only *objectives* are gated (each knows whether lower or higher is
//! better); raw counters and latencies are context. A current snapshot
//! missing an objective the baseline has, or vice versa, is an error —
//! schema drift must be deliberate (regenerate the baselines).
//!
//! Exit status: 0 clean, 1 on any regression beyond the tolerance
//! (default 25%) or schema mismatch.

use std::path::{Path, PathBuf};
use weakset_bench::snapshot::SCENARIOS;
use weakset_obs::ObsSnapshot;

/// Scenarios whose snapshots carry wall-clock numbers: printed, never
/// gated.
const REPORT_ONLY: [&str; 1] = ["rt"];

fn load(dir: &Path, file: &str) -> Result<ObsSnapshot, String> {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    ObsSnapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() {
    let mut baseline = PathBuf::from(".");
    let mut current = PathBuf::from("target/bench");
    let mut tolerance = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = PathBuf::from(args.next().expect("--baseline requires a directory"))
            }
            "--current" => {
                current = PathBuf::from(args.next().expect("--current requires a directory"))
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance requires a value")
                    .parse()
                    .expect("--tolerance must be a fraction, e.g. 0.25");
            }
            "--help" | "-h" => {
                eprintln!("usage: compare [--baseline DIR] [--current DIR] [--tolerance FRAC]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut failures = 0usize;
    let mut checked = 0usize;
    for id in SCENARIOS {
        let file = format!("BENCH_{id}.json");
        let (base, cur) = match (load(&baseline, &file), load(&current, &file)) {
            (Ok(b), Ok(c)) => (b, c),
            (b, c) => {
                for r in [b, c] {
                    if let Err(e) = r {
                        eprintln!("FAIL {id}: {e}");
                    }
                }
                failures += 1;
                continue;
            }
        };
        for (name, base_obj) in &base.objectives {
            checked += 1;
            let Some(cur_obj) = cur.objectives.get(name) else {
                eprintln!("FAIL {id}/{name}: objective missing from current snapshot");
                failures += 1;
                continue;
            };
            if cur_obj.direction != base_obj.direction {
                eprintln!("FAIL {id}/{name}: objective direction changed");
                failures += 1;
                continue;
            }
            let regression = base_obj.regression(cur_obj.value);
            if regression > tolerance {
                eprintln!(
                    "FAIL {id}/{name}: {:.3} -> {:.3} ({:+.1}% past the {:.0}% tolerance, {})",
                    base_obj.value,
                    cur_obj.value,
                    regression * 100.0,
                    tolerance * 100.0,
                    base_obj.direction,
                );
                failures += 1;
            } else {
                println!(
                    "ok   {id}/{name}: {:.3} -> {:.3}",
                    base_obj.value, cur_obj.value
                );
            }
        }
        for name in cur.objectives.keys() {
            if !base.objectives.contains_key(name) {
                eprintln!(
                    "FAIL {id}/{name}: objective missing from baseline (regenerate baselines)"
                );
                failures += 1;
            }
        }
    }
    // Report-only scenarios: wall-clock numbers (the threaded-runtime
    // snapshot) vary with the machine, so their deltas are printed for
    // the log but never fail the gate.
    for id in REPORT_ONLY {
        let file = format!("BENCH_{id}.json");
        let (base, cur) = match (load(&baseline, &file), load(&current, &file)) {
            (Ok(b), Ok(c)) => (b, c),
            _ => {
                println!("info {id}: snapshot missing on one side (report-only, not gated)");
                continue;
            }
        };
        for (name, base_obj) in &base.objectives {
            if let Some(cur_obj) = cur.objectives.get(name) {
                println!(
                    "info {id}/{name}: {:.3} -> {:.3} (report-only)",
                    base_obj.value, cur_obj.value
                );
            }
        }
    }

    println!("{checked} objectives checked, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}
