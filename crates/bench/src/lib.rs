//! # weakset-bench
//!
//! The experiment harness for the weak-sets reproduction: ten
//! deterministic experiments (E1-E10) mapping the paper's figures and
//! claims to regenerable tables (see DESIGN.md §4 and EXPERIMENTS.md),
//! plus Criterion micro-benchmarks under `benches/`.
//!
//! Run all tables with `cargo run -p weakset-bench --bin experiments`,
//! or a subset with e.g. `... --bin experiments e5 e6`.
//!
//! Machine-readable perf snapshots come from `--bin snapshot` (one
//! `BENCH_<scenario>.json` per experiment plus fuzz throughput) and are
//! gated against checked-in baselines by `--bin compare`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod scenarios;
pub mod snapshot;
