//! Plain-text table formatting for experiment output.

use std::fmt;

/// A fixed-column text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends an explanatory note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a simulated duration as fractional milliseconds.
pub fn ms(d: weakset_sim::time::SimDuration) -> String {
    format!("{:.2}", d.as_micros() as f64 / 1000.0)
}

/// Formats a ratio as a percentage.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.0}%", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::time::SimDuration;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("note: a note"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(ms(SimDuration::from_micros(1500)), "1.50");
        assert_eq!(pct(1, 2), "50%");
        assert_eq!(pct(0, 0), "n/a");
    }
}
