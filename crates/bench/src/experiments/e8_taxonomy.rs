//! E8 — Section 4: the Garcia-Molina & Wiederhold classification.
//!
//! Runs each design point in a constraint-respecting adversarial
//! environment, classifies every *completed* run empirically with
//! [`weakset_spec::taxonomy::classify_run`], and checks the weakest
//! observed class against the paper's static mapping (a guarantee floor —
//! observations may classify stronger). A second table classifies the
//! *partial* results left behind by failed runs, which is where the
//! "weak consistency" of Figures 3/4 becomes visible: a truncated
//! first-vintage result is a strict subset of one state.

use crate::report::Table;
use crate::scenarios::{drive, populated_set, schedule_churn_over, schedule_growth, wan};
use weakset::prelude::*;
use weakset_sim::time::SimDuration;
use weakset_spec::checker::Figure;
use weakset_spec::taxonomy::{classify_run, paper_class, Consistency, Currency, QueryClass};

/// One figure's classification outcome.
pub struct Row {
    /// The figure.
    pub figure: Figure,
    /// The paper's static class.
    pub paper: QueryClass,
    /// The weakest class observed over the completed runs.
    pub observed: QueryClass,
    /// Whether the observation is at least as strong as the paper's
    /// floor.
    pub within_guarantee: bool,
}

fn weaker_consistency(a: Consistency, b: Consistency) -> Consistency {
    use Consistency::*;
    match (a, b) {
        (None, _) | (_, None) => None,
        (Weak, _) | (_, Weak) => Weak,
        _ => Strong,
    }
}

fn weaker_currency(a: Currency, b: Currency) -> Currency {
    if a == Currency::FirstBound || b == Currency::FirstBound {
        Currency::FirstBound
    } else {
        Currency::FirstVintage
    }
}

fn at_least(observed: QueryClass, floor: QueryClass) -> bool {
    let cons_ok = match floor.consistency {
        Consistency::None => true,
        Consistency::Weak => observed.consistency != Consistency::None,
        Consistency::Strong => observed.consistency == Consistency::Strong,
    };
    let curr_ok = match floor.currency {
        Currency::FirstBound => true,
        Currency::FirstVintage => observed.currency == Currency::FirstVintage,
    };
    cons_ok && curr_ok
}

fn classify_one(figure: Figure, seed: u64, with_partition: bool) -> (QueryClass, bool) {
    let mut w = wan(800 + seed, 4, SimDuration::from_millis(5));
    let set = populated_set(&mut w, 16, SimDuration::from_millis(200));
    let semantics = match figure {
        Figure::Fig1 | Figure::Fig3 | Figure::Fig4 => Semantics::Snapshot,
        Figure::Fig5 => Semantics::GrowOnly,
        Figure::Fig6 => Semantics::Optimistic,
    };
    // Constraint-respecting churn per figure.
    match figure {
        Figure::Fig1 | Figure::Fig3 => {} // immutable
        Figure::Fig4 | Figure::Fig6 => {
            let now = w.world.now();
            schedule_churn_over(
                &mut w,
                &set,
                now,
                SimDuration::from_millis(25),
                8,
                0.5,
                16,
                seed,
            );
        }
        Figure::Fig5 => {
            let now = w.world.now();
            schedule_growth(&mut w, &set, now, SimDuration::from_millis(30), 6);
        }
    }
    if with_partition {
        let victim = w.servers[3];
        w.world.schedule_fault(
            w.world.now() + SimDuration::from_millis(60),
            weakset_sim::fault::FaultAction::Partition(vec![victim]),
        );
    }
    let mut it = set.elements_observed(semantics);
    let (_, step, _) = drive(&mut w.world, &mut it, 5, SimDuration::from_millis(20));
    let comp = it.take_computation(&w.world).expect("observed");
    let run = comp.runs.first().expect("one run recorded");
    (classify_run(&comp, run), step == IterStep::Done)
}

/// Classification of completed runs, per figure.
pub fn rows() -> Vec<Row> {
    Figure::ALL
        .into_iter()
        .map(|figure| {
            let mut observed = QueryClass {
                consistency: Consistency::Strong,
                currency: Currency::FirstVintage,
            };
            let mut completed = 0;
            for seed in 0..6 {
                let (c, done) = classify_one(figure, seed, false);
                if done {
                    completed += 1;
                    observed = QueryClass {
                        consistency: weaker_consistency(observed.consistency, c.consistency),
                        currency: weaker_currency(observed.currency, c.currency),
                    };
                }
            }
            assert!(completed > 0, "no completed runs for {figure:?}");
            let paper = paper_class(figure);
            Row {
                figure,
                paper,
                observed,
                within_guarantee: at_least(observed, paper),
            }
        })
        .collect()
}

/// Classification of the partial results of *failed* snapshot runs
/// (Figures 3/4 under a mid-run partition): `(figure, class)`.
pub fn partial_rows() -> Vec<(Figure, QueryClass)> {
    [Figure::Fig3, Figure::Fig4]
        .into_iter()
        .map(|figure| {
            let (c, done) = classify_one(figure, 3, true);
            assert!(!done, "partition must fail the snapshot run");
            (figure, c)
        })
        .collect()
}

/// Formats the mapping as the E8 tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E8a (Section 4): GM&W classification of completed runs",
        &[
            "figure",
            "paper class (floor)",
            "weakest observed class",
            "within guarantee",
        ],
    );
    for r in rows() {
        t.row(&[
            format!("{:?}", r.figure),
            r.paper.to_string(),
            r.observed.to_string(),
            r.within_guarantee.to_string(),
        ]);
    }
    t.note("paper classes are guarantees (floors); completed runs may classify stronger —");
    t.note("e.g. a drained snapshot IS a consistent first-vintage snapshot even under churn");

    let mut t2 = Table::new(
        "E8b: classification of partial results from failed runs",
        &["figure", "partial-result class"],
    );
    for (figure, c) in partial_rows() {
        t2.row(&[format!("{figure:?}"), c.to_string()]);
    }
    t2.note("truncated first-vintage results are weak: a strict subset of one state");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_stays_within_its_guarantee() {
        for r in rows() {
            assert!(r.within_guarantee, "{:?}", r.figure);
        }
    }

    #[test]
    fn immutable_figures_classify_strong_first_vintage() {
        for r in rows() {
            if matches!(r.figure, Figure::Fig1 | Figure::Fig3) {
                assert_eq!(
                    r.observed.consistency,
                    Consistency::Strong,
                    "{:?}",
                    r.figure
                );
                assert_eq!(r.observed.currency, Currency::FirstVintage);
            }
        }
    }

    #[test]
    fn snapshot_under_churn_stays_first_vintage() {
        let rows = rows();
        let r = rows
            .iter()
            .find(|r| r.figure == Figure::Fig4)
            .expect("fig4");
        assert_eq!(r.observed.currency, Currency::FirstVintage);
    }

    #[test]
    fn current_state_figures_are_first_bound() {
        for r in rows() {
            if matches!(r.figure, Figure::Fig5 | Figure::Fig6) {
                assert_eq!(r.observed.currency, Currency::FirstBound, "{:?}", r.figure);
            }
        }
    }

    #[test]
    fn failed_runs_leave_weak_partial_results() {
        for (figure, c) in partial_rows() {
            assert_eq!(c.consistency, Consistency::Weak, "{figure:?}");
            assert_eq!(c.currency, Currency::FirstVintage, "{figure:?}");
        }
    }
}
