//! E2 — Figure 3: immutable set with failures (pessimistic).
//!
//! Sweeps the fraction of servers partitioned away and measures, over
//! many seeded trials: how often the iterator signals the failure
//! exception vs terminating normally, how much of the set it yields
//! before failing, and that every recorded run conforms to Figure 3.
//!
//! Expected shape: with no partition every run returns; once any member's
//! home is unreachable every run fails (pessimism), after having yielded
//! approximately the reachable fraction of the set.

use crate::report::{pct, Table};
use crate::scenarios::{populated_set, wan};
use weakset::prelude::*;
use weakset_sim::time::SimDuration;
use weakset_spec::checker::{check_computation, Figure};

const N_ELEMS: usize = 64;
const N_SERVERS: usize = 8;
const TRIALS: u64 = 10;

/// One sweep point (aggregated over trials).
pub struct Point {
    /// Servers partitioned away (of `N_SERVERS`).
    pub cut: usize,
    /// Trials that terminated normally.
    pub returned: usize,
    /// Trials that signalled failure.
    pub failed: usize,
    /// Mean elements yielded per trial.
    pub mean_yielded: f64,
    /// Trials whose recorded run conformed to Figure 3.
    pub conforming: usize,
}

/// Runs the sweep.
pub fn points() -> Vec<Point> {
    [0usize, 1, 2, 4]
        .into_iter()
        .map(|cut| {
            let mut returned = 0;
            let mut failed = 0;
            let mut conforming = 0;
            let mut total_yields = 0usize;
            for trial in 0..TRIALS {
                let mut w = wan(200 + trial, N_SERVERS, SimDuration::from_millis(5));
                let set = populated_set(&mut w, N_ELEMS, SimDuration::from_millis(200));
                // Partition the last `cut` servers (never the membership
                // home, servers[0], so the set object stays accessible).
                if cut > 0 {
                    let side: Vec<_> = w.servers[N_SERVERS - cut..].to_vec();
                    w.world.topology_mut().partition(&side);
                }
                let mut it = set.elements_observed(Semantics::Snapshot);
                let mut yields = 0;
                let outcome = loop {
                    match it.next(&mut w.world) {
                        IterStep::Yielded(_) => yields += 1,
                        step => break step,
                    }
                };
                total_yields += yields;
                match outcome {
                    IterStep::Done => returned += 1,
                    IterStep::Failed(_) => failed += 1,
                    other => panic!("unexpected {other:?}"),
                }
                let comp = it.take_computation(&w.world).expect("observed");
                if check_computation(Figure::Fig3, &comp).is_ok() {
                    conforming += 1;
                }
            }
            Point {
                cut,
                returned,
                failed,
                mean_yielded: total_yields as f64 / TRIALS as f64,
                conforming,
            }
        })
        .collect()
}

/// Formats the sweep as the E2 table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E2 (Figure 3): immutable set with failures — partition sweep",
        &[
            "servers cut (of 8)",
            "returned",
            "failed",
            "mean yielded (of 64)",
            "fig3 conforms",
        ],
    );
    for p in points() {
        t.row(&[
            p.cut.to_string(),
            pct(p.returned, TRIALS as usize),
            pct(p.failed, TRIALS as usize),
            format!("{:.1}", p.mean_yielded),
            pct(p.conforming, TRIALS as usize),
        ]);
    }
    t.note("expected: fail rate jumps to 100% once any member is unreachable;");
    t.note("yields fall roughly with the reachable fraction (64 × (8-cut)/8)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_partition_always_returns() {
        let ps = points();
        assert_eq!(ps[0].cut, 0);
        assert_eq!(ps[0].returned, TRIALS as usize);
        assert_eq!(ps[0].failed, 0);
        assert_eq!(ps[0].mean_yielded, N_ELEMS as f64);
    }

    #[test]
    fn any_partition_fails_pessimistically() {
        for p in points().iter().skip(1) {
            assert_eq!(p.failed, TRIALS as usize, "cut={}", p.cut);
        }
    }

    #[test]
    fn yields_track_reachable_fraction() {
        for p in points() {
            let expected = N_ELEMS as f64 * (N_SERVERS - p.cut) as f64 / N_SERVERS as f64;
            assert!(
                (p.mean_yielded - expected).abs() <= 1.0,
                "cut={} mean={} expected={expected}",
                p.cut,
                p.mean_yielded
            );
        }
    }

    #[test]
    fn every_trial_conforms() {
        for p in points() {
            assert_eq!(p.conforming, TRIALS as usize, "cut={}", p.cut);
        }
    }
}
