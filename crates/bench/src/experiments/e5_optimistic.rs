//! E5 — Figure 6: growing and shrinking set, optimistic failure handling.
//!
//! A partition cuts half the servers before the run; it heals after a
//! configurable repair time (or never). The optimistic iterator never
//! fails: it yields everything reachable, blocks, and — once the heal
//! lands — resumes and finishes. Availability degrades gracefully with
//! repair time instead of collapsing, and every run conforms to
//! Figure 6.

use crate::report::{ms, Table};
use crate::scenarios::{drive, populated_set, wan};
use weakset::prelude::*;
use weakset_sim::fault::FaultPlan;
use weakset_sim::time::SimDuration;
use weakset_spec::checker::{check_computation, Figure};
use weakset_spec::specs::fig6;

const N_ELEMS: usize = 32;
const N_SERVERS: usize = 8;

/// One sweep point.
pub struct Point {
    /// Repair time in ms (`None` = the partition never heals).
    pub heal_after_ms: Option<u64>,
    /// Elements eventually yielded.
    pub yielded: usize,
    /// Blocked invocations along the way.
    pub blocked: usize,
    /// Final step: true = terminated, false = still blocked at budget.
    pub terminated: bool,
    /// Total simulated time spent.
    pub sim_time: SimDuration,
    /// Figure 6 conformance (including the §3.4 membership property).
    pub conforms: bool,
}

/// Runs the sweep.
pub fn points() -> Vec<Point> {
    [Some(100u64), Some(500), Some(2_000), None]
        .into_iter()
        .map(|heal_after_ms| {
            let mut w = wan(500, N_SERVERS, SimDuration::from_millis(5));
            let set = populated_set(&mut w, N_ELEMS, SimDuration::from_millis(200));
            // Cut half the servers (not the membership home).
            let side: Vec<_> = w.servers[N_SERVERS / 2..].to_vec();
            w.world.topology_mut().partition(&side);
            if let Some(h) = heal_after_ms {
                let at = w.world.now() + SimDuration::from_millis(h);
                let _ = at; // heal is absolute below for clarity
                w.world.install_plan(
                    &FaultPlan::none().heal_at(w.world.now() + SimDuration::from_millis(h)),
                );
            }
            let start = w.world.now();
            let mut it = set.elements_observed(Semantics::Optimistic);
            let (yielded, step, blocked) =
                drive(&mut w.world, &mut it, 40, SimDuration::from_millis(50));
            let sim_time = w.world.now().saturating_since(start);
            let comp = it.take_computation(&w.world).expect("observed");
            let conforms = check_computation(Figure::Fig6, &comp).is_ok()
                && comp
                    .runs
                    .iter()
                    .all(|run| fig6::yields_were_members(&comp, run));
            assert!(
                !matches!(step, IterStep::Failed(_)),
                "optimistic runs never fail"
            );
            Point {
                heal_after_ms,
                yielded,
                blocked,
                terminated: step == IterStep::Done,
                sim_time,
                conforms,
            }
        })
        .collect()
}

/// Formats the sweep as the E5 table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E5 (Figure 6): optimistic iteration vs repair time (4 of 8 servers cut)",
        &[
            "heal after (ms)",
            "yielded (of 32)",
            "blocked invocations",
            "terminated",
            "sim time (ms)",
            "fig6 conforms",
        ],
    );
    for p in points() {
        t.row(&[
            p.heal_after_ms
                .map_or("never".to_string(), |h| h.to_string()),
            p.yielded.to_string(),
            p.blocked.to_string(),
            p.terminated.to_string(),
            ms(p.sim_time),
            p.conforms.to_string(),
        ]);
    }
    t.note("expected: every healed run eventually yields all 32 (availability = 100%),");
    t.note("paying block time that grows with repair time; the never-healed run yields");
    t.note("the reachable half and blocks instead of failing (contrast E2/E4b)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::time::SimTime as _ST;

    #[test]
    fn healed_runs_reach_full_availability() {
        for p in points() {
            if p.heal_after_ms.is_some() {
                assert_eq!(p.yielded, N_ELEMS, "heal={:?}", p.heal_after_ms);
                assert!(p.terminated);
            }
        }
    }

    #[test]
    fn unhealed_run_yields_reachable_half_and_blocks() {
        let p = points().into_iter().last().expect("points");
        assert_eq!(p.heal_after_ms, None);
        assert_eq!(p.yielded, N_ELEMS / 2);
        assert!(!p.terminated);
        assert!(p.blocked > 0);
    }

    #[test]
    fn block_time_grows_with_repair_time() {
        let ps = points();
        assert!(ps[0].sim_time < ps[1].sim_time);
        assert!(ps[1].sim_time < ps[2].sim_time);
        let _ = _ST::ZERO;
    }

    #[test]
    fn all_runs_conform_to_fig6() {
        for p in points() {
            assert!(p.conforms, "heal={:?}", p.heal_after_ms);
        }
    }
}
