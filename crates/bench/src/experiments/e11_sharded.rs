//! E11 — sharded membership reads: batched quorum rounds vs the
//! unsharded-style sequential baseline.
//!
//! A `ShardedWeakSet` splits one logical set into `S` sub-collections
//! co-located on a single three-node replica group. Reading membership
//! shard by shard (what a client without the batch envelope would do)
//! costs `S` quorum round-trips and `3·S` RPCs; the batched path folds
//! all co-located shard reads into one envelope per node — three RPCs
//! and ONE round-trip, no matter how many shards the set has. The sweep
//! shows the gap growing linearly with the shard count.

use crate::report::{ms, Table};
use crate::scenarios::wan;
use weakset::prelude::*;
use weakset_sim::time::SimDuration;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{ReadPolicy, StoreClient, StoreWorld};

/// Read rounds measured per mode (applies to both timing fields below).
const ROUNDS: usize = 4;

/// One sweep point.
pub struct Point {
    /// Shard count.
    pub shards: usize,
    /// Members spread over the shards.
    pub members: usize,
    /// Simulated time for the sequential per-shard read rounds.
    pub sequential_time: SimDuration,
    /// RPCs sent by the sequential rounds.
    pub sequential_rpcs: u64,
    /// Simulated time for the batched read rounds.
    pub batched_time: SimDuration,
    /// RPCs sent by the batched rounds.
    pub batched_rpcs: u64,
}

impl Point {
    /// Sequential-over-batched time ratio (higher = batching wins more).
    pub fn speedup(&self) -> f64 {
        let b = self.batched_time.as_micros().max(1);
        self.sequential_time.as_micros() as f64 / b as f64
    }
}

fn build_sharded(
    w: &mut crate::scenarios::Wan,
    shards: usize,
    members: usize,
) -> (ShardedWeakSet, StoreClient) {
    let client = StoreClient::new(w.client_node, SimDuration::from_millis(200));
    // Every shard lives on the SAME three-node group: that is the
    // co-location the batch envelope exploits.
    let groups: Vec<ShardGroup> = (0..shards)
        .map(|_| ShardGroup {
            home: w.servers[0],
            replicas: w.servers[1..].to_vec(),
        })
        .collect();
    let config = IterConfig {
        read_policy: ReadPolicy::Quorum,
        ..IterConfig::default()
    };
    let set = ShardedWeakSet::create(
        &mut w.world,
        CollectionId(1),
        client.clone(),
        &groups,
        config,
    )
    .expect("healthy world at setup");
    for i in 0..members {
        set.add(
            &mut w.world,
            ObjectRecord::new(ObjectId(i as u64 + 1), format!("obj-{i}"), vec![b'x'; 64]),
            w.servers[i % w.servers.len()],
        )
        .expect("healthy world at setup");
    }
    (set, client)
}

/// `ROUNDS` whole-set reads, one quorum round-trip per shard per
/// round (the pre-batching client behavior).
fn sequential_rounds(w: &mut StoreWorld, set: &ShardedWeakSet, client: &StoreClient) {
    for _ in 0..ROUNDS {
        for i in 0..set.shard_count() {
            client
                .read_members(w, set.shard(i).cref(), ReadPolicy::Quorum)
                .expect("healthy world");
        }
    }
}

/// `ROUNDS` whole-set reads through the batch envelope.
fn batched_rounds(w: &mut StoreWorld, set: &ShardedWeakSet) {
    for _ in 0..ROUNDS {
        for r in set.read_all_batched(w) {
            r.expect("healthy world");
        }
    }
}

/// Runs the sweep.
pub fn points() -> Vec<Point> {
    [2usize, 4, 8]
        .into_iter()
        .map(|shards| {
            let members = shards * 6;
            let mut w = wan(300 + shards as u64, 3, SimDuration::from_millis(5));
            let (set, client) = build_sharded(&mut w, shards, members);

            let rpc0 = w.world.metrics().counter("rpc.sent");
            let t0 = w.world.now();
            sequential_rounds(&mut w.world, &set, &client);
            let sequential_time = w.world.now().saturating_since(t0);
            let rpc1 = w.world.metrics().counter("rpc.sent");
            let t1 = w.world.now();
            batched_rounds(&mut w.world, &set);
            let batched_time = w.world.now().saturating_since(t1);
            let rpc2 = w.world.metrics().counter("rpc.sent");

            Point {
                shards,
                members,
                sequential_time,
                sequential_rpcs: rpc1 - rpc0,
                batched_time,
                batched_rpcs: rpc2 - rpc1,
            }
        })
        .collect()
}

/// Formats the sweep as the E11 table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E11: sharded membership reads — batched envelope vs sequential per-shard quorum",
        &[
            "shards",
            "members",
            "seq time (ms)",
            "seq RPCs",
            "batched time (ms)",
            "batched RPCs",
            "speedup",
        ],
    );
    for p in points() {
        t.row(&[
            p.shards.to_string(),
            p.members.to_string(),
            ms(p.sequential_time),
            p.sequential_rpcs.to_string(),
            ms(p.batched_time),
            p.batched_rpcs.to_string(),
            format!("{:.1}x", p.speedup()),
        ]);
    }
    t.note("expected: batched time flat (~1 RTT/round) while sequential grows with shards; batched RPCs stay at 3/round");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_beats_sequential_and_the_gap_grows() {
        let ps = points();
        for p in &ps {
            assert!(
                p.speedup() > 1.5,
                "shards={}: speedup {:.2}",
                p.shards,
                p.speedup()
            );
            assert!(
                p.batched_rpcs < p.sequential_rpcs,
                "shards={}: batching must send fewer RPCs",
                p.shards
            );
        }
        assert!(
            ps.last().unwrap().speedup() > ps.first().unwrap().speedup(),
            "the win grows with shard count"
        );
    }

    #[test]
    fn batched_rpc_count_is_per_node_not_per_shard() {
        for p in points() {
            // 3 replica nodes, one envelope each per round.
            assert_eq!(p.batched_rpcs, (3 * ROUNDS) as u64, "shards={}", p.shards);
            assert_eq!(
                p.sequential_rpcs,
                (3 * p.shards * ROUNDS) as u64,
                "shards={}",
                p.shards
            );
        }
    }

    #[test]
    fn table_renders() {
        let t = &run()[0];
        assert_eq!(t.len(), 3);
        assert!(t.to_string().contains("E11"));
    }
}
