//! E7 — the availability claim (§1.1): partial results despite failures.
//!
//! Under a partition, the strict `ls` collapses (all-or-nothing) while
//! the dynamic-set listing returns everything reachable and resumes after
//! repair. Includes the paper's signature mobile scenario: a laptop that
//! disconnects mid-listing keeps what it has and finishes after
//! reconnecting.

use crate::report::{pct, Table};
use weakset::prelude::PrefetchConfig;
use weakset_fs::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::prelude::{StoreServer, StoreWorld};

const N_FILES: usize = 64;
const N_VOLUMES: usize = 8;

fn fs_world(seed: u64) -> (StoreWorld, FileSystem, Vec<NodeId>, NodeId) {
    let mut topo = Topology::new();
    let client = topo.add_node("laptop", 0);
    let vols: Vec<NodeId> = topo.add_servers("vol", N_VOLUMES);
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(5)),
    );
    for &v in &vols {
        world.install_service(v, Box::new(StoreServer::new()));
    }
    let mut fs = FileSystem::format(&mut world, client, vols[0], SimDuration::from_millis(300))
        .expect("healthy world");
    flat_dir(&mut world, &mut fs, &FsPath::root(), N_FILES, 64, &vols).expect("healthy world");
    (world, fs, vols, client)
}

/// One partition-sweep point.
pub struct Point {
    /// Volumes partitioned away (of 8; never the membership home).
    pub cut: usize,
    /// Whether strict `ls` succeeded.
    pub ls_ok: bool,
    /// Entries strict `ls` returned (0 on failure — it is
    /// all-or-nothing).
    pub ls_entries: usize,
    /// Entries `dynls` listed immediately.
    pub dynls_entries: usize,
    /// Entries `dynls` reported pending (unreachable).
    pub dynls_pending: usize,
}

/// Runs the partition sweep.
pub fn points() -> Vec<Point> {
    [0usize, 2, 4, 6]
        .into_iter()
        .map(|cut| {
            let (mut w, fs, vols, _client) = fs_world(700 + cut as u64);
            if cut > 0 {
                let side: Vec<_> = vols[N_VOLUMES - cut..].to_vec();
                w.topology_mut().partition(&side);
            }
            let (ls_ok, ls_entries) = match fs.ls(&mut w, &FsPath::root()) {
                Ok(entries) => (true, entries.len()),
                Err(_) => (false, 0),
            };
            let mut listing = fs
                .dynls(&mut w, &FsPath::root(), PrefetchConfig::default())
                .expect("membership home reachable");
            let (entries, end) = listing.drain_available(&mut w);
            let pending = match end {
                DynLsStep::Complete => 0,
                DynLsStep::Partial { unreachable } => unreachable,
                DynLsStep::Entry(_) => unreachable!(),
            };
            Point {
                cut,
                ls_ok,
                ls_entries,
                dynls_entries: entries.len(),
                dynls_pending: pending,
            }
        })
        .collect()
}

/// Result of the mobile-disconnection scenario.
pub struct MobileOutcome {
    /// Entries fetched before the laptop disconnected.
    pub before: usize,
    /// Entries that arrived while disconnected (must be 0).
    pub while_disconnected: usize,
    /// Entries fetched after reconnection.
    pub after: usize,
}

/// Runs the mobile scenario: disconnect after ~a third of the listing,
/// reconnect later, finish.
pub fn mobile() -> MobileOutcome {
    let (mut w, fs, _vols, client) = fs_world(710);
    let mut mc = MobileClient::new(client);
    let mut listing = fs
        .dynls(
            &mut w,
            &FsPath::root(),
            PrefetchConfig {
                window: 4,
                fetch_timeout: SimDuration::from_millis(60),
                ..Default::default()
            },
        )
        .expect("connected at open");
    let mut before = 0;
    for _ in 0..N_FILES / 3 {
        match listing.next(&mut w) {
            DynLsStep::Entry(_) => before += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    mc.disconnect(&mut w);
    let (got, _end) = listing.drain_available(&mut w);
    let while_disconnected = got.len();
    mc.reconnect(&mut w);
    listing.retry();
    let mut after = 0;
    loop {
        match listing.next(&mut w) {
            DynLsStep::Entry(_) => after += 1,
            DynLsStep::Complete => break,
            DynLsStep::Partial { .. } => {
                listing.retry();
            }
        }
    }
    MobileOutcome {
        before,
        while_disconnected,
        after,
    }
}

/// Formats the sweep + mobile scenario as the E7 tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E7a: availability under partition — strict ls vs dynls",
        &[
            "volumes cut (of 8)",
            "ls outcome",
            "ls entries",
            "dynls listed",
            "dynls pending",
            "dynls availability",
        ],
    );
    for p in points() {
        t.row(&[
            p.cut.to_string(),
            if p.ls_ok { "ok" } else { "FAILED" }.to_string(),
            p.ls_entries.to_string(),
            p.dynls_entries.to_string(),
            p.dynls_pending.to_string(),
            pct(p.dynls_entries, N_FILES),
        ]);
    }
    t.note("expected: ls is all-or-nothing (fails at any cut); dynls lists the reachable");
    t.note("fraction ≈ (8-cut)/8 and reports the rest pending");

    let m = mobile();
    let mut t2 = Table::new(
        "E7b: mobile client disconnects mid-listing, reconnects, finishes",
        &["phase", "entries fetched"],
    );
    t2.row(&["before disconnect".to_string(), m.before.to_string()]);
    t2.row(&[
        "while disconnected".to_string(),
        m.while_disconnected.to_string(),
    ]);
    t2.row(&["after reconnect".to_string(), m.after.to_string()]);
    t2.note("expected: at most the already-in-flight window drains after disconnect;");
    t2.note("the listing completes after reconnection, nothing lost or duplicated");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ls_is_all_or_nothing() {
        for p in points() {
            if p.cut == 0 {
                assert!(p.ls_ok);
                assert_eq!(p.ls_entries, N_FILES);
            } else {
                assert!(!p.ls_ok, "cut={}", p.cut);
                assert_eq!(p.ls_entries, 0);
            }
        }
    }

    #[test]
    fn dynls_availability_tracks_reachable_fraction() {
        for p in points() {
            let expected = N_FILES * (N_VOLUMES - p.cut) / N_VOLUMES;
            assert_eq!(p.dynls_entries, expected, "cut={}", p.cut);
            assert_eq!(p.dynls_pending, N_FILES - expected);
        }
    }

    #[test]
    fn mobile_listing_survives_disconnection() {
        let m = mobile();
        assert!(m.before > 0);
        // Replies already in flight when the link dropped may still
        // drain, but nothing beyond the window of 4 can.
        assert!(m.while_disconnected <= 4, "{}", m.while_disconnected);
        assert_eq!(m.before + m.while_disconnected + m.after, N_FILES);
        assert!(m.after > 0);
    }
}
