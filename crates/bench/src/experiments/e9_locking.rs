//! E9 — §3.1's warning made measurable: what strong consistency costs.
//!
//! While a locked iteration runs, writers are refused. Sweeps the set
//! size (which stretches the lock hold time) and compares writer success
//! against the same workload under snapshot iteration (no locks). Also
//! reproduces the disconnection hazard: a client that vanishes mid-run
//! leaves the lock stuck until repair.

use crate::report::{ms, pct, Table};
use crate::scenarios::{populated_set, wan, Wan};
use weakset::prelude::*;
use weakset_sim::time::SimDuration;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{ObjectId, ObjectRecord};
use weakset_store::prelude::{StoreClient, StoreError};

/// One sweep point.
pub struct Point {
    /// Set size.
    pub n: usize,
    /// Iteration semantics.
    pub semantics: Semantics,
    /// Simulated lock hold / iteration time.
    pub run_time: SimDuration,
    /// Writer attempts during the run.
    pub writer_attempts: usize,
    /// Writer attempts refused with `Locked`.
    pub writer_stalled: usize,
}

fn writer_task(wan: &mut Wan, set: &WeakSet, count: usize, interval: SimDuration) {
    let cref = set.cref().clone();
    let home = wan.servers[1];
    for k in 0..count {
        let at = wan.world.now() + interval.saturating_mul(k as u64 + 1);
        let cref = cref.clone();
        // Loopback environment action (see scenarios::schedule_churn_over):
        // the lock check still happens at the primary.
        wan.world
            .spawn_at(at, move |w: &mut weakset_store::prelude::StoreWorld| {
                let id = ObjectId(50_000 + k as u64);
                let rec = ObjectRecord::new(id, format!("w{k}"), &b"w"[..]);
                if let Some(srv) = w.service_mut::<weakset_store::prelude::StoreServer>(home) {
                    srv.apply(weakset_store::msg::StoreMsg::PutObject(rec));
                }
                let result = w
                    .service_mut::<weakset_store::prelude::StoreServer>(cref.home)
                    .map(|primary| {
                        primary.apply(weakset_store::msg::StoreMsg::AddMember {
                            coll: cref.id,
                            entry: MemberEntry { elem: id, home },
                        })
                    });
                let name = match result {
                    Some(weakset_store::msg::StoreMsg::Members { .. }) => "writer.ok",
                    Some(weakset_store::msg::StoreMsg::Locked) => "writer.stalled",
                    _ => "writer.failed",
                };
                w.metrics_mut().incr(name);
            });
    }
}

/// Runs the sweep.
pub fn points() -> Vec<Point> {
    let mut out = Vec::new();
    for &n in &[8usize, 32, 128] {
        for semantics in [Semantics::Locked, Semantics::Snapshot] {
            let mut w = wan(900 + n as u64, 4, SimDuration::from_millis(5));
            let set = populated_set(&mut w, n, SimDuration::from_millis(200));
            // One writer op per expected yield (~10ms each), so every
            // attempt lands while the iteration is still running.
            let attempts = n;
            writer_task(&mut w, &set, attempts, SimDuration::from_millis(10));
            let start = w.world.now();
            let mut it = set.elements(semantics);
            loop {
                match it.next(&mut w.world) {
                    IterStep::Yielded(_) => {}
                    IterStep::Done => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            let run_time = w.world.now().saturating_since(start);
            // Let stragglers land.
            w.world.run_to_quiescence();
            let stalled = w.world.metrics().counter("writer.stalled") as usize;
            let ok = w.world.metrics().counter("writer.ok") as usize;
            out.push(Point {
                n,
                semantics,
                run_time,
                writer_attempts: stalled + ok,
                writer_stalled: stalled,
            });
        }
    }
    out
}

/// Outcome of the disconnection hazard scenario.
pub struct HazardOutcome {
    /// Writer result while the lock was stuck.
    pub stalled_while_stuck: bool,
    /// Writer result after the disconnected reader returned and
    /// released.
    pub recovered: bool,
}

/// The §3.1 hazard: a reader's disconnection extends the lock
/// indefinitely.
pub fn hazard() -> HazardOutcome {
    let mut w = wan(910, 3, SimDuration::from_millis(5));
    let set = populated_set(&mut w, 8, SimDuration::from_millis(200));
    let mut it = set.elements(Semantics::Locked);
    // Take the lock and yield a couple of elements.
    assert!(matches!(it.next(&mut w.world), IterStep::Yielded(_)));
    assert!(matches!(it.next(&mut w.world), IterStep::Yielded(_)));
    // The reader's laptop drops off the network mid-run.
    let reader_node = set.client().node();
    w.world.topology_mut().partition(&[reader_node]);
    // Its next invocation fails and its release RPC is lost silently.
    let step = it.next(&mut w.world);
    assert!(matches!(step, IterStep::Failed(_)));
    // A writer elsewhere in the connected majority still stalls.
    let writer = StoreClient::new(w.servers[1], SimDuration::from_millis(100));
    let home = w.servers[0];
    let stalled_while_stuck = matches!(
        writer.add_member(
            &mut w.world,
            set.cref(),
            MemberEntry {
                elem: ObjectId(99_999),
                home
            }
        ),
        Err(StoreError::Locked)
    );
    // The laptop reconnects and releases (modelled by re-running release
    // through a reconnected abort).
    w.world.topology_mut().heal_partition();
    let releaser = StoreClient::new(reader_node, SimDuration::from_millis(100));
    releaser
        .release_read_lock(&mut w.world, set.cref())
        .expect("release after reconnect");
    let recovered = writer
        .add_member(
            &mut w.world,
            set.cref(),
            MemberEntry {
                elem: ObjectId(99_999),
                home,
            },
        )
        .is_ok();
    HazardOutcome {
        stalled_while_stuck,
        recovered,
    }
}

/// Formats the sweep + hazard as the E9 tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E9a (§3.1): writer stalls under locked vs snapshot iteration",
        &[
            "n",
            "semantics",
            "iteration time (ms)",
            "writer attempts",
            "stalled",
            "stall rate",
        ],
    );
    for p in points() {
        t.row(&[
            p.n.to_string(),
            p.semantics.to_string(),
            ms(p.run_time),
            p.writer_attempts.to_string(),
            p.writer_stalled.to_string(),
            pct(p.writer_stalled, p.writer_attempts),
        ]);
    }
    t.note("expected: locked iteration stalls ~all concurrent writers, and the stall");
    t.note("window grows linearly with n; snapshot iteration stalls none");

    let h = hazard();
    let mut t2 = Table::new(
        "E9b (§3.1): disconnection extends the lock indefinitely",
        &["phase", "writer outcome"],
    );
    t2.row(&[
        "reader disconnected, lock stuck".to_string(),
        if h.stalled_while_stuck {
            "stalled"
        } else {
            "ok"
        }
        .to_string(),
    ]);
    t2.row(&[
        "reader reconnected, lock released".to_string(),
        if h.recovered { "ok" } else { "stalled" }.to_string(),
    ]);
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locked_iteration_stalls_writers_snapshot_does_not() {
        for p in points() {
            match p.semantics {
                Semantics::Locked => {
                    assert!(
                        p.writer_stalled * 10 >= p.writer_attempts * 8,
                        "n={} stalled {}/{}",
                        p.n,
                        p.writer_stalled,
                        p.writer_attempts
                    );
                }
                Semantics::Snapshot => {
                    assert_eq!(p.writer_stalled, 0, "n={}", p.n);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn lock_hold_time_grows_with_set_size() {
        let ps = points();
        let locked: Vec<_> = ps
            .iter()
            .filter(|p| p.semantics == Semantics::Locked)
            .collect();
        assert!(locked[0].run_time < locked[1].run_time);
        assert!(locked[1].run_time < locked[2].run_time);
    }

    #[test]
    fn disconnection_hazard_reproduces() {
        let h = hazard();
        assert!(h.stalled_while_stuck);
        assert!(h.recovered);
    }
}
