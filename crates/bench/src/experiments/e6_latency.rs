//! E6 — the paper's promised performance claim (§1.1/§5): weak semantics
//! buy latency.
//!
//! Compares directory enumeration strategies over the simulated
//! distributed file system:
//!
//! * `ls` (strict baseline) — sequential, all-or-nothing, alphabetical:
//!   time-to-first-entry equals total time.
//! * `dynls w=k` — dynamic-set listing with a prefetch window of `k`:
//!   entries stream back as they arrive; total wall time ≈ `n/k` round
//!   trips and time-to-first ≈ one round trip.
//!
//! Expected shape: dynls wins total latency by roughly the window factor
//! and wins time-to-first by roughly a factor of `n`.

use crate::report::{ms, Table};
use weakset::prelude::PrefetchConfig;
use weakset_fs::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::prelude::{StoreServer, StoreWorld};

const N_VOLUMES: usize = 8;

fn fs_world_sized(
    seed: u64,
    one_way_ms: u64,
    n_files: usize,
    file_size: usize,
    bandwidth_bytes_per_ms: Option<u64>,
) -> (StoreWorld, FileSystem) {
    let mut topo = Topology::new();
    let client = topo.add_node("client", 0);
    let vols: Vec<NodeId> = topo.add_servers("vol", N_VOLUMES);
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(one_way_ms)),
    );
    if let Some(bpm) = bandwidth_bytes_per_ms {
        world.set_bandwidth(bpm, weakset_store::msg::StoreMsg::wire_size);
    }
    for &v in &vols {
        world.install_service(v, Box::new(StoreServer::new()));
    }
    let mut fs = FileSystem::format(&mut world, client, vols[0], SimDuration::from_millis(2_000))
        .expect("healthy world");
    flat_dir(
        &mut world,
        &mut fs,
        &FsPath::root(),
        n_files,
        file_size,
        &vols,
    )
    .expect("healthy world");
    (world, fs)
}

fn fs_world(seed: u64, one_way_ms: u64, n_files: usize) -> (StoreWorld, FileSystem) {
    fs_world_sized(seed, one_way_ms, n_files, 64, None)
}

/// One measurement.
pub struct Point {
    /// Files in the directory.
    pub n: usize,
    /// One-way WAN latency in ms.
    pub latency_ms: u64,
    /// Strategy label.
    pub method: &'static str,
    /// Simulated time until the first entry was available.
    pub time_to_first: SimDuration,
    /// Simulated time until the listing completed.
    pub total: SimDuration,
}

/// Runs the sweep.
pub fn points() -> Vec<Point> {
    let mut out = Vec::new();
    for &(n, latency_ms) in &[(16usize, 5u64), (64, 5), (256, 5), (64, 20)] {
        // Strict ls.
        {
            let (mut w, fs) = fs_world(600, latency_ms, n);
            let start = w.now();
            let listing = fs.ls(&mut w, &FsPath::root()).expect("healthy world");
            assert_eq!(listing.len(), n);
            let total = w.now().saturating_since(start);
            out.push(Point {
                n,
                latency_ms,
                method: "ls (strict)",
                time_to_first: total,
                total,
            });
        }
        // dynls with window sweep.
        for &window in &[1usize, 4, 16] {
            let (mut w, fs) = fs_world(601, latency_ms, n);
            let start = w.now();
            let mut listing = fs
                .dynls(
                    &mut w,
                    &FsPath::root(),
                    PrefetchConfig {
                        window,
                        fetch_timeout: SimDuration::from_millis(500),
                        ..Default::default()
                    },
                )
                .expect("healthy world");
            let mut first: Option<SimDuration> = None;
            let mut count = 0;
            loop {
                match listing.next(&mut w) {
                    DynLsStep::Entry(_) => {
                        count += 1;
                        first.get_or_insert_with(|| w.now().saturating_since(start));
                    }
                    DynLsStep::Complete => break,
                    DynLsStep::Partial { .. } => panic!("healthy world cannot be partial"),
                }
            }
            assert_eq!(count, n);
            let method: &'static str = match window {
                1 => "dynls w=1",
                4 => "dynls w=4",
                16 => "dynls w=16",
                _ => unreachable!(),
            };
            out.push(Point {
                n,
                latency_ms,
                method,
                time_to_first: first.expect("at least one entry"),
                total: w.now().saturating_since(start),
            });
        }
    }
    out
}

/// One file-size measurement under finite bandwidth.
pub struct SizePoint {
    /// Payload bytes per file.
    pub file_size: usize,
    /// Strategy label.
    pub method: &'static str,
    /// Simulated completion time.
    pub total: SimDuration,
}

/// File-size sweep over 1 MB/s links: transfer time dominates as files
/// grow; parallel prefetching overlaps the transfers.
pub fn size_points() -> Vec<SizePoint> {
    let mut out = Vec::new();
    const N: usize = 32;
    const BPM: u64 = 1_000; // 1 MB/s
    for &file_size in &[1_024usize, 16 * 1_024, 64 * 1_024] {
        {
            let (mut w, fs) = fs_world_sized(610, 5, N, file_size, Some(BPM));
            let start = w.now();
            let listing = fs.ls(&mut w, &FsPath::root()).expect("healthy world");
            assert_eq!(listing.len(), N);
            out.push(SizePoint {
                file_size,
                method: "ls (strict)",
                total: w.now().saturating_since(start),
            });
        }
        {
            let (mut w, fs) = fs_world_sized(611, 5, N, file_size, Some(BPM));
            let start = w.now();
            let mut listing = fs
                .dynls(
                    &mut w,
                    &FsPath::root(),
                    PrefetchConfig {
                        window: 8,
                        fetch_timeout: SimDuration::from_secs(10),
                        ..Default::default()
                    },
                )
                .expect("healthy world");
            let (entries, end) = listing.drain_available(&mut w);
            assert_eq!(end, DynLsStep::Complete);
            assert_eq!(entries.len(), N);
            out.push(SizePoint {
                file_size,
                method: "dynls w=8",
                total: w.now().saturating_since(start),
            });
        }
    }
    out
}

/// Formats the sweep as the E6 table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E6: directory enumeration latency — strict ls vs dynamic-set ls",
        &[
            "files",
            "one-way (ms)",
            "method",
            "time-to-first (ms)",
            "total (ms)",
        ],
    );
    for p in points() {
        t.row(&[
            p.n.to_string(),
            p.latency_ms.to_string(),
            p.method.to_string(),
            ms(p.time_to_first),
            ms(p.total),
        ]);
    }
    t.note("expected: dynls total ≈ ls/(window); dynls time-to-first ≈ one RTT regardless of n");

    let mut t2 = Table::new(
        "E6b: file-size sweep over 1 MB/s links (32 files)",
        &["file size (KB)", "method", "total (ms)"],
    );
    for p in size_points() {
        t2.row(&[
            (p.file_size / 1024).to_string(),
            p.method.to_string(),
            ms(p.total),
        ]);
    }
    t2.note("expected: totals scale with transfer time; the prefetch window overlaps");
    t2.note("transfers so dynls keeps its advantage as files grow");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(ps: &'a [Point], n: usize, l: u64, m: &str) -> &'a Point {
        ps.iter()
            .find(|p| p.n == n && p.latency_ms == l && p.method == m)
            .expect("point exists")
    }

    #[test]
    fn dynls_total_beats_ls_by_roughly_the_window() {
        let ps = points();
        let ls = find(&ps, 256, 5, "ls (strict)");
        let w16 = find(&ps, 256, 5, "dynls w=16");
        let speedup = ls.total.as_micros() as f64 / w16.total.as_micros() as f64;
        assert!(speedup > 8.0, "speedup = {speedup}");
    }

    #[test]
    fn dynls_time_to_first_is_one_rtt_scale() {
        let ps = points();
        let w16 = find(&ps, 256, 5, "dynls w=16");
        // Open (membership RTT, 10ms) + first fetch (RTT, 10ms).
        assert!(
            w16.time_to_first <= SimDuration::from_millis(25),
            "{}",
            w16.time_to_first
        );
        let ls = find(&ps, 256, 5, "ls (strict)");
        let ratio = ls.time_to_first.as_micros() as f64 / w16.time_to_first.as_micros() as f64;
        assert!(ratio > 100.0, "time-to-first ratio = {ratio}");
    }

    #[test]
    fn serial_dynls_matches_ls_shape() {
        // Window 1 has no parallelism: totals are comparable (same RPC
        // count, unordered vs sorted makes no latency difference here).
        let ps = points();
        let ls = find(&ps, 64, 5, "ls (strict)");
        let w1 = find(&ps, 64, 5, "dynls w=1");
        let ratio = w1.total.as_micros() as f64 / ls.total.as_micros() as f64;
        assert!((0.5..=1.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn size_sweep_shapes_hold() {
        let ps = size_points();
        let ls_1k = ps
            .iter()
            .find(|p| p.file_size == 1_024 && p.method == "ls (strict)")
            .unwrap();
        let ls_64k = ps
            .iter()
            .find(|p| p.file_size == 65_536 && p.method == "ls (strict)")
            .unwrap();
        // Strict ls pays every transfer serially: 64x the bytes is much
        // slower. The 10ms-per-fetch latency floor dampens the ratio
        // (1KB ≈ 11ms/fetch, 64KB ≈ 76ms/fetch → ~6.8x).
        assert!(
            ls_64k.total.as_micros() > ls_1k.total.as_micros() * 5,
            "{} vs {}",
            ls_64k.total,
            ls_1k.total
        );
        for &size in &[1_024usize, 16_384, 65_536] {
            let ls = ps
                .iter()
                .find(|p| p.file_size == size && p.method == "ls (strict)")
                .unwrap();
            let dy = ps
                .iter()
                .find(|p| p.file_size == size && p.method == "dynls w=8")
                .unwrap();
            let speedup = ls.total.as_micros() as f64 / dy.total.as_micros() as f64;
            assert!(speedup > 4.0, "size={size}: speedup {speedup}");
        }
    }

    #[test]
    fn latency_scales_everything_linearly() {
        let ps = points();
        let a = find(&ps, 64, 5, "ls (strict)");
        let b = find(&ps, 64, 20, "ls (strict)");
        let ratio = b.total.as_micros() as f64 / a.total.as_micros() as f64;
        assert!((3.0..=5.0).contains(&ratio), "ratio = {ratio}");
    }
}
