//! E1 — Figure 1: immutable set, fault-free environment.
//!
//! Reproduces the baseline specification as an executed, conformance-
//! checked run: every element of `s_first` is yielded exactly once, the
//! iterator then terminates normally, and the whole run satisfies
//! Figure 1's constraint and ensures clauses. Also reports how iteration
//! cost scales with set size (two RPCs per element: one membership read
//! amortized, one fetch each).

use crate::report::{ms, Table};
use crate::scenarios::{populated_set, wan};
use weakset::prelude::*;
use weakset_sim::time::SimDuration;
use weakset_spec::checker::{check_computation, Figure};

/// One sweep point.
pub struct Point {
    /// Set size.
    pub n: usize,
    /// Elements yielded.
    pub yielded: usize,
    /// Whether the recorded run conforms to Figure 1.
    pub conforms: bool,
    /// Total simulated iteration time.
    pub sim_time: SimDuration,
}

/// Runs the sweep.
pub fn points() -> Vec<Point> {
    [8usize, 32, 128, 512]
        .into_iter()
        .map(|n| {
            let mut w = wan(100 + n as u64, 8, SimDuration::from_millis(5));
            let set = populated_set(&mut w, n, SimDuration::from_millis(200));
            let mut it = set.elements_observed(Semantics::Snapshot);
            let start = w.world.now();
            let mut yielded = 0;
            loop {
                match it.next(&mut w.world) {
                    IterStep::Yielded(_) => yielded += 1,
                    IterStep::Done => break,
                    other => panic!("fault-free run produced {other:?}"),
                }
            }
            let sim_time = w.world.now().saturating_since(start);
            let comp = it.take_computation(&w.world).expect("observed");
            let conforms = check_computation(Figure::Fig1, &comp).is_ok();
            Point {
                n,
                yielded,
                conforms,
                sim_time,
            }
        })
        .collect()
}

/// Formats the sweep as the E1 table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E1 (Figure 1): immutable set, no failures — exact drain + conformance",
        &["n", "yielded", "fig1 conforms", "sim time (ms)", "ms/elem"],
    );
    for p in points() {
        let per = p.sim_time.as_micros() as f64 / 1000.0 / p.n as f64;
        t.row(&[
            p.n.to_string(),
            p.yielded.to_string(),
            p.conforms.to_string(),
            ms(p.sim_time),
            format!("{per:.2}"),
        ]);
    }
    t.note("expected: yielded == n, conformance always, time linear in n (~2 RPC per element)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_drains_exactly_and_conforms() {
        for p in points() {
            assert_eq!(p.yielded, p.n);
            assert!(p.conforms, "n={}", p.n);
        }
    }

    #[test]
    fn cost_scales_linearly() {
        let ps = points();
        let per0 = ps[0].sim_time.as_micros() as f64 / ps[0].n as f64;
        let last = &ps[ps.len() - 1];
        let per_last = last.sim_time.as_micros() as f64 / last.n as f64;
        // Per-element cost roughly constant (within 2x) across a 64x size
        // range.
        assert!(per_last < per0 * 2.0, "per0={per0} per_last={per_last}");
    }

    #[test]
    fn table_renders() {
        let t = &run()[0];
        assert_eq!(t.len(), 4);
        assert!(t.to_string().contains("E1"));
    }
}
