//! E4 — Figure 5: growing-only set, pessimistic failure handling.
//!
//! Two phenomena from the paper's §3.3:
//!
//! 1. "the set may grow faster than the iterator yields elements from it;
//!    an iterator satisfying this specification may never terminate" —
//!    swept here as producer interval vs consumer cost.
//! 2. Pessimism: the first unreachable member aborts the run.

use crate::report::Table;
use crate::scenarios::{populated_set, schedule_growth, wan};
use weakset::prelude::*;
use weakset_sim::time::SimDuration;
use weakset_spec::checker::{check_computation, Figure};
use weakset_store::prelude::ReadPolicy;

const N_INITIAL: usize = 10;
/// Consumer cost per yield ≈ membership read + fetch = 2 RTT = 20ms at
/// 5ms one-way.
const YIELD_COST_MS: u64 = 20;
const INVOCATION_BUDGET: usize = 120;

/// One growth-race point.
pub struct GrowthPoint {
    /// Producer interval as a multiple of the consumer's per-yield cost.
    pub interval_ratio: f64,
    /// Elements yielded within the invocation budget.
    pub yielded: usize,
    /// Whether the run terminated within the budget.
    pub terminated: bool,
    /// Whether the recorded run conformed to Figure 5.
    pub conforms: bool,
}

/// The producer/consumer race sweep.
pub fn growth_points() -> Vec<GrowthPoint> {
    [4.0f64, 2.0, 1.0, 0.5]
        .into_iter()
        .map(|interval_ratio| {
            let mut w = wan(400, 4, SimDuration::from_millis(5));
            let set = populated_set(&mut w, N_INITIAL, SimDuration::from_millis(200));
            let interval =
                SimDuration::from_micros((YIELD_COST_MS as f64 * 1000.0 * interval_ratio) as u64);
            // A long stream of producer additions.
            let now = w.world.now();
            schedule_growth(&mut w, &set, now, interval, 400);
            let mut it = set.elements_observed(Semantics::GrowOnly);
            let mut yielded = 0;
            let mut terminated = false;
            for _ in 0..INVOCATION_BUDGET {
                match it.next(&mut w.world) {
                    IterStep::Yielded(_) => yielded += 1,
                    IterStep::Done => {
                        terminated = true;
                        break;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            let comp = it.take_computation(&w.world).expect("observed");
            let conforms = check_computation(Figure::Fig5, &comp).is_ok();
            GrowthPoint {
                interval_ratio,
                yielded,
                terminated,
                conforms,
            }
        })
        .collect()
}

/// One pessimism point.
pub struct FailurePoint {
    /// When the partition hits, in yields-completed terms.
    pub cut_after_ms: u64,
    /// Elements yielded before the failure.
    pub yielded: usize,
    /// Whether the run failed (vs terminated).
    pub failed: bool,
    /// Figure 5 conformance.
    pub conforms: bool,
}

/// The pessimistic-abort sweep: a partition hits mid-run.
pub fn failure_points() -> Vec<FailurePoint> {
    [40u64, 200, 400]
        .into_iter()
        .map(|cut_after_ms| {
            let mut w = wan(410, 4, SimDuration::from_millis(5));
            let set = populated_set(&mut w, 32, SimDuration::from_millis(200));
            // Cut one non-home server at the given time (relative to the
            // start of iteration; workload setup already consumed
            // simulated time).
            let victim = w.servers[3];
            w.world.schedule_fault(
                w.world.now() + SimDuration::from_millis(cut_after_ms),
                weakset_sim::fault::FaultAction::Partition(vec![victim]),
            );
            let mut it = set.elements_observed(Semantics::GrowOnly);
            let mut yielded = 0;
            let mut failed = false;
            loop {
                match it.next(&mut w.world) {
                    IterStep::Yielded(_) => yielded += 1,
                    IterStep::Done => break,
                    IterStep::Failed(_) => {
                        failed = true;
                        break;
                    }
                    IterStep::Blocked => unreachable!("grow-only never blocks"),
                }
            }
            let comp = it.take_computation(&w.world).expect("observed");
            FailurePoint {
                cut_after_ms,
                yielded,
                failed,
                conforms: check_computation(Figure::Fig5, &comp).is_ok(),
            }
        })
        .collect()
}

/// One membership-read-policy point (the paper: "one could easily
/// specify the iterator to use a quorum or token-based scheme by
/// changing the last line").
pub struct PolicyPoint {
    /// The membership read policy.
    pub policy: ReadPolicy,
    /// Elements yielded.
    pub yielded: usize,
    /// Whether the run terminated normally.
    pub done: bool,
    /// Figure 5 conformance.
    pub conforms: bool,
}

/// The quorum ablation: the membership primary is cut mid-run. With
/// `Primary` reads the run dies; with `Quorum` (2-of-3 replicas) or
/// `Any` it finishes from the surviving replicas.
pub fn quorum_points() -> Vec<PolicyPoint> {
    use weakset_store::collection::MemberEntry;
    use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
    use weakset_store::prelude::{CollectionRef, StoreClient};

    [ReadPolicy::Primary, ReadPolicy::Quorum, ReadPolicy::Any]
        .into_iter()
        .map(|policy| {
            let mut w = wan(420, 4, SimDuration::from_millis(5));
            // Membership: primary on servers[0], replicas on 1 and 2.
            // Elements all live on servers[3] so cutting the primary
            // leaves them reachable.
            let cref = CollectionRef {
                id: CollectionId(1),
                home: w.servers[0],
                replicas: vec![w.servers[1], w.servers[2]],
            };
            let client = StoreClient::new(w.client_node, SimDuration::from_millis(200));
            client
                .create_collection(&mut w.world, &cref)
                .expect("healthy");
            let elem_home = w.servers[3];
            for i in 1..=16u64 {
                client
                    .put_object(
                        &mut w.world,
                        elem_home,
                        ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
                    )
                    .expect("healthy");
                client
                    .add_member(
                        &mut w.world,
                        &cref,
                        MemberEntry {
                            elem: ObjectId(i),
                            home: elem_home,
                        },
                    )
                    .expect("healthy");
            }
            // Cut the primary 100ms into the run.
            let victim = w.servers[0];
            w.world.schedule_fault(
                w.world.now() + SimDuration::from_millis(100),
                weakset_sim::fault::FaultAction::Partition(vec![victim]),
            );
            let config = IterConfig {
                read_policy: policy,
                ..IterConfig::default()
            };
            let set = weakset::handle::WeakSet::new(client, cref).with_config(config);
            let mut it = set.elements_observed(Semantics::GrowOnly);
            let mut yielded = 0;
            let done = loop {
                match it.next(&mut w.world) {
                    IterStep::Yielded(_) => yielded += 1,
                    IterStep::Done => break true,
                    IterStep::Failed(_) => break false,
                    IterStep::Blocked => unreachable!("grow-only never blocks"),
                }
            };
            let comp = it.take_computation(&w.world).expect("observed");
            PolicyPoint {
                policy,
                yielded,
                done,
                conforms: check_computation(Figure::Fig5, &comp).is_ok(),
            }
        })
        .collect()
}

/// Formats both sweeps as the E4 tables.
pub fn run() -> Vec<Table> {
    let mut t1 = Table::new(
        "E4a (Figure 5): producer/consumer race — (non-)termination",
        &[
            "producer interval (x consume cost)",
            "yielded (budget 120 invocations)",
            "terminated",
            "fig5 conforms",
        ],
    );
    for p in growth_points() {
        t1.row(&[
            format!("{:.1}", p.interval_ratio),
            p.yielded.to_string(),
            p.terminated.to_string(),
            p.conforms.to_string(),
        ]);
    }
    t1.note("expected: slow producers (ratio > 1) let the run terminate; at ratio <= 1 the");
    t1.note("iterator never drains the set within the budget (the paper's non-termination)");

    let mut t2 = Table::new(
        "E4b (Figure 5): pessimistic abort on unreachable member",
        &[
            "partition at (ms)",
            "yielded (of 32)",
            "failed",
            "fig5 conforms",
        ],
    );
    for p in failure_points() {
        t2.row(&[
            p.cut_after_ms.to_string(),
            p.yielded.to_string(),
            p.failed.to_string(),
            p.conforms.to_string(),
        ]);
    }
    t2.note("expected: later partitions allow more yields before the mandatory failure;");
    t2.note("a partition after the run drains (640ms) does not fail it");

    let mut t3 = Table::new(
        "E4c (Figure 5 variant): membership read policy when the primary is cut mid-run",
        &[
            "read policy",
            "yielded (of 16)",
            "terminated",
            "fig5 conforms",
        ],
    );
    for p in quorum_points() {
        t3.row(&[
            format!("{:?}", p.policy),
            p.yielded.to_string(),
            p.done.to_string(),
            p.conforms.to_string(),
        ]);
    }
    t3.note("the paper's suggested 'quorum scheme by changing the last line': Primary");
    t3.note("reads die with the primary; Quorum (2-of-3) and Any reads finish the run");
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_producers_terminate_fast_producers_do_not() {
        let ps = growth_points();
        assert!(ps[0].terminated, "ratio 4.0 must terminate");
        assert!(!ps[3].terminated, "ratio 0.5 must outpace the consumer");
    }

    #[test]
    fn non_terminating_runs_still_yield_continuously() {
        let ps = growth_points();
        let racing = &ps[3];
        assert_eq!(racing.yielded, INVOCATION_BUDGET);
    }

    #[test]
    fn all_growth_runs_conform() {
        for p in growth_points() {
            assert!(p.conforms, "ratio={}", p.interval_ratio);
        }
    }

    #[test]
    fn quorum_reads_survive_primary_loss_where_primary_reads_die() {
        let ps = quorum_points();
        let primary = ps.iter().find(|p| p.policy == ReadPolicy::Primary).unwrap();
        assert!(!primary.done, "primary reads must fail mid-run");
        assert!(primary.yielded < 16);
        assert!(primary.conforms);
        for policy in [ReadPolicy::Quorum, ReadPolicy::Any] {
            let p = ps.iter().find(|p| p.policy == policy).unwrap();
            assert!(p.done, "{policy:?} must finish");
            assert_eq!(p.yielded, 16, "{policy:?}");
            assert!(p.conforms, "{policy:?}");
        }
    }

    #[test]
    fn earlier_partitions_yield_less_then_fail() {
        let ps = failure_points();
        assert!(ps[0].failed && ps[1].failed);
        assert!(ps[0].yielded < ps[1].yielded);
        for p in &ps {
            assert!(p.conforms, "cut_after={}", p.cut_after_ms);
        }
        // The run needs ~32 × 20ms = 640ms; a 400ms cut still fails it.
        assert!(ps[2].failed);
    }
}
