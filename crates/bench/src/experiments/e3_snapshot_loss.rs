//! E3 — Figure 4: mutable set with loss of mutations (snapshot).
//!
//! Concurrent mutators add fresh elements and remove initial ones while a
//! snapshot iterator runs. Measures the two loss phenomena the paper
//! names: *missed additions* (elements added during the run that the
//! iterator never sees) and *ghost yields* (elements yielded although
//! they had been removed by the time the run ended) — while every run
//! still conforms to Figure 4.

use crate::report::Table;
use crate::scenarios::{populated_set, schedule_churn_over, wan};
use std::collections::BTreeSet;
use weakset::prelude::*;
use weakset_sim::time::SimDuration;
use weakset_spec::checker::{check_computation, Figure};
use weakset_store::object::ObjectId;
use weakset_store::prelude::ReadPolicy;

const N_ELEMS: usize = 40;

/// One sweep point.
pub struct Point {
    /// Mutations scheduled during the run.
    pub churn_ops: usize,
    /// Additions the snapshot missed.
    pub missed_adds: usize,
    /// Yields of elements no longer members at run end.
    pub ghost_yields: usize,
    /// Whether the run conformed to Figure 4.
    pub conforms: bool,
    /// Whether the same run violates Figure 5 or Figure 3 (it should,
    /// once mutations happen: shrinkage breaks Fig 5's constraint and any
    /// mutation breaks Fig 3's).
    pub stricter_figures_reject: bool,
}

/// Runs the sweep.
pub fn points() -> Vec<Point> {
    [0usize, 4, 8, 16, 32]
        .into_iter()
        .map(|churn_ops| {
            let mut w = wan(300 + churn_ops as u64, 4, SimDuration::from_millis(5));
            let set = populated_set(&mut w, N_ELEMS, SimDuration::from_millis(200));
            // Mutations spread across the expected run (~N_ELEMS × 20ms):
            // 50% adds of fresh elements, 50% removes of initial ones.
            if churn_ops > 0 {
                let span_ms = (N_ELEMS as u64) * 20;
                let interval = SimDuration::from_millis((span_ms / churn_ops as u64).max(1));
                let now = w.world.now();
                schedule_churn_over(
                    &mut w,
                    &set,
                    now,
                    interval,
                    churn_ops,
                    0.5,
                    N_ELEMS as u64,
                    churn_ops as u64,
                );
            }
            let mut it = set.elements_observed(Semantics::Snapshot);
            let mut yields: BTreeSet<ObjectId> = BTreeSet::new();
            loop {
                match it.next(&mut w.world) {
                    IterStep::Yielded(rec) => {
                        yields.insert(rec.id);
                    }
                    IterStep::Done => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            let comp = it.take_computation(&w.world).expect("observed");
            let conforms = check_computation(Figure::Fig4, &comp).is_ok();
            let stricter_figures_reject = if churn_ops == 0 {
                // Quiescent: the stricter figures accept too.
                true
            } else {
                !check_computation(Figure::Fig3, &comp).is_ok()
            };
            // Let any still-scheduled mutations land, then read the final
            // membership.
            w.world.run_to_quiescence();
            let final_members: BTreeSet<ObjectId> = set
                .client()
                .read_members(&mut w.world, set.cref(), ReadPolicy::Primary)
                .expect("healthy")
                .entries
                .iter()
                .map(|m| m.elem)
                .collect();
            let missed_adds = final_members.difference(&yields).count();
            let ghost_yields = yields.difference(&final_members).count();
            Point {
                churn_ops,
                missed_adds,
                ghost_yields,
                conforms,
                stricter_figures_reject,
            }
        })
        .collect()
}

/// Formats the sweep as the E3 table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E3 (Figure 4): snapshot iteration under churn — lost mutations",
        &[
            "churn ops",
            "missed additions",
            "ghost yields",
            "fig4 conforms",
            "fig3 rejects",
        ],
    );
    for p in points() {
        t.row(&[
            p.churn_ops.to_string(),
            p.missed_adds.to_string(),
            p.ghost_yields.to_string(),
            p.conforms.to_string(),
            p.stricter_figures_reject.to_string(),
        ]);
    }
    t.note("expected: losses grow with churn while Figure 4 conformance never breaks;");
    t.note("the same runs violate Figure 3 (immutability) as soon as churn > 0");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_run_loses_nothing() {
        let p = &points()[0];
        assert_eq!(p.churn_ops, 0);
        assert_eq!(p.missed_adds, 0);
        assert_eq!(p.ghost_yields, 0);
        assert!(p.conforms);
    }

    #[test]
    fn losses_grow_with_churn() {
        let ps = points();
        let last = &ps[ps.len() - 1];
        assert!(
            last.missed_adds + last.ghost_yields > 0,
            "heavy churn must lose mutations"
        );
        // Monotone-ish: max churn loses at least as much as min nonzero.
        assert!(last.missed_adds >= ps[1].missed_adds);
    }

    #[test]
    fn conformance_never_breaks() {
        for p in points() {
            assert!(p.conforms, "churn={}", p.churn_ops);
        }
    }

    #[test]
    fn stricter_figures_reject_churned_runs() {
        for p in points() {
            assert!(p.stricter_figures_reject, "churn={}", p.churn_ops);
        }
    }
}
