//! E10 — anti-entropy membership replication (`weakset-gossip`).
//!
//! The paper's weak sets tolerate partial failure at the *iterator*; this
//! experiment measures what a leaderless, gossip-converged membership
//! layer buys underneath it:
//!
//! * **E10a** — convergence time of pairwise anti-entropy as fan-out and
//!   replica count vary (seeded, deterministic).
//! * **E10b** — membership-read availability during a partition that
//!   isolates the primary and a majority: `Primary` reads fail with a
//!   network error, `Quorum` reads fail with `NoQuorum`, `Leaderless`
//!   reads keep answering from the surviving converged replicas.
//! * **E10c** — iterator availability across partition durations: the
//!   optimistic iterator configured leaderless keeps yielding through the
//!   outage, while the primary-read configuration blocks until heal.
//! * **E10d** — reconciliation bytes vs set size at fixed divergence:
//!   `Full` ships the whole live-dot list (linear in `n`), the
//!   Merkle-range descent pays `O(k log n)` — its curve flattens as the
//!   set grows.

use crate::report::{pct, Table};
use weakset::iter::optimistic::OptimisticElements;
use weakset::prelude::{IterConfig, IterStep};
use weakset_gossip::prelude::*;
use weakset_runtime::prelude::RuntimeExt;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreError, StoreWorld};

const COLL: CollectionId = CollectionId(1);
const N_MEMBERS: u64 = 24;
const INTERVAL_MS: u64 = 20;

fn gossip_world(n_replicas: usize, seed: u64) -> (StoreWorld, StoreClient, CollectionRef) {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let servers: Vec<NodeId> = topo.add_servers("s", n_replicas);
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    for &s in &servers {
        world.install_service(s, Box::new(GossipNode::new(s)));
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(100));
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client
        .create_collection(&mut world, &cref)
        .expect("healthy world");
    (world, client, cref)
}

/// Adds `N_MEMBERS` elements, object records spread round-robin over the
/// non-primary replicas (so fetches survive a primary-isolating cut).
fn populate(w: &mut StoreWorld, client: &StoreClient, cref: &CollectionRef) {
    for i in 0..N_MEMBERS {
        let home = cref.replicas[(i as usize) % cref.replicas.len()];
        client
            .put_object(
                w,
                home,
                ObjectRecord::new(ObjectId(i + 1), format!("o{}", i + 1), &b"x"[..]),
            )
            .expect("healthy world");
        client
            .add_member(
                w,
                cref,
                MemberEntry {
                    elem: ObjectId(i + 1),
                    home,
                },
            )
            .expect("healthy world");
    }
}

/// One convergence measurement.
pub struct ConvergencePoint {
    /// Membership hosts (primary + replicas).
    pub replicas: usize,
    /// Peers contacted per replica per round.
    pub fanout: usize,
    /// Anti-entropy rounds until all replicas agreed.
    pub rounds: u64,
    /// Simulated time from first round to convergence.
    pub ms: u64,
    /// Dotted entries shipped in total (delta efficiency).
    pub shipped: u64,
}

/// E10a: sweeps replica count × fan-out, measuring time-to-convergence.
pub fn convergence_points() -> Vec<ConvergencePoint> {
    let mut out = Vec::new();
    for &n in &[3usize, 5, 9] {
        for &fanout in &[1usize, 2, 3] {
            let (mut w, client, cref) = gossip_world(n, 1000 + (n * 10 + fanout) as u64);
            populate(&mut w, &client, &cref);
            let handle = engine::install(
                &mut w,
                COLL,
                cref.all_nodes(),
                GossipConfig {
                    fanout,
                    interval: SimDuration::from_millis(INTERVAL_MS),
                    ..GossipConfig::default()
                },
            );
            let start = w.now();
            // Step one interval at a time until every replica agrees.
            let mut rounds = 0u64;
            while !engine::converged(&w, COLL, &cref.all_nodes()) {
                assert!(rounds < 1_000, "gossip failed to converge");
                let deadline = w.now() + SimDuration::from_millis(INTERVAL_MS);
                w.run_until(deadline);
                rounds += 1;
            }
            let ms = w.now().saturating_since(start).as_millis();
            let shipped = w.metrics().counter("gossip.novel_shipped");
            handle.stop();
            w.run_to_quiescence();
            out.push(ConvergencePoint {
                replicas: n,
                fanout,
                rounds,
                ms,
                shipped,
            });
        }
    }
    out
}

/// Read outcomes during a primary-isolating partition.
pub struct AvailabilityPoint {
    /// Membership hosts.
    pub replicas: usize,
    /// Hosts cut away from the client (primary + enough replicas to deny
    /// a majority).
    pub cut: usize,
    /// What `ReadPolicy::Primary` returned.
    pub primary: &'static str,
    /// What `ReadPolicy::Quorum` returned.
    pub quorum: &'static str,
    /// What `ReadPolicy::Leaderless` returned.
    pub leaderless: &'static str,
    /// Entries the leaderless read served (out of `N_MEMBERS`).
    pub leaderless_entries: usize,
}

fn classify(r: Result<usize, StoreError>) -> (&'static str, usize) {
    match r {
        Ok(n) => ("ok", n),
        Err(StoreError::Net(_)) => ("net error", 0),
        Err(StoreError::NoQuorum { .. }) => ("no quorum", 0),
        Err(_) => ("error", 0),
    }
}

/// E10b: after convergence, cuts the primary plus a majority of replicas
/// and probes each read policy.
pub fn availability_points() -> Vec<AvailabilityPoint> {
    let mut out = Vec::new();
    for &n in &[3usize, 5, 9] {
        let (mut w, client, cref) = gossip_world(n, 2000 + n as u64);
        populate(&mut w, &client, &cref);
        let handle = engine::install(
            &mut w,
            COLL,
            cref.all_nodes(),
            GossipConfig {
                fanout: 2,
                interval: SimDuration::from_millis(INTERVAL_MS),
                ..GossipConfig::default()
            },
        );
        let deadline = w.now() + SimDuration::from_secs(2);
        w.run_until(deadline);
        assert!(engine::converged(&w, COLL, &cref.all_nodes()));
        handle.stop();
        w.run_to_quiescence();
        // Cut the primary plus replicas until under half remain reachable.
        let cut = n / 2 + 1;
        let mut side = vec![cref.home];
        side.extend(cref.replicas.iter().copied().take(cut - 1));
        w.topology_mut().partition(&side);
        let (primary, _) = classify(
            client
                .read_members(&mut w, &cref, ReadPolicy::Primary)
                .map(|r| r.entries.len()),
        );
        let (quorum, _) = classify(
            client
                .read_members(&mut w, &cref, ReadPolicy::Quorum)
                .map(|r| r.entries.len()),
        );
        let (leaderless, served) = classify(
            client
                .read_members(&mut w, &cref, ReadPolicy::Leaderless)
                .map(|r| r.entries.len()),
        );
        out.push(AvailabilityPoint {
            replicas: n,
            cut,
            primary,
            quorum,
            leaderless,
            leaderless_entries: served,
        });
    }
    out
}

/// Iterator progress across one partition window.
pub struct IterAvailabilityPoint {
    /// Partition duration in simulated milliseconds.
    pub partition_ms: u64,
    /// Elements the primary-read iterator yielded *during* the outage.
    pub primary_during: usize,
    /// Elements the leaderless iterator yielded during the outage.
    pub leaderless_during: usize,
    /// Both iterators' totals once healed (completeness check).
    pub primary_total: usize,
    /// Total the leaderless iterator reached.
    pub leaderless_total: usize,
}

/// E10c: a 5-host deployment converges, the primary side drops out for a
/// configurable window, and two optimistic iterators race: one reading
/// the primary, one leaderless.
pub fn iter_availability_points() -> Vec<IterAvailabilityPoint> {
    [100u64, 400, 1600]
        .into_iter()
        .map(|partition_ms| {
            let (mut w, client, cref) = gossip_world(5, 3000 + partition_ms);
            populate(&mut w, &client, &cref);
            let handle = engine::install(
                &mut w,
                COLL,
                cref.all_nodes(),
                GossipConfig {
                    fanout: 2,
                    interval: SimDuration::from_millis(INTERVAL_MS),
                    ..GossipConfig::default()
                },
            );
            let deadline = w.now() + SimDuration::from_secs(2);
            w.run_until(deadline);
            assert!(engine::converged(&w, COLL, &cref.all_nodes()));
            let mut primary_it =
                OptimisticElements::new(client.clone(), cref.clone(), IterConfig::default());
            let mut leaderless_it =
                OptimisticElements::new(client.clone(), cref.clone(), IterConfig::leaderless());
            // Partition the primary away for the window; every object
            // record stays reachable (they are homed on the replicas).
            w.topology_mut().partition(&[cref.home]);
            let heal_at = w.now() + SimDuration::from_millis(partition_ms);
            let mut primary_during = 0;
            let mut leaderless_during = 0;
            while w.now() < heal_at {
                if let IterStep::Yielded(_) = primary_it.next(&mut w) {
                    primary_during += 1;
                }
                if let IterStep::Yielded(_) = leaderless_it.next(&mut w) {
                    leaderless_during += 1;
                }
            }
            w.topology_mut().heal_partition();
            let (rest_p, end_p) = primary_it.drain(&mut w, 10, SimDuration::from_millis(20));
            let (rest_l, end_l) = leaderless_it.drain(&mut w, 10, SimDuration::from_millis(20));
            assert_eq!(end_p, IterStep::Done);
            assert_eq!(end_l, IterStep::Done);
            handle.stop();
            w.run_to_quiescence();
            IterAvailabilityPoint {
                partition_ms,
                primary_during,
                leaderless_during,
                primary_total: primary_during + rest_p.len(),
                leaderless_total: leaderless_during + rest_l.len(),
            }
        })
        .collect()
}

/// One reconciliation-cost measurement: a `set_size`-dot OR-Set pair
/// diverged by [`RECONCILE_K`] elements, reconciled with one push-pull
/// exchange in `mode`.
pub struct ReconcilePoint {
    /// Live dots shared by both replicas before divergence.
    pub set_size: u64,
    /// Digest mode label (`full` / `merkle`).
    pub mode: &'static str,
    /// Bytes of digest/summary metadata the exchange charged.
    pub digest_bytes: u64,
    /// Bytes of delta payload the exchange charged.
    pub delta_bytes: u64,
}

impl ReconcilePoint {
    /// Total wire cost of the exchange.
    pub fn total(&self) -> u64 {
        self.digest_bytes + self.delta_bytes
    }
}

/// Fixed symmetric-difference size for the E10d sweep.
pub const RECONCILE_K: u64 = 32;

/// E10d: sweeps the set size at fixed divergence, one point per digest
/// mode. Both modes must converge; only the wire cost differs.
pub fn reconcile_points() -> Vec<ReconcilePoint> {
    let mut out = Vec::new();
    for &n in &[1_000u64, 8_000, 64_000] {
        for (label, mode) in [
            ("full", DigestMode::Full),
            ("merkle", DigestMode::MerkleRange),
        ] {
            let mut topo = Topology::new();
            let _cn = topo.add_node("client", 0);
            let servers: Vec<NodeId> = topo.add_servers("s", 2);
            let mut config = WorldConfig::seeded(4000 + n);
            config.trace = false;
            let mut w = StoreWorld::new(
                config,
                topo,
                LatencyModel::Constant(SimDuration::from_millis(2)),
            );
            for &s in &servers {
                w.install_service(s, Box::new(GossipNode::new(s)));
            }
            let mut base = ORSet::new();
            for i in 1..=n {
                base.add(
                    servers[0],
                    MemberEntry {
                        elem: ObjectId(i),
                        home: servers[0],
                    },
                );
            }
            let mut a = base.clone();
            let mut b = base;
            for i in 0..RECONCILE_K / 2 {
                a.add(
                    servers[0],
                    MemberEntry {
                        elem: ObjectId(n + 1 + i),
                        home: servers[0],
                    },
                );
                b.add(
                    servers[1],
                    MemberEntry {
                        elem: ObjectId(n + RECONCILE_K + 1 + i),
                        home: servers[1],
                    },
                );
            }
            for (node, set) in [(servers[0], a), (servers[1], b)] {
                w.with_service_mut(node, |g: &mut GossipNode| {
                    g.create_replica(COLL, GossipSemantics::GrowShrink);
                    *g.crdt_mut(COLL).expect("replica just created") =
                        MembershipCrdt::GrowShrink(set);
                });
            }
            engine::sync_pair_with(
                &mut w,
                COLL,
                servers[0],
                servers[1],
                mode,
                SimDuration::from_millis(200),
            );
            assert!(
                engine::converged(&w, COLL, &servers),
                "n={n} {label}: reconciliation must converge"
            );
            out.push(ReconcilePoint {
                set_size: n,
                mode: label,
                digest_bytes: w.metrics().counter(weakset_obs::gossip::DIGEST_BYTES),
                delta_bytes: w.metrics().counter(weakset_obs::gossip::DELTA_BYTES),
            });
        }
    }
    out
}

/// Formats E10 as its four tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E10a: anti-entropy convergence time vs replica count and fan-out",
        &[
            "replicas",
            "fan-out",
            "rounds to converge",
            "sim time (ms)",
            "entries shipped",
        ],
    );
    for p in convergence_points() {
        t.row(&[
            p.replicas.to_string(),
            p.fanout.to_string(),
            p.rounds.to_string(),
            p.ms.to_string(),
            p.shipped.to_string(),
        ]);
    }
    t.note("expected: rounds shrink as fan-out grows; shipped entries stay near");
    t.note("members x (replicas-1) — digests keep converged pairs from re-sending");

    let mut t2 = Table::new(
        "E10b: membership reads during a primary-isolating partition",
        &[
            "replicas",
            "hosts cut",
            "Primary",
            "Quorum",
            "Leaderless",
            "entries served",
        ],
    );
    for p in availability_points() {
        t2.row(&[
            p.replicas.to_string(),
            p.cut.to_string(),
            p.primary.to_string(),
            p.quorum.to_string(),
            p.leaderless.to_string(),
            pct(p.leaderless_entries, N_MEMBERS as usize),
        ]);
    }
    t2.note("expected: Primary hits a net error, Quorum reports no quorum, and the");
    t2.note("leaderless union serves 100% from any converged survivor");

    let mut t3 = Table::new(
        "E10c: optimistic-iterator progress through the outage (24 members)",
        &[
            "partition (ms)",
            "primary-read yields during",
            "leaderless yields during",
            "primary total",
            "leaderless total",
        ],
    );
    for p in iter_availability_points() {
        t3.row(&[
            p.partition_ms.to_string(),
            p.primary_during.to_string(),
            p.leaderless_during.to_string(),
            p.primary_total.to_string(),
            p.leaderless_total.to_string(),
        ]);
    }
    t3.note("expected: the primary-read iterator blocks for the whole window (0 yields)");
    t3.note("while the leaderless one keeps yielding; both complete after heal");

    let mut t4 = Table::new(
        "E10d: reconciliation bytes vs set size (32-element divergence)",
        &[
            "set size",
            "digest mode",
            "digest bytes",
            "delta bytes",
            "total bytes",
        ],
    );
    for p in reconcile_points() {
        t4.row(&[
            p.set_size.to_string(),
            p.mode.to_string(),
            p.digest_bytes.to_string(),
            p.delta_bytes.to_string(),
            p.total().to_string(),
        ]);
    }
    t4.note("expected: Full grows linearly with the set (it ships every live dot both");
    t4.note("ways); the Merkle-range curve flattens — O(k log n) descent plus k entries");
    vec![t, t2, t3, t4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_converges_at_every_scale() {
        for p in convergence_points() {
            assert!(p.rounds > 0, "starts unconverged");
            assert!(p.ms > 0);
            // Every replica must receive every member exactly no more than
            // a constant factor beyond the minimum shipment.
            let min = N_MEMBERS * (p.replicas as u64 - 1);
            assert!(p.shipped >= min, "{} < {min}", p.shipped);
            assert!(p.shipped <= min * 3, "{} way over {min}", p.shipped);
        }
    }

    #[test]
    fn only_leaderless_survives_the_partition() {
        for p in availability_points() {
            assert_eq!(p.primary, "net error", "n={}", p.replicas);
            assert_eq!(p.quorum, "no quorum", "n={}", p.replicas);
            assert_eq!(p.leaderless, "ok", "n={}", p.replicas);
            assert_eq!(p.leaderless_entries, N_MEMBERS as usize);
        }
    }

    #[test]
    fn merkle_reconciliation_curve_flattens() {
        let points = reconcile_points();
        let total = |n: u64, mode: &str| {
            points
                .iter()
                .find(|p| p.set_size == n && p.mode == mode)
                .expect("point present")
                .total()
        };
        // Full scales with the set: 64x the dots cost well over 20x the
        // bytes. Merkle scales with k log n: the same growth costs under
        // 6x, and at the top size merkle undercuts Full severalfold.
        // (At 1k dots Full is actually *cheaper* — the descent's
        // per-range summaries only pay off once the set dwarfs the
        // divergence, which the table makes visible.)
        assert!(total(64_000, "full") > total(1_000, "full") * 20);
        assert!(total(64_000, "merkle") < total(1_000, "merkle") * 6);
        assert!(total(64_000, "merkle") * 3 < total(64_000, "full"));
    }

    #[test]
    fn leaderless_iterator_finishes_during_long_outages() {
        let points = iter_availability_points();
        for p in &points {
            assert_eq!(p.primary_during, 0, "primary reads block under the cut");
            assert_eq!(p.primary_total, N_MEMBERS as usize);
            assert_eq!(p.leaderless_total, N_MEMBERS as usize);
        }
        // Leaderless progress is real in every window and grows with the
        // outage; primary-read progress is identically zero throughout.
        assert!(points.iter().all(|p| p.leaderless_during > 0));
        assert!(
            points.last().unwrap().leaderless_during > points[0].leaderless_during,
            "longer outage, more leaderless yields"
        );
    }
}
