//! The experiment suite: one module per figure-level experiment E1-E11
//! (see DESIGN.md §4 for the index and EXPERIMENTS.md for results).
//!
//! Every experiment is a pure function of its seeds — rerunning
//! `cargo run -p weakset-bench --bin experiments` regenerates the same
//! tables.

pub mod e10_gossip;
pub mod e11_sharded;
pub mod e1_immutable;
pub mod e2_immutable_failures;
pub mod e3_snapshot_loss;
pub mod e4_growonly;
pub mod e5_optimistic;
pub mod e6_latency;
pub mod e7_availability;
pub mod e8_taxonomy;
pub mod e9_locking;

use crate::report::Table;

/// Experiment ids, in paper order.
pub const ALL: [&str; 11] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "e1" => e1_immutable::run(),
        "e2" => e2_immutable_failures::run(),
        "e3" => e3_snapshot_loss::run(),
        "e4" => e4_growonly::run(),
        "e5" => e5_optimistic::run(),
        "e6" => e6_latency::run(),
        "e7" => e7_availability::run(),
        "e8" => e8_taxonomy::run(),
        "e9" => e9_locking::run(),
        "e10" => e10_gossip::run(),
        "e11" => e11_sharded::run(),
        other => panic!("unknown experiment id {other:?} (expected one of {ALL:?})"),
    }
}
