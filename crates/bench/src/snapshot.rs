//! Machine-readable benchmark snapshots (`BENCH_<scenario>.json`).
//!
//! One small, fully instrumented workload per experiment E1–E11 plus a
//! `fuzz` scenario measuring DST throughput and shrink cost. Each
//! builder runs its workload in a seeded world, freezes the world's
//! [`MetricsRegistry`] into an [`ObsSnapshot`], and attaches the named
//! perf *objectives* the CI `compare` gate enforces (everything else in
//! the snapshot is context, not gated).
//!
//! Determinism contract: no wall-clock value ever enters a snapshot —
//! only counters, high-water gauges, and simulated-microsecond
//! latencies — so two runs with the same seed serialize
//! byte-identically.

use crate::scenarios::{drive, populated_set, schedule_churn, wan, wan_with_model};
use weakset::prelude::*;
use weakset::semantics::Semantics;
use weakset_dst::prelude::{execute, generate, mix, shrink, Chaos};
use weakset_gossip::prelude::{
    engine, DigestMode, GossipConfig, GossipNode, GossipSemantics, MembershipCrdt, ORSet,
};
use weakset_obs::{
    critical_path, CausalDag, CriticalPath, Direction, MetricsRegistry, ObsEvent, ObsSnapshot,
};
use weakset_runtime::prelude::RuntimeExt;
use weakset_sim::latency::LatencyModel;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreWorld};

/// Every snapshot scenario id, in emission order.
pub const SCENARIOS: [&str; 13] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "fuzz",
];

/// The seed every checked-in baseline was produced with.
pub const DEFAULT_SEED: u64 = 42;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Builds the snapshot for one scenario id.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn build(id: &str, seed: u64) -> ObsSnapshot {
    match id {
        "e1" => e1_immutable(seed),
        "e2" => e2_immutable_failures(seed),
        "e3" => e3_snapshot_loss(seed),
        "e4" => e4_growonly(seed),
        "e5" => e5_optimistic(seed),
        "e6" => e6_latency(seed),
        "e7" => e7_availability(seed),
        "e8" => e8_taxonomy(seed),
        "e9" => e9_locking(seed),
        "e10" => e10_gossip(seed),
        "e11" => e11_sharded(seed),
        "e12" => e12_session(seed),
        "fuzz" => fuzz(seed),
        other => panic!("unknown snapshot scenario {other:?} (expected one of {SCENARIOS:?})"),
    }
}

/// Builds every scenario's snapshot, in [`SCENARIOS`] order.
pub fn build_all(seed: u64) -> Vec<ObsSnapshot> {
    SCENARIOS.iter().map(|id| build(id, seed)).collect()
}

/// Sum of counters whose name ends with `suffix` (e.g. `.yielded`
/// across all figures).
fn sum_suffix(snap: &ObsSnapshot, suffix: &str) -> f64 {
    snap.counters
        .iter()
        .filter(|(k, _)| k.ends_with(suffix))
        .map(|(_, &v)| v as f64)
        .sum()
}

fn counter(snap: &ObsSnapshot, name: &str) -> f64 {
    snap.counters.get(name).copied().unwrap_or(0) as f64
}

/// The two objectives every scenario carries: RPC traffic and scheduler
/// work for the same logical workload. Both shrinking means the stack
/// got cheaper.
fn with_common_objectives(snap: ObsSnapshot) -> ObsSnapshot {
    let rpc = counter(&snap, "rpc.sent");
    let events = counter(&snap, "sim.dispatch.total");
    snap.with_objective("rpc_sent", rpc, Direction::LowerIsBetter)
        .with_objective("sim_events", events, Direction::LowerIsBetter)
}

fn with_yield_objective(snap: ObsSnapshot) -> ObsSnapshot {
    let yields = sum_suffix(&snap, ".yielded");
    with_common_objectives(snap).with_objective("yields", yields, Direction::HigherIsBetter)
}

/// Closes the world's span ledger and drains the causal event stream,
/// folding per-kind event counts into the metrics registry
/// (`events.<kind>`) so trace-volume regressions show up next to every
/// other counter.
fn drain_events(world: &mut StoreWorld) -> Vec<ObsEvent> {
    let at = world.now().as_micros();
    let unclosed = world.events_mut().finish(at);
    debug_assert!(unclosed.is_empty(), "unclosed spans: {unclosed:?}");
    let events = world.events_mut().take_events();
    for e in &events {
        world.metrics_mut().incr(&format!("events.{}", e.kind));
    }
    events
}

/// Attaches the gated trace objectives: the critical-path decomposition
/// of all simulated latency the run's span DAG explains, and the total
/// event volume (so an instrumentation change that floods the sink
/// fails the compare gate instead of slipping through).
fn with_trace_objectives(snap: ObsSnapshot, cp: &CriticalPath, total_events: usize) -> ObsSnapshot {
    snap.with_objective(
        "trace.critical_path.network_us",
        cp.network_us as f64,
        Direction::LowerIsBetter,
    )
    .with_objective(
        "trace.critical_path.queue_us",
        cp.queue_us as f64,
        Direction::LowerIsBetter,
    )
    .with_objective(
        "trace.critical_path.quorum_wait_us",
        cp.quorum_wait_us as f64,
        Direction::LowerIsBetter,
    )
    .with_objective(
        "trace.critical_path.gossip_us",
        cp.gossip_us as f64,
        Direction::LowerIsBetter,
    )
    .with_objective(
        "trace.critical_path.total_us",
        cp.total_us() as f64,
        Direction::LowerIsBetter,
    )
    .with_objective(
        "trace_events",
        total_events as f64,
        Direction::LowerIsBetter,
    )
}

/// Drains the event stream, takes the metrics snapshot, and attaches
/// the trace objectives — the common tail of every world-backed
/// scenario.
fn snapshot_with_trace(world: &mut StoreWorld, id: &str, seed: u64) -> ObsSnapshot {
    let events = drain_events(world);
    let snap = world.metrics().snapshot(id, seed);
    let cp = critical_path(&CausalDag::from_events(&events));
    with_trace_objectives(snap, &cp, events.len())
}

/// E1 — immutable set on a healthy WAN: full snapshot iteration.
fn e1_immutable(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 4, ms(5));
    let set = populated_set(&mut w, 24, ms(100));
    let mut it = set.elements(Semantics::Snapshot);
    drive(&mut w.world, &mut it, 3, ms(10));
    with_yield_objective(snapshot_with_trace(&mut w.world, "e1", seed))
}

/// E2 — immutable set with failures: one of four servers is down for
/// the whole run; the pessimistic iterator reports what it cannot
/// reach.
fn e2_immutable_failures(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 4, ms(5));
    let set = populated_set(&mut w, 24, ms(100));
    w.world.topology_mut().crash(w.servers[3]);
    let mut it = set.elements(Semantics::Snapshot);
    drive(&mut w.world, &mut it, 3, ms(10));
    with_yield_objective(snapshot_with_trace(&mut w.world, "e2", seed))
}

/// E3 — snapshot semantics under churn: mutations land mid-iteration
/// and the snapshot misses them (the paper's loss of mutations).
fn e3_snapshot_loss(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 3, ms(5));
    let set = populated_set(&mut w, 18, ms(100));
    let now = w.world.now();
    schedule_churn(&mut w, &set, now, ms(4), 30, 0.5, seed);
    let mut it = set.elements(Semantics::Snapshot);
    drive(&mut w.world, &mut it, 3, ms(10));
    with_yield_objective(snapshot_with_trace(&mut w.world, "e3", seed))
}

/// E4 — grow-only pessimistic iteration while the set only grows.
fn e4_growonly(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 3, ms(5));
    let set = populated_set(&mut w, 12, ms(100));
    let now = w.world.now();
    schedule_churn(&mut w, &set, now, ms(4), 20, 1.1, seed); // pure adds
    let mut it = set.elements(Semantics::GrowOnly);
    drive(&mut w.world, &mut it, 3, ms(10));
    with_yield_objective(snapshot_with_trace(&mut w.world, "e4", seed))
}

/// E5 — optimistic iteration riding out a mid-run crash: the iterator
/// blocks instead of failing, then resumes after the restart.
fn e5_optimistic(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 2, ms(5));
    let set = populated_set(&mut w, 12, ms(50));
    let mut it = set.elements(Semantics::Optimistic);
    // Yield a prefix, lose a server, let the iterator block, heal,
    // finish.
    for _ in 0..4 {
        it.next(&mut w.world);
    }
    w.world.topology_mut().crash(w.servers[1]);
    drive(&mut w.world, &mut it, 3, ms(10));
    w.world.topology_mut().restart(w.servers[1]);
    drive(&mut w.world, &mut it, 5, ms(10));
    with_yield_objective(snapshot_with_trace(&mut w.world, "e5", seed))
}

/// E6 — fetch ordering over a distance-graded WAN: closest-first keeps
/// per-invocation latency down.
fn e6_latency(seed: u64) -> ObsSnapshot {
    let mut w = wan_with_model(
        seed,
        5,
        LatencyModel::SiteDistance {
            base: ms(1),
            per_hop: ms(8),
        },
    );
    let set = populated_set(&mut w, 20, ms(400));
    let mut it = set.elements(Semantics::Snapshot);
    drive(&mut w.world, &mut it, 3, ms(10));
    let snap = snapshot_with_trace(&mut w.world, "e6", seed);
    let p50 = snap
        .latencies
        .get("iter.fig4.invocation_us")
        .map(|s| s.p50_us as f64)
        .unwrap_or(0.0);
    with_yield_objective(snap).with_objective("invocation_p50_us", p50, Direction::LowerIsBetter)
}

/// E7 — membership availability: reads under all four policies against
/// a three-replica collection with a partitioned minority.
fn e7_availability(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 3, ms(5));
    let client = StoreClient::new(w.client_node, ms(100));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: w.servers[0],
        replicas: w.servers[1..].to_vec(),
    };
    client
        .create_collection(&mut w.world, &cref)
        .expect("healthy world at setup");
    let set = WeakSet::new(client.clone(), cref.clone());
    for i in 0..9u64 {
        set.add(
            &mut w.world,
            ObjectRecord::new(ObjectId(i + 1), format!("obj-{i}"), vec![b'x'; 64]),
            w.servers[(i % 3) as usize],
        )
        .expect("healthy world at setup");
    }
    // Partition the primary away; quorum and leaderless keep answering.
    let primary = w.servers[0];
    w.world.topology_mut().partition(&[primary]);
    for _ in 0..4 {
        for policy in [
            ReadPolicy::Primary,
            ReadPolicy::Any,
            ReadPolicy::Quorum,
            ReadPolicy::Leaderless,
        ] {
            let _ = client.read_members(&mut w.world, &cref, policy);
        }
    }
    w.world.topology_mut().heal_partition();
    let snap = snapshot_with_trace(&mut w.world, "e7", seed);
    let ok = sum_suffix(&snap, ".ok");
    with_common_objectives(snap).with_objective("reads_ok", ok, Direction::HigherIsBetter)
}

/// E8 — the design-space taxonomy: one full run per semantics on the
/// same world.
fn e8_taxonomy(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 3, ms(5));
    let set = populated_set(&mut w, 12, ms(100));
    for sem in Semantics::ALL {
        let mut it = set.elements(sem);
        drive(&mut w.world, &mut it, 3, ms(10));
    }
    with_yield_objective(snapshot_with_trace(&mut w.world, "e8", seed))
}

/// E9 — the locked strong baseline: writers stall while a locked
/// iteration holds the read lock.
fn e9_locking(seed: u64) -> ObsSnapshot {
    let mut w = wan(seed, 2, ms(5));
    let set = populated_set(&mut w, 10, ms(100));
    let mut it = set.elements(Semantics::Locked);
    // Interleave writes with the locked iteration: they bounce off the
    // read lock (store.write.err) until the iterator returns.
    for i in 0..10u64 {
        it.next(&mut w.world);
        let _ = set.add(
            &mut w.world,
            ObjectRecord::new(ObjectId(100 + i), format!("late-{i}"), vec![b'z'; 16]),
            w.servers[0],
        );
    }
    drive(&mut w.world, &mut it, 3, ms(10));
    with_yield_objective(snapshot_with_trace(&mut w.world, "e9", seed))
}

/// The `n` for E10's big-reconcile sub-phase: a million live dots in
/// release (the headline anti-entropy-at-scale measurement), scaled down
/// in debug so `cargo test` builds the scenario in seconds.
const E10_BIG_N: u64 = if cfg!(debug_assertions) {
    20_000
} else {
    1_000_000
};

/// E10 sub-phase: two replicas share an OR-Set of `n` dots but diverge
/// by `k` fresh elements (half novel on each side), then reconcile with
/// one push-pull exchange in `mode`, in an isolated two-node world.
/// Returns the (digest, delta) bytes the exchange charged and whether it
/// converged.
fn big_reconcile(seed: u64, n: u64, k: u64, mode: DigestMode) -> (u64, u64, bool) {
    let mut topo = Topology::new();
    let _client = topo.add_node("client", 0);
    let servers: Vec<_> = topo.add_servers("replica-", 2);
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(config, topo, LatencyModel::Constant(ms(3)));
    for &s in &servers {
        world.install_service(s, Box::new(GossipNode::new(s)));
    }
    let coll = CollectionId(1);
    let mut base = ORSet::new();
    for i in 1..=n {
        base.add(
            servers[0],
            weakset_store::collection::MemberEntry {
                elem: ObjectId(i),
                home: servers[0],
            },
        );
    }
    let mut diverged_a = base.clone();
    let mut diverged_b = base;
    for i in 0..k / 2 {
        diverged_a.add(
            servers[0],
            weakset_store::collection::MemberEntry {
                elem: ObjectId(n + 1 + i),
                home: servers[0],
            },
        );
        diverged_b.add(
            servers[1],
            weakset_store::collection::MemberEntry {
                elem: ObjectId(n + k + 1 + i),
                home: servers[1],
            },
        );
    }
    for (node, set) in [(servers[0], diverged_a), (servers[1], diverged_b)] {
        world.with_service_mut(node, |g: &mut GossipNode| {
            g.create_replica(coll, GossipSemantics::GrowShrink);
            *g.crdt_mut(coll).expect("replica just created") = MembershipCrdt::GrowShrink(set);
        });
    }
    engine::sync_pair_with(&mut world, coll, servers[0], servers[1], mode, ms(200));
    let digest = world.metrics().counter(weakset_obs::gossip::DIGEST_BYTES);
    let delta = world.metrics().counter(weakset_obs::gossip::DELTA_BYTES);
    let converged = engine::converged(&world, coll, &servers);
    (digest, delta, converged)
}

/// E10 — anti-entropy gossip: replicas diverge behind a partition, then
/// converge by digest-then-delta exchange. Objectives watch the wire —
/// including the big-reconcile sub-phase, where a `k`-element divergence
/// of an [`E10_BIG_N`]-dot OR-Set must cost `O(k log n)` bytes under
/// `MerkleRange` where `Full` ships the whole live-dot list.
fn e10_gossip(seed: u64) -> ObsSnapshot {
    let mut topo = Topology::new();
    let client_node = topo.add_node("client", 0);
    let servers: Vec<_> = topo.add_servers("replica-", 3);
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(config, topo, LatencyModel::Constant(ms(3)));
    world.events_mut().set_enabled(true);
    for &s in &servers {
        world.install_service(s, Box::new(GossipNode::new(s)));
    }
    let client = StoreClient::new(client_node, ms(50));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client
        .create_collection(&mut world, &cref)
        .expect("healthy world at setup");
    let set = WeakSet::new(client, cref.clone());
    for i in 0..8u64 {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("obj-{i}"), vec![b'x'; 64]),
            servers[(i % 3) as usize],
        )
        .expect("healthy world at setup");
    }
    // Diverge one replica behind a partition, then let gossip repair it.
    world.topology_mut().partition(&[servers[2]]);
    for i in 8..12u64 {
        let _ = set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("obj-{i}"), vec![b'x'; 64]),
            servers[0],
        );
    }
    world.topology_mut().heal_partition();
    let until = world.now() + ms(400);
    engine::install(
        &mut world,
        cref.id,
        cref.all_nodes(),
        GossipConfig {
            interval: ms(10),
            fanout: 1,
            until: Some(until),
            ..GossipConfig::default()
        },
    );
    world.run_to_quiescence();
    let converged = engine::converged(&world, cref.id, &cref.all_nodes());
    world
        .metrics_mut()
        .gauge_set("gossip.converged", u64::from(converged));

    // Big-reconcile sub-phase: both digest modes over the same
    // divergence, folded into this snapshot's registry so the compare
    // gate holds the O(k log n) claim at scale.
    let big_k = 64u64;
    let (full_digest, full_delta, full_conv) =
        big_reconcile(seed, E10_BIG_N, big_k, DigestMode::Full);
    let (mk_digest, mk_delta, mk_conv) =
        big_reconcile(seed, E10_BIG_N, big_k, DigestMode::MerkleRange);
    let m = world.metrics_mut();
    m.add("e10.big.full.digest_bytes", full_digest);
    m.add("e10.big.full.delta_bytes", full_delta);
    m.add("e10.big.merkle.digest_bytes", mk_digest);
    m.add("e10.big.merkle.delta_bytes", mk_delta);
    m.gauge_set("e10.big.converged", u64::from(full_conv && mk_conv));

    let snap = snapshot_with_trace(&mut world, "e10", seed);
    let wire = counter(&snap, "gossip.digest_bytes") + counter(&snap, "gossip.delta_bytes");
    let stale = counter(&snap, "gossip.replica_stale_rounds");
    let full_wire = (full_digest + full_delta) as f64;
    let merkle_wire = (mk_digest + mk_delta) as f64;
    with_common_objectives(snap)
        .with_objective("gossip_wire_bytes", wire, Direction::LowerIsBetter)
        .with_objective("stale_replica_rounds", stale, Direction::LowerIsBetter)
        .with_objective(
            "gossip_digest_bytes_1m",
            mk_digest as f64,
            Direction::LowerIsBetter,
        )
        .with_objective(
            "gossip_sync_bytes_1m",
            merkle_wire,
            Direction::LowerIsBetter,
        )
        .with_objective(
            "merkle_advantage_1m",
            full_wire / merkle_wire.max(1.0),
            Direction::HigherIsBetter,
        )
}

/// E11 — sharded batched reads: four shards co-located on one
/// three-node quorum group, read first shard-by-shard (the
/// pre-batching client, one round-trip per shard) and then through one
/// batch envelope per node. The gated objective is the batched path's
/// speedup over the sequential rounds.
fn e11_sharded(seed: u64) -> ObsSnapshot {
    const SHARDS: usize = 4;
    const ROUNDS: usize = 4;
    let mut w = wan(seed, 3, ms(5));
    let client = StoreClient::new(w.client_node, ms(200));
    let groups: Vec<ShardGroup> = (0..SHARDS)
        .map(|_| ShardGroup {
            home: w.servers[0],
            replicas: w.servers[1..].to_vec(),
        })
        .collect();
    let config = IterConfig {
        read_policy: ReadPolicy::Quorum,
        ..IterConfig::default()
    };
    let set = ShardedWeakSet::create(
        &mut w.world,
        CollectionId(1),
        client.clone(),
        &groups,
        config,
    )
    .expect("healthy world at setup");
    for i in 0..24u64 {
        set.add(
            &mut w.world,
            ObjectRecord::new(ObjectId(i + 1), format!("obj-{i}"), vec![b'x'; 64]),
            w.servers[(i % 3) as usize],
        )
        .expect("healthy world at setup");
    }

    let t0 = w.world.now();
    for _ in 0..ROUNDS {
        for i in 0..set.shard_count() {
            client
                .read_members(&mut w.world, set.shard(i).cref(), ReadPolicy::Quorum)
                .expect("healthy world");
        }
    }
    let sequential = w.world.now().saturating_since(t0);
    let t1 = w.world.now();
    for _ in 0..ROUNDS {
        for r in set.read_all_batched(&mut w.world) {
            r.expect("healthy world");
        }
    }
    let batched = w.world.now().saturating_since(t1);

    let speedup = sequential.as_micros() as f64 / batched.as_micros().max(1) as f64;
    let snap = snapshot_with_trace(&mut w.world, "e11", seed);
    let envelopes = counter(&snap, "net.batch.envelopes");
    with_common_objectives(snap)
        .with_objective("sharded_read_speedup", speedup, Direction::HigherIsBetter)
        .with_objective("batch_envelopes", envelopes, Direction::LowerIsBetter)
}

/// E12 — causal-session reads: wait latency vs staleness. Three gossip
/// replicas; a session client keeps adding members (secondaries lag —
/// no anti-entropy yet) while the primary is repeatedly partitioned
/// away at read time. A plain `Leaderless` union read serves whatever
/// the laggard secondaries hold (stale); the `CausalSession` read
/// parks until the partition heals and never misses a session write.
/// After anti-entropy converges the replicas, the same partitioned
/// read is served by the secondaries instantly — the wait cost decays
/// to zero as convergence catches up. Gated: the session must stay
/// perfectly fresh (a zero baseline, so *any* stale session read fails
/// the compare gate) and its wait latency must not regress.
fn e12_session(seed: u64) -> ObsSnapshot {
    const ROUNDS: u64 = 4;
    let mut topo = Topology::new();
    let client_node = topo.add_node("client", 0);
    let servers: Vec<_> = topo.add_servers("replica-", 3);
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(config, topo, LatencyModel::Constant(ms(3)));
    world.events_mut().set_enabled(true);
    for &s in &servers {
        world.install_service(s, Box::new(GossipNode::new(s)));
    }
    let session = StoreClient::new(client_node, ms(200)).with_session();
    let plain = StoreClient::new(client_node, ms(200));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    session
        .create_collection(&mut world, &cref)
        .expect("healthy world at setup");
    let set = WeakSet::new(session.clone(), cref.clone());
    let mut expected: Vec<u64> = Vec::new();
    let note_read = |world: &mut StoreWorld,
                     label: &str,
                     entries: &[weakset_store::collection::MemberEntry],
                     expected: &[u64]| {
        let missing = expected
            .iter()
            .filter(|e| !entries.iter().any(|m| m.elem.0 == **e))
            .count() as u64;
        if missing > 0 {
            world.metrics_mut().incr(&format!("e12.read.{label}.stale"));
            world
                .metrics_mut()
                .add(&format!("e12.read.{label}.missing"), missing);
        } else {
            world.metrics_mut().incr(&format!("e12.read.{label}.fresh"));
        }
    };

    // Phase 1: the secondaries lag (anti-entropy not running yet) and
    // the primary vanishes right when the client reads.
    for r in 0..ROUNDS {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(r + 1), format!("obj-{r}"), vec![b'x'; 64]),
            servers[0],
        )
        .expect("healthy world between partitions");
        expected.push(r + 1);
        world.topology_mut().partition(&[servers[0]]);
        if let Ok(read) = plain.read_members(&mut world, &cref, ReadPolicy::Leaderless) {
            note_read(&mut world, "leaderless", &read.entries, &expected);
        }
        world.spawn_in(ms(20), |w: &mut StoreWorld| {
            w.topology_mut().heal_partition();
        });
        let read = session
            .read_members(&mut world, &cref, ReadPolicy::CausalSession)
            .expect("session read completes once the partition heals");
        note_read(&mut world, "session", &read.entries, &expected);
        world.run_to_quiescence();
    }

    // Phase 2: let anti-entropy converge the replicas, then partition
    // the primary again — both reads are fresh now, and the session
    // read is served by the secondaries with no wait at all.
    let until = world.now() + ms(400);
    engine::install(
        &mut world,
        cref.id,
        cref.all_nodes(),
        GossipConfig {
            interval: ms(10),
            fanout: 1,
            until: Some(until),
            ..GossipConfig::default()
        },
    );
    world.run_to_quiescence();
    let converged = engine::converged(&world, cref.id, &cref.all_nodes());
    world
        .metrics_mut()
        .gauge_set("gossip.converged", u64::from(converged));
    world.topology_mut().partition(&[servers[0]]);
    if let Ok(read) = plain.read_members(&mut world, &cref, ReadPolicy::Leaderless) {
        note_read(&mut world, "leaderless", &read.entries, &expected);
    }
    let read = session
        .read_members(&mut world, &cref, ReadPolicy::CausalSession)
        .expect("converged secondaries satisfy the session");
    note_read(&mut world, "session", &read.entries, &expected);
    world.topology_mut().heal_partition();
    world.run_to_quiescence();

    let snap = snapshot_with_trace(&mut world, "e12", seed);
    let wait_p50 = snap
        .latencies
        .get(weakset_obs::session::READ_WAIT_US)
        .map(|s| s.p50_us as f64)
        .unwrap_or(0.0);
    let stale = counter(&snap, "e12.read.session.stale");
    let fresh = counter(&snap, "e12.read.session.fresh");
    with_common_objectives(snap)
        .with_objective("session_stale_reads", stale, Direction::LowerIsBetter)
        .with_objective("session_fresh_reads", fresh, Direction::HigherIsBetter)
        .with_objective("session_wait_p50_us", wait_p50, Direction::LowerIsBetter)
}

/// `fuzz` — DST throughput: a fixed batch of generated scenarios plus
/// one forced-violation shrink. Throughput is expressed in simulated
/// time (steps per simulated second), so the snapshot stays
/// byte-identical across machines.
fn fuzz(seed: u64) -> ObsSnapshot {
    let mut agg = MetricsRegistry::new();
    let mut steps = 0u64;
    let mut sim_us = 0u64;
    let mut cp = CriticalPath::default();
    let mut total_events = 0usize;
    for i in 0..12 {
        let s = generate(mix(seed, i));
        let report = execute(&s);
        agg.merge(&report.metrics);
        agg.incr("dst.scenarios");
        agg.add("dst.steps", report.steps as u64);
        agg.add("dst.violations", report.violations.len() as u64);
        steps += report.steps as u64;
        sim_us += report.sim_time_us;
        // Fold each run's causal stream into the aggregate: per-kind
        // event counts plus the critical-path decomposition.
        for e in &report.events {
            agg.incr(&format!("events.{}", e.kind));
        }
        cp.absorb(&critical_path(&CausalDag::from_events(&report.events)));
        total_events += report.events.len();
    }
    // A guaranteed violation exercises the shrinker; its cost in
    // executions is the metric.
    let mut sabotaged = generate(mix(seed, 0));
    sabotaged.chaos = Chaos::PhantomYield;
    let (minimal, execs) = shrink(&sabotaged);
    agg.add("dst.shrink.execs", execs as u64);
    agg.add("dst.shrink.final_ops", minimal.ops.len() as u64);

    let snap = agg.snapshot("fuzz", seed);
    let per_sim_sec = if sim_us == 0 {
        0.0
    } else {
        steps as f64 / (sim_us as f64 / 1_000_000.0)
    };
    let snap = with_common_objectives(snap)
        .with_objective("steps_per_sim_sec", per_sim_sec, Direction::HigherIsBetter)
        .with_objective("shrink_execs", execs as f64, Direction::LowerIsBetter);
    with_trace_objectives(snap, &cp, total_events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_builds_and_round_trips() {
        for id in SCENARIOS {
            let snap = build(id, 7);
            assert_eq!(snap.scenario, id);
            assert!(!snap.objectives.is_empty(), "{id}: no objectives");
            let json = snap.to_json();
            let back = ObsSnapshot::from_json(&json).expect(id);
            assert_eq!(back.to_json(), json, "{id}: not canonical");
        }
    }

    #[test]
    fn same_seed_means_identical_snapshot() {
        for id in ["e1", "e7", "e10"] {
            assert_eq!(build(id, 5).to_json(), build(id, 5).to_json(), "{id}");
        }
    }

    #[test]
    fn iteration_scenarios_actually_yield() {
        let snap = build("e1", 3);
        assert!(sum_suffix(&snap, ".yielded") > 0.0);
        assert!(snap.latencies.contains_key("iter.fig4.invocation_us"));
    }

    #[test]
    fn sharded_scenario_shows_a_real_batching_win() {
        let snap = build("e11", 9);
        let speedup = snap
            .objectives
            .get("sharded_read_speedup")
            .expect("objective present")
            .value;
        assert!(speedup > 1.5, "batched reads too slow: {speedup:.2}x");
        assert!(counter(&snap, "net.batch.envelopes") > 0.0);
    }

    #[test]
    fn gossip_scenario_converges_and_measures_the_wire() {
        let snap = build("e10", 11);
        assert_eq!(snap.gauges.get("gossip.converged"), Some(&1));
        assert!(counter(&snap, "gossip.delta_bytes") > 0.0);
        assert!(counter(&snap, "gossip.digest_bytes") > 0.0);
        // Big-reconcile sub-phase: both modes converged, and the
        // Merkle-range descent beat shipping the full live-dot list.
        // The gap is O(n / (k log n)), so the floor scales with
        // E10_BIG_N: at the release million-dot size the descent wins by
        // an order of magnitude; at the debug 20k size the per-range
        // split constant eats most of it.
        assert_eq!(snap.gauges.get("e10.big.converged"), Some(&1));
        let advantage = snap
            .objectives
            .get("merkle_advantage_1m")
            .expect("objective present")
            .value;
        let floor = if cfg!(debug_assertions) { 1.2 } else { 10.0 };
        assert!(
            advantage > floor,
            "merkle reconciliation advantage too small: {advantage:.2}x (floor {floor}x)"
        );
    }

    #[test]
    fn session_scenario_contrasts_staleness_with_wait_cost() {
        let snap = build("e12", 13);
        // The sessionless leaderless reads see the laggard secondaries
        // at least once, while the session client never misses its own
        // writes and pays for that with parked wait time.
        assert!(
            counter(&snap, "e12.read.leaderless.stale") > 0.0,
            "leaderless baseline never went stale — the contrast is gone"
        );
        let stale = snap
            .objectives
            .get("session_stale_reads")
            .expect("objective present")
            .value;
        assert_eq!(stale, 0.0, "session read missed its own write");
        assert!(counter(&snap, "e12.read.session.fresh") > 0.0);
        let wait = snap
            .objectives
            .get("session_wait_p50_us")
            .expect("objective present")
            .value;
        assert!(
            wait > 0.0,
            "session reads never waited — partition had no effect"
        );
        assert_eq!(snap.gauges.get("gossip.converged"), Some(&1));
    }
}
