//! # weakset-gossip
//!
//! Anti-entropy gossip replication for weak-set membership: collection
//! membership becomes a *delta-state CRDT* and replicas converge by
//! periodic pairwise exchanges instead of primary-serialized sync.
//!
//! "Specifying Weak Sets" specifies collection membership twice: Figure 5
//! gives a grow-only weak set (`s_i ⊆ s_j` for successive observations)
//! and Figure 6 a grow-and-shrink one (every yielded element was a member
//! at some point of the run). Both `ensures` clauses are *join-friendly*:
//! they constrain each observation against the history, not against a
//! single authoritative replica. This crate exploits that latitude:
//!
//! * [`crdt::GSet`] — grow-only membership; merge is union, so Figure 5's
//!   monotonicity survives any exchange order.
//! * [`crdt::ORSet`] — observed-remove membership with per-replica dotted
//!   version vectors; every element a replica ever reports was added at
//!   some point, which is Figure 6's guarantee.
//! * [`replica::GossipNode`] — a drop-in store service wrapping
//!   [`weakset_store::server::StoreServer`]: object traffic delegates,
//!   membership mutations mirror into the CRDT, membership reads answer
//!   from it, and the anti-entropy messages
//!   ([`weakset_store::msg::StoreMsg::GossipDigestReq`] and friends) are
//!   served.
//! * [`engine`] — periodic anti-entropy rounds as scheduled events on the
//!   [`weakset_sim`] event loop: configurable fan-out, interval, and
//!   push/pull/push-pull mode, with digest-then-delta exchanges so only
//!   missing dots cross the wire.
//! * [`reconcile`] — Merkle-range reconciliation over the live-dot
//!   space, selected by [`engine::DigestMode::MerkleRange`]: replicas
//!   locate their symmetric difference by descending mismatched hash
//!   ranges and exchange bytes proportional to the *difference*, which
//!   is what keeps anti-entropy affordable at 10^6 elements.
//!
//! Combined with [`weakset_store::client::ReadPolicy::Leaderless`], a
//! weak-set iterator can make progress from *any reachable converged
//! replica* while the primary is partitioned away — the leaderless
//! availability mode the paper's weak consistency permits.
//!
//! ## Example
//!
//! ```
//! use weakset_gossip::prelude::*;
//! use weakset_sim::prelude::*;
//! use weakset_store::prelude::*;
//!
//! let mut topo = Topology::new();
//! let client = topo.add_node("client", 0);
//! let a = topo.add_node("a", 1);
//! let b = topo.add_node("b", 2);
//! let mut world = StoreWorld::new(WorldConfig::seeded(7), topo, LatencyModel::default());
//! world.install_service(a, Box::new(GossipNode::new(a)));
//! world.install_service(b, Box::new(GossipNode::new(b)));
//!
//! let cl = StoreClient::new(client, SimDuration::from_millis(100));
//! let cref = CollectionRef { id: CollectionId(1), home: a, replicas: vec![b] };
//! cl.create_collection(&mut world, &cref)?;
//! cl.add_member(&mut world, &cref, MemberEntry { elem: ObjectId(1), home: a })?;
//!
//! // Anti-entropy rounds every 10 ms until stopped.
//! let gossip = engine::install(&mut world, cref.id, cref.all_nodes(), GossipConfig {
//!     interval: SimDuration::from_millis(10),
//!     ..GossipConfig::default()
//! });
//! world.run_until(SimTime::from_millis(50));
//! assert!(engine::converged(&world, cref.id, &cref.all_nodes()));
//! gossip.stop();
//! # Ok::<(), weakset_store::client::StoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crdt;
pub mod engine;
pub mod reconcile;
pub mod replica;

/// One-stop imports for gossip deployments.
pub mod prelude {
    pub use crate::crdt::{GSet, ORSet};
    pub use crate::engine::{self, DigestMode, GossipConfig, GossipHandle, GossipMode};
    pub use crate::reconcile::RangeTree;
    pub use crate::replica::{GossipNode, GossipSemantics, MembershipCrdt};
}
