//! The anti-entropy engine: periodic pairwise gossip rounds scheduled on
//! the runtime's timer queue.
//!
//! [`install`] spawns a self-rescheduling [`weakset_runtime::RtTask`]
//! that fires every [`GossipConfig::interval`]. Each round, every live
//! replica picks [`GossipConfig::fanout`] random peers (deterministically,
//! from the runtime's seeded RNG) and runs a digest-then-delta exchange in
//! the configured [`GossipMode`]. Exchanges are plain RPCs on the store
//! protocol, so partitions, crashes, and lossy links bite gossip exactly
//! as they bite every other client: a failed exchange is counted and
//! retried implicitly by the next round.
//!
//! Everything here runs against `&mut StoreRt` — the simulator and the
//! threaded backend drive the same rounds, the same metrics, the same
//! spans.
//!
//! Metrics recorded on the runtime: `gossip.rounds`, `gossip.exchanges`,
//! `gossip.failures`, `gossip.novel_shipped`, `gossip.push_skipped`,
//! `gossip.digest_bytes`, `gossip.delta_bytes` (wire cost of digests vs
//! deltas), and convergence lag (`gossip.replica_stale_rounds` — one
//! per replica per round whose digest trails the join of all live
//! replicas — plus the `gossip.stale_replicas.max` high-water gauge).

use crate::replica::GossipNode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use weakset_runtime::prelude::*;
use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_store::client::StoreRt;
use weakset_store::collection::MemberEntry;
use weakset_store::dotted::{MembershipDelta, VersionVector};
use weakset_store::msg::StoreMsg;
use weakset_store::object::CollectionId;

/// Epidemic exchange style for one round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GossipMode {
    /// The initiator ships its missing dots to the peer (digest request,
    /// then delta push: two RPCs).
    Push,
    /// The initiator asks the peer for its own missing dots (one RPC).
    Pull,
    /// Both directions in two RPCs: a pull whose reply reveals the
    /// peer's digest, then a push of whatever the peer is missing.
    #[default]
    PushPull,
}

/// Tunables for the anti-entropy schedule.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Peers each replica contacts per round.
    pub fanout: usize,
    /// Time between rounds.
    pub interval: SimDuration,
    /// Exchange style.
    pub mode: GossipMode,
    /// Per-RPC timeout inside an exchange.
    pub rpc_timeout: SimDuration,
    /// Stop scheduling rounds after this simulated time (`None`: run
    /// until [`GossipHandle::stop`]).
    pub until: Option<SimTime>,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 1,
            interval: SimDuration::from_millis(25),
            mode: GossipMode::default(),
            rpc_timeout: SimDuration::from_millis(20),
            until: None,
        }
    }
}

/// Cancels an installed anti-entropy schedule. `Send + Sync`: the
/// threaded backend's driver thread can stop a schedule installed from
/// another view.
#[derive(Clone, Debug)]
pub struct GossipHandle {
    stop: Arc<AtomicBool>,
}

impl GossipHandle {
    /// Stops the schedule: the next pending round exits without running
    /// or rescheduling.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// True once [`GossipHandle::stop`] has been called.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Installs periodic anti-entropy for one collection over `replicas`
/// (every node must run a [`GossipNode`] hosting the collection). The
/// first round fires one interval from now. Returns a handle that
/// cancels the schedule; with `config.until` unset the schedule runs
/// until stopped, so call [`GossipHandle::stop`] before expecting
/// [`weakset_sim::world::World::run_to_quiescence`] to terminate.
pub fn install(
    world: &mut StoreRt,
    coll: CollectionId,
    replicas: Vec<NodeId>,
    config: GossipConfig,
) -> GossipHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let round = Round {
        coll,
        replicas: Arc::new(replicas),
        config,
        rng: world.rng_for("gossip.engine"),
        stop: Arc::clone(&stop),
    };
    world.spawn_in(config.interval, Box::new(round));
    GossipHandle { stop }
}

/// Installs one independent anti-entropy schedule per shard: each
/// shard's sub-collection gossips strictly within its own replica
/// group, never across groups, so a partition (or a hot spot) in one
/// shard cannot slow convergence of the others. Handles come back in
/// shard order; stop them individually or all together.
///
/// Shard sub-collection ids are the caller's business (sharded weak
/// sets derive them with `weakset::shard::shard_collection_id`).
pub fn install_sharded(
    world: &mut StoreRt,
    shards: &[(CollectionId, Vec<NodeId>)],
    config: GossipConfig,
) -> Vec<GossipHandle> {
    shards
        .iter()
        .map(|(coll, replicas)| install(world, *coll, replicas.clone(), config))
        .collect()
}

/// True when every shard's replica group has converged on its own
/// sub-collection (see [`converged`]).
pub fn converged_sharded(world: &StoreRt, shards: &[(CollectionId, Vec<NodeId>)]) -> bool {
    shards
        .iter()
        .all(|(coll, replicas)| converged(world, *coll, replicas))
}

/// One immediate push-pull exchange between two replicas (no schedule) —
/// deterministic pairwise sync for tests and targeted repair.
pub fn sync_pair(
    world: &mut StoreRt,
    coll: CollectionId,
    a: NodeId,
    b: NodeId,
    rpc_timeout: SimDuration,
) {
    exchange(world, coll, a, b, GossipMode::PushPull, rpc_timeout);
}

/// Omniscient convergence check: true when every replica's CRDT exists
/// and reports the same membership and digest. (Test/experiment helper —
/// a real deployment cannot observe this.)
pub fn converged(world: &StoreRt, coll: CollectionId, replicas: &[NodeId]) -> bool {
    let mut first: Option<(Vec<MemberEntry>, VersionVector)> = None;
    for &r in replicas {
        let Some(state) = world
            .with_service(r, |g: &GossipNode| {
                g.crdt(coll).map(|c| (c.elements(), c.digest()))
            })
            .flatten()
        else {
            return false;
        };
        match &first {
            None => first = Some(state),
            Some(f) => {
                if *f != state {
                    return false;
                }
            }
        }
    }
    true
}

/// A replica's current CRDT membership, read omnisciently.
pub fn elements_at(world: &StoreRt, node: NodeId, coll: CollectionId) -> Option<Vec<MemberEntry>> {
    world
        .with_service(node, |g: &GossipNode| g.crdt(coll).map(|c| c.elements()))
        .flatten()
}

/// The self-rescheduling round task.
struct Round {
    coll: CollectionId,
    replicas: Arc<Vec<NodeId>>,
    config: GossipConfig,
    rng: SimRng,
    stop: Arc<AtomicBool>,
}

impl RtTask<StoreMsg> for Round {
    fn label(&self) -> &str {
        "gossip.round"
    }

    fn run(mut self: Box<Self>, world: &mut StoreRt) {
        if self.stop.load(Ordering::Relaxed) {
            return;
        }
        if let Some(until) = self.config.until {
            if world.now() >= until {
                return;
            }
        }
        world.metrics_mut().incr("gossip.rounds");
        // Each round is background work: the task dispatch cleared the
        // causal stack, so this span roots a fresh per-round trace that
        // every exchange (and its RPCs) nests under.
        let coll = self.coll;
        let round_span = world.span_enter("gossip.round", &|| coll.to_string());
        let nodes: Vec<NodeId> = self.replicas.to_vec();
        for &origin in &nodes {
            if !world.is_up(origin) {
                continue;
            }
            let mut peers: Vec<NodeId> = nodes.iter().copied().filter(|&p| p != origin).collect();
            self.rng.shuffle(&mut peers);
            peers.truncate(self.config.fanout);
            for peer in peers {
                exchange(
                    world,
                    self.coll,
                    origin,
                    peer,
                    self.config.mode,
                    self.config.rpc_timeout,
                );
            }
        }
        record_convergence_lag(world, self.coll, &nodes);
        world.span_exit(round_span);
        let interval = self.config.interval;
        world.spawn_in(interval, self);
    }
}

/// After each round, counts replicas whose digest still trails the join
/// of all live replicas' digests — the per-round convergence lag.
fn record_convergence_lag(world: &mut StoreRt, coll: CollectionId, replicas: &[NodeId]) {
    let mut digests: Vec<VersionVector> = Vec::new();
    for &r in replicas {
        if !world.is_up(r) {
            continue;
        }
        if let Some(d) = local_digest(world, r, coll) {
            digests.push(d);
        }
    }
    if digests.len() < 2 {
        return;
    }
    let mut joined = VersionVector::default();
    for d in &digests {
        joined.join(d);
    }
    let stale = digests.iter().filter(|d| !d.dominates(&joined)).count() as u64;
    let m = world.metrics_mut();
    m.add("gossip.replica_stale_rounds", stale);
    m.gauge_max("gossip.stale_replicas.max", stale);
}

/// Runs one exchange initiated by `origin` towards `peer`.
fn exchange(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    mode: GossipMode,
    timeout: SimDuration,
) {
    world.metrics_mut().incr("gossip.exchanges");
    let span = world.span_enter("gossip.exchange", &|| format!("{origin}->{peer}"));
    match mode {
        GossipMode::Pull => {
            pull(world, coll, origin, peer, timeout);
        }
        GossipMode::Push => {
            if let Some(peer_digest) = fetch_digest(world, coll, origin, peer, timeout) {
                push(world, coll, origin, peer, &peer_digest, timeout);
            }
        }
        GossipMode::PushPull => {
            // The pull reply carries the peer's full vector, which is
            // exactly the digest the return push needs: two RPCs total.
            if let Some(peer_vv) = pull(world, coll, origin, peer, timeout) {
                push(world, coll, origin, peer, &peer_vv, timeout);
            }
        }
    }
    world.span_exit(span);
}

/// Pull leg: ship our digest, join the peer's delta into local state.
/// Returns the peer's version vector on success.
fn pull(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    timeout: SimDuration,
) -> Option<VersionVector> {
    let digest = local_digest(world, origin, coll)?;
    record_digest(world, &digest);
    match world.rpc(
        origin,
        peer,
        StoreMsg::GossipDeltaReq { coll, digest },
        timeout,
    ) {
        Ok(StoreMsg::GossipDelta { delta, .. }) => {
            let peer_vv = delta.vv.clone();
            record_shipped(world, &delta);
            apply_local(world, origin, coll, delta);
            Some(peer_vv)
        }
        Ok(_) => None,
        Err(_) => {
            world.metrics_mut().incr("gossip.failures");
            None
        }
    }
}

/// Push leg: ship the peer whatever its digest does not cover.
fn push(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    peer_digest: &VersionVector,
    timeout: SimDuration,
) {
    let Some(delta) = local_delta(world, origin, coll, peer_digest) else {
        world.metrics_mut().incr("gossip.push_skipped");
        return;
    };
    record_shipped(world, &delta);
    match world.rpc(origin, peer, StoreMsg::GossipPush { coll, delta }, timeout) {
        Ok(_) => {}
        Err(_) => world.metrics_mut().incr("gossip.failures"),
    }
}

fn fetch_digest(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    timeout: SimDuration,
) -> Option<VersionVector> {
    match world.rpc(origin, peer, StoreMsg::GossipDigestReq(coll), timeout) {
        Ok(StoreMsg::GossipDigest { digest, .. }) => {
            record_digest(world, &digest);
            Some(digest)
        }
        Ok(_) => None,
        Err(_) => {
            world.metrics_mut().incr("gossip.failures");
            None
        }
    }
}

fn local_digest(world: &StoreRt, node: NodeId, coll: CollectionId) -> Option<VersionVector> {
    world
        .with_service(node, |g: &GossipNode| g.crdt(coll).map(|c| c.digest()))
        .flatten()
}

/// The delta `node` would send a peer holding `digest`; `None` when the
/// CRDT can prove the peer needs nothing.
fn local_delta(
    world: &StoreRt,
    node: NodeId,
    coll: CollectionId,
    digest: &VersionVector,
) -> Option<MembershipDelta> {
    world
        .with_service(node, |g: &GossipNode| {
            let crdt = g.crdt(coll)?;
            if crdt.nothing_for(digest) {
                return None;
            }
            Some(crdt.delta_since(digest))
        })
        .flatten()
}

fn apply_local(world: &mut StoreRt, node: NodeId, coll: CollectionId, delta: MembershipDelta) {
    world.with_service_mut(node, |g: &mut GossipNode| {
        // Route through the service's own handler so local joins and
        // remote pushes share one code path.
        g.apply(StoreMsg::GossipPush { coll, delta });
    });
}

fn record_shipped(world: &mut StoreRt, delta: &MembershipDelta) {
    let m = world.metrics_mut();
    m.add("gossip.novel_shipped", delta.novel.len() as u64);
    m.add("gossip.delta_bytes", delta.wire_size() as u64);
}

/// Charges a version vector crossing the wire: one (node, counter) pair
/// of two u64s per entry.
fn record_digest(world: &mut StoreRt, vv: &VersionVector) {
    world
        .metrics_mut()
        .add("gossip.digest_bytes", 16 * vv.len() as u64);
}
