//! The anti-entropy engine: periodic pairwise gossip rounds scheduled on
//! the runtime's timer queue.
//!
//! [`install`] spawns a self-rescheduling [`weakset_runtime::RtTask`]
//! that fires every [`GossipConfig::interval`]. Each round, every live
//! replica picks [`GossipConfig::fanout`] random peers (deterministically,
//! from the runtime's seeded RNG) and runs a digest-then-delta exchange in
//! the configured [`GossipMode`]. Exchanges are plain RPCs on the store
//! protocol, so partitions, crashes, and lossy links bite gossip exactly
//! as they bite every other client: a failed exchange is counted and
//! retried implicitly by the next round.
//!
//! Everything here runs against `&mut StoreRt` — the simulator and the
//! threaded backend drive the same rounds, the same metrics, the same
//! spans.
//!
//! [`GossipConfig::digest_mode`] selects how an exchange locates missing
//! dots: [`DigestMode::Full`] is the classic digest-then-delta pair of
//! RPCs, [`DigestMode::MerkleRange`] descends the [`crate::reconcile`]
//! range tree so bytes scale with the symmetric difference instead of
//! the set.
//!
//! Metrics recorded on the runtime (names in [`weakset_obs::gossip`]):
//! `gossip.rounds`, `gossip.exchanges`, `gossip.failures`,
//! `gossip.novel_shipped`, `gossip.push_skipped`, `gossip.range_rpcs`,
//! `gossip.digest_bytes`, `gossip.delta_bytes` (encoded wire cost of
//! digests vs deltas, comparable across both digest modes), and
//! convergence lag (`gossip.replica_stale_rounds` — one per live replica
//! per round whose digest trails the join of *all* replicas' digests,
//! crashed included — plus the `gossip.stale_replicas.max` and
//! `gossip.unreplicated_dots` high-water gauges).

use crate::reconcile::{diff_leaf, removed_at, RangeDiff};
use crate::replica::GossipNode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use weakset_obs::gossip as names;
use weakset_runtime::prelude::*;
use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_store::client::StoreRt;
use weakset_store::collection::MemberEntry;
use weakset_store::dotted::{Dot, DottedEntry, MembershipDelta, VersionVector};
use weakset_store::msg::StoreMsg;
use weakset_store::object::CollectionId;
use weakset_store::wire::{self, DeltaBatch, RangeKey, RangeReply, RangeSummary};

/// Epidemic exchange style for one round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GossipMode {
    /// The initiator ships its missing dots to the peer (digest request,
    /// then delta push: two RPCs).
    Push,
    /// The initiator asks the peer for its own missing dots (one RPC).
    Pull,
    /// Both directions in two RPCs: a pull whose reply reveals the
    /// peer's digest, then a push of whatever the peer is missing.
    #[default]
    PushPull,
}

/// How an exchange locates the dots a peer is missing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DigestMode {
    /// Classic digest-then-delta: ship the whole version vector, answer
    /// with a delta carrying the sender's **full live-dot list** (that
    /// is how removals propagate). `O(set)` bytes per exchange — optimal
    /// for small sets, where one round trip beats any descent.
    #[default]
    Full,
    /// Merkle-range reconciliation (see [`crate::reconcile`]): descend
    /// mismatched hash ranges of the live-dot space, then exchange
    /// [`DeltaBatch`]es containing only the located differences.
    /// `O(diff · log set)` bytes over a few round trips — the only
    /// affordable mode at 10^6 elements.
    MerkleRange,
}

/// Tunables for the anti-entropy schedule.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Peers each replica contacts per round.
    pub fanout: usize,
    /// Time between rounds.
    pub interval: SimDuration,
    /// Exchange style.
    pub mode: GossipMode,
    /// How exchanges locate missing dots.
    pub digest_mode: DigestMode,
    /// Per-RPC timeout inside an exchange.
    pub rpc_timeout: SimDuration,
    /// Stop scheduling rounds after this simulated time (`None`: run
    /// until [`GossipHandle::stop`]).
    pub until: Option<SimTime>,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 1,
            interval: SimDuration::from_millis(25),
            mode: GossipMode::default(),
            digest_mode: DigestMode::default(),
            rpc_timeout: SimDuration::from_millis(20),
            until: None,
        }
    }
}

/// Cancels an installed anti-entropy schedule. `Send + Sync`: the
/// threaded backend's driver thread can stop a schedule installed from
/// another view.
#[derive(Clone, Debug)]
pub struct GossipHandle {
    stop: Arc<AtomicBool>,
}

impl GossipHandle {
    /// Stops the schedule: the next pending round exits without running
    /// or rescheduling.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// True once [`GossipHandle::stop`] has been called.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Installs periodic anti-entropy for one collection over `replicas`
/// (every node must run a [`GossipNode`] hosting the collection). The
/// first round fires one interval from now. Returns a handle that
/// cancels the schedule; with `config.until` unset the schedule runs
/// until stopped, so call [`GossipHandle::stop`] before expecting
/// [`weakset_sim::world::World::run_to_quiescence`] to terminate.
pub fn install(
    world: &mut StoreRt,
    coll: CollectionId,
    replicas: Vec<NodeId>,
    config: GossipConfig,
) -> GossipHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let round = Round {
        coll,
        replicas: Arc::new(replicas),
        config,
        rng: world.rng_for("gossip.engine"),
        stop: Arc::clone(&stop),
    };
    world.spawn_in(config.interval, Box::new(round));
    GossipHandle { stop }
}

/// Installs one independent anti-entropy schedule per shard: each
/// shard's sub-collection gossips strictly within its own replica
/// group, never across groups, so a partition (or a hot spot) in one
/// shard cannot slow convergence of the others. Handles come back in
/// shard order; stop them individually or all together.
///
/// Shard sub-collection ids are the caller's business (sharded weak
/// sets derive them with `weakset::shard::shard_collection_id`).
pub fn install_sharded(
    world: &mut StoreRt,
    shards: &[(CollectionId, Vec<NodeId>)],
    config: GossipConfig,
) -> Vec<GossipHandle> {
    shards
        .iter()
        .map(|(coll, replicas)| install(world, *coll, replicas.clone(), config))
        .collect()
}

/// True when every shard's replica group has converged on its own
/// sub-collection (see [`converged`]).
pub fn converged_sharded(world: &StoreRt, shards: &[(CollectionId, Vec<NodeId>)]) -> bool {
    shards
        .iter()
        .all(|(coll, replicas)| converged(world, *coll, replicas))
}

/// One immediate push-pull exchange between two replicas (no schedule) —
/// deterministic pairwise sync for tests and targeted repair. Uses the
/// classic [`DigestMode::Full`] exchange.
pub fn sync_pair(
    world: &mut StoreRt,
    coll: CollectionId,
    a: NodeId,
    b: NodeId,
    rpc_timeout: SimDuration,
) {
    exchange(
        world,
        coll,
        a,
        b,
        GossipMode::PushPull,
        DigestMode::Full,
        rpc_timeout,
    );
}

/// [`sync_pair`] with an explicit digest mode: one immediate push-pull
/// exchange, reconciling by Merkle-range descent when asked.
pub fn sync_pair_with(
    world: &mut StoreRt,
    coll: CollectionId,
    a: NodeId,
    b: NodeId,
    digest_mode: DigestMode,
    rpc_timeout: SimDuration,
) {
    exchange(
        world,
        coll,
        a,
        b,
        GossipMode::PushPull,
        digest_mode,
        rpc_timeout,
    );
}

/// Omniscient convergence check: true when every replica's CRDT exists
/// and reports the same membership and digest. (Test/experiment helper —
/// a real deployment cannot observe this.)
pub fn converged(world: &StoreRt, coll: CollectionId, replicas: &[NodeId]) -> bool {
    let mut first: Option<(Vec<MemberEntry>, VersionVector)> = None;
    for &r in replicas {
        let Some(state) = world
            .with_service(r, |g: &GossipNode| {
                g.crdt(coll).map(|c| (c.elements(), c.digest()))
            })
            .flatten()
        else {
            return false;
        };
        match &first {
            None => first = Some(state),
            Some(f) => {
                if *f != state {
                    return false;
                }
            }
        }
    }
    true
}

/// A replica's current CRDT membership, read omnisciently.
pub fn elements_at(world: &StoreRt, node: NodeId, coll: CollectionId) -> Option<Vec<MemberEntry>> {
    world
        .with_service(node, |g: &GossipNode| g.crdt(coll).map(|c| c.elements()))
        .flatten()
}

/// The self-rescheduling round task.
struct Round {
    coll: CollectionId,
    replicas: Arc<Vec<NodeId>>,
    config: GossipConfig,
    rng: SimRng,
    stop: Arc<AtomicBool>,
}

impl RtTask<StoreMsg> for Round {
    fn label(&self) -> &str {
        "gossip.round"
    }

    fn run(mut self: Box<Self>, world: &mut StoreRt) {
        if self.stop.load(Ordering::Relaxed) {
            return;
        }
        if let Some(until) = self.config.until {
            if world.now() >= until {
                return;
            }
        }
        world.metrics_mut().incr(names::ROUNDS);
        // Each round is background work: the task dispatch cleared the
        // causal stack, so this span roots a fresh per-round trace that
        // every exchange (and its RPCs) nests under.
        let coll = self.coll;
        let round_span = world.span_enter("gossip.round", &|| coll.to_string());
        let nodes: Vec<NodeId> = self.replicas.to_vec();
        for &origin in &nodes {
            if !world.is_up(origin) {
                continue;
            }
            let mut peers: Vec<NodeId> = nodes.iter().copied().filter(|&p| p != origin).collect();
            self.rng.shuffle(&mut peers);
            peers.truncate(self.config.fanout);
            for peer in peers {
                exchange(
                    world,
                    self.coll,
                    origin,
                    peer,
                    self.config.mode,
                    self.config.digest_mode,
                    self.config.rpc_timeout,
                );
            }
        }
        record_convergence_lag(world, self.coll, &nodes);
        world.span_exit(round_span);
        let interval = self.config.interval;
        world.spawn_in(interval, self);
    }
}

/// After each round, counts live replicas whose digest still trails the
/// join of **every** replica's digest — crashed ones included. A crashed
/// replica holding dots no live replica has observed used to vanish from
/// the join entirely, so the round read as fully converged while state
/// sat unreplicated on a dead node; now those dots keep the live
/// replicas counted stale and additionally surface as the
/// `gossip.unreplicated_dots` gauge (dots that would be lost if the
/// crashed holders never recovered).
fn record_convergence_lag(world: &mut StoreRt, coll: CollectionId, replicas: &[NodeId]) {
    let mut live: Vec<VersionVector> = Vec::new();
    let mut down: Vec<VersionVector> = Vec::new();
    for &r in replicas {
        if let Some(d) = local_digest(world, r, coll) {
            if world.is_up(r) {
                live.push(d);
            } else {
                down.push(d);
            }
        }
    }
    if live.len() + down.len() < 2 {
        return;
    }
    let mut all_join = VersionVector::default();
    let mut live_join = VersionVector::default();
    for d in &live {
        all_join.join(d);
        live_join.join(d);
    }
    for d in &down {
        all_join.join(d);
    }
    let stale = live.iter().filter(|d| !d.dominates(&all_join)).count() as u64;
    let m = world.metrics_mut();
    m.add(names::REPLICA_STALE_ROUNDS, stale);
    m.gauge_max(names::STALE_REPLICAS_MAX, stale);
    m.gauge_max(
        names::UNREPLICATED_DOTS,
        all_join.total() - live_join.total(),
    );
}

/// Runs one exchange initiated by `origin` towards `peer`.
fn exchange(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    mode: GossipMode,
    digest_mode: DigestMode,
    timeout: SimDuration,
) {
    world.metrics_mut().incr(names::EXCHANGES);
    let span = world.span_enter("gossip.exchange", &|| format!("{origin}->{peer}"));
    match digest_mode {
        DigestMode::Full => match mode {
            GossipMode::Pull => {
                pull(world, coll, origin, peer, timeout);
            }
            GossipMode::Push => {
                if let Some(peer_digest) = fetch_digest(world, coll, origin, peer, timeout) {
                    push(world, coll, origin, peer, &peer_digest, timeout);
                }
            }
            GossipMode::PushPull => {
                // The pull reply carries the peer's full vector, which is
                // exactly the digest the return push needs: two RPCs total.
                if let Some(peer_vv) = pull(world, coll, origin, peer, timeout) {
                    push(world, coll, origin, peer, &peer_vv, timeout);
                }
            }
        },
        // The descent itself is direction-agnostic (both sides' trees are
        // compared range by range); GossipMode only selects which halves
        // of the located difference move.
        DigestMode::MerkleRange => {
            merkle_exchange(world, coll, origin, peer, mode, timeout);
        }
    }
    world.span_exit(span);
}

/// Pull leg: ship our digest, join the peer's delta into local state.
/// Returns the peer's version vector on success.
fn pull(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    timeout: SimDuration,
) -> Option<VersionVector> {
    let digest = local_digest(world, origin, coll)?;
    record_digest(world, &digest);
    match world.rpc(
        origin,
        peer,
        StoreMsg::GossipDeltaReq { coll, digest },
        timeout,
    ) {
        Ok(StoreMsg::GossipDelta { delta, .. }) => {
            let peer_vv = delta.vv.clone();
            record_shipped(world, &delta);
            apply_local(world, origin, coll, delta);
            Some(peer_vv)
        }
        Ok(other) => {
            unexpected_reply(world, "pull", peer, &other);
            None
        }
        Err(_) => {
            world.metrics_mut().incr(names::FAILURES);
            None
        }
    }
}

/// Push leg: ship the peer whatever its digest does not cover.
fn push(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    peer_digest: &VersionVector,
    timeout: SimDuration,
) {
    let Some(delta) = local_delta(world, origin, coll, peer_digest) else {
        world.metrics_mut().incr(names::PUSH_SKIPPED);
        return;
    };
    record_shipped(world, &delta);
    match world.rpc(origin, peer, StoreMsg::GossipPush { coll, delta }, timeout) {
        Ok(_) => {}
        Err(_) => world.metrics_mut().incr(names::FAILURES),
    }
}

/// One Merkle-range exchange: descend mismatched ranges of the two
/// replicas' live-dot trees, classify every one-sided dot as a missing
/// add or a propagating removal using the digests, then move the halves
/// [`GossipMode`] asks for — `Pull` applies the peer's half locally,
/// `Push` ships ours, `PushPull` does both. Bytes are charged to the
/// same counters as the `Full` path: summaries, match/split replies, and
/// digests to `gossip.digest_bytes`; leaf enumerations and the final
/// [`DeltaBatch`] to `gossip.delta_bytes`.
fn merkle_exchange(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    mode: GossipMode,
    timeout: SimDuration,
) -> Option<()> {
    let (tree, my_vv) = world
        .with_service(origin, |g: &GossipNode| {
            g.crdt(coll).map(|c| (c.range_tree(), c.digest()))
        })
        .flatten()?;

    // Descent: probe the frontier, fold leaves into the diff, keep only
    // still-mismatching children. Depth grows by SPLIT_BITS per round,
    // so the loop is bounded by 64 / SPLIT_BITS rounds.
    let mut diff = RangeDiff::default();
    let mut frontier = vec![tree.summary(RangeKey::ROOT)];
    let mut peer_vv: Option<VersionVector> = None;
    while !frontier.is_empty() {
        let probe_bytes: usize = frontier.iter().map(RangeSummary::encoded_size).sum();
        let m = world.metrics_mut();
        m.incr(names::RANGE_RPCS);
        m.add(names::DIGEST_BYTES, probe_bytes as u64);
        let reply = world.rpc(
            origin,
            peer,
            StoreMsg::GossipRangeReq {
                coll,
                ranges: frontier,
            },
            timeout,
        );
        let (digest, ranges) = match reply {
            Ok(StoreMsg::GossipRangeResp { digest, ranges, .. }) => (digest, ranges),
            Ok(other) => {
                unexpected_reply(world, "merkle_probe", peer, &other);
                return None;
            }
            Err(_) => {
                world.metrics_mut().incr(names::FAILURES);
                return None;
            }
        };
        record_digest(world, &digest);
        // Pin the peer vector from the FIRST response. Later responses
        // read the peer's *live* replica, whose vector may have advanced
        // past entries the descent will never revisit; shipping or
        // joining such a vector would certify dots as seen-and-removed
        // when their adds were simply never transferred — a permanent
        // divergence, since `apply_batch` refuses novel entries whose
        // dots the local vector already covers.
        if peer_vv.is_none() {
            peer_vv = Some(digest);
        }
        let mut next = Vec::new();
        let mut reply_meta = 0usize;
        let mut leaf_bytes = 0usize;
        for r in &ranges {
            match r {
                RangeReply::Match(_) => reply_meta += r.encoded_size(),
                RangeReply::Leaf { key, entries } => {
                    leaf_bytes += r.encoded_size();
                    diff_leaf(&tree, *key, entries, &mut diff);
                }
                RangeReply::Split(children) => {
                    reply_meta += r.encoded_size();
                    for child in children {
                        let mine = tree.summary(child.key);
                        if mine.count != child.count || mine.hash != child.hash {
                            next.push(mine);
                        }
                    }
                }
            }
        }
        let m = world.metrics_mut();
        m.add(names::DIGEST_BYTES, reply_meta as u64);
        m.add(names::DELTA_BYTES, leaf_bytes as u64);
        frontier = next;
    }
    let peer_vv = peer_vv?;

    // Classify each one-sided dot: a digest that covers the dot has
    // *observed* the add, so its absence from that side's live set means
    // it was removed there — propagate the removal. Uncovered means the
    // add simply has not arrived yet — ship the entry.
    let mut novel_for_me: Vec<DottedEntry> = Vec::new();
    let mut drop_for_peer: Vec<Dot> = Vec::new();
    for e in &diff.peer_only {
        if removed_at(&my_vv, e.dot) {
            drop_for_peer.push(e.dot);
        } else if peer_vv.contains(e.dot) {
            // Entries the peer gained mid-descent (dots past its pinned
            // vector) wait for the next round: applying them under the
            // pinned vector would break the covers-all-entries
            // invariant.
            novel_for_me.push(*e);
        }
    }
    let mut novel_for_peer: Vec<DottedEntry> = Vec::new();
    let mut drop_for_me: Vec<Dot> = Vec::new();
    for e in &diff.mine_only {
        if removed_at(&peer_vv, e.dot) {
            drop_for_me.push(e.dot);
        } else {
            novel_for_peer.push(*e);
        }
    }

    if matches!(mode, GossipMode::Pull | GossipMode::PushPull) {
        // Applying the peer's vector alongside its half also certifies
        // the drops (apply_batch only honours covered dots) and joins
        // the vectors, mirroring what a Full-mode pull learns.
        let batch = DeltaBatch {
            vv: peer_vv.clone(),
            novel: novel_for_me,
            drop: drop_for_me,
        };
        world.with_service_mut(origin, |g: &mut GossipNode| {
            g.apply(StoreMsg::GossipDeltaBatch { coll, batch });
        });
    }

    if matches!(mode, GossipMode::Push | GossipMode::PushPull) {
        // Ship the join of the two vectors *the diff was computed
        // against* — never a live re-read, which could cover dots added
        // concurrently whose entries are in neither half of the diff
        // (the peer would then refuse them forever as already-seen).
        // The snapshot join still certifies our drops and hands the
        // peer everything a Full-mode exchange would.
        let mut vv_join = my_vv.clone();
        vv_join.join(&peer_vv);
        if novel_for_peer.is_empty() && drop_for_peer.is_empty() && peer_vv.dominates(&vv_join) {
            world.metrics_mut().incr(names::PUSH_SKIPPED);
        } else {
            let batch = DeltaBatch {
                vv: vv_join,
                novel: novel_for_peer,
                drop: drop_for_peer,
            };
            let m = world.metrics_mut();
            m.add(names::NOVEL_SHIPPED, batch.novel.len() as u64);
            m.add(names::DELTA_BYTES, batch.encoded_size() as u64);
            match world.rpc(
                origin,
                peer,
                StoreMsg::GossipDeltaBatch { coll, batch },
                timeout,
            ) {
                Ok(_) => {}
                Err(_) => world.metrics_mut().incr(names::FAILURES),
            }
        }
    }
    Some(())
}

fn fetch_digest(
    world: &mut StoreRt,
    coll: CollectionId,
    origin: NodeId,
    peer: NodeId,
    timeout: SimDuration,
) -> Option<VersionVector> {
    match world.rpc(origin, peer, StoreMsg::GossipDigestReq(coll), timeout) {
        Ok(StoreMsg::GossipDigest { digest, .. }) => {
            record_digest(world, &digest);
            Some(digest)
        }
        Ok(other) => {
            unexpected_reply(world, "fetch_digest", peer, &other);
            None
        }
        Err(_) => {
            world.metrics_mut().incr(names::FAILURES);
            None
        }
    }
}

/// A peer answered an anti-entropy request with the wrong message type —
/// usually a node that does not run a [`GossipNode`], or a collection it
/// does not replicate. Dropping these silently made misconfigured
/// deployments look healthy (the exchange just vanished, every round,
/// forever); count them as failures and leave a trace breadcrumb naming
/// the leg and the reply.
fn unexpected_reply(world: &mut StoreRt, leg: &str, peer: NodeId, reply: &StoreMsg) {
    world.metrics_mut().incr(names::FAILURES);
    world.trace_event("gossip.unexpected_reply", &|| {
        format!("{leg} from {peer}: {reply:?}")
    });
}

fn local_digest(world: &StoreRt, node: NodeId, coll: CollectionId) -> Option<VersionVector> {
    world
        .with_service(node, |g: &GossipNode| g.crdt(coll).map(|c| c.digest()))
        .flatten()
}

/// The delta `node` would send a peer holding `digest`; `None` when the
/// CRDT can prove the peer needs nothing.
fn local_delta(
    world: &StoreRt,
    node: NodeId,
    coll: CollectionId,
    digest: &VersionVector,
) -> Option<MembershipDelta> {
    world
        .with_service(node, |g: &GossipNode| {
            let crdt = g.crdt(coll)?;
            if crdt.nothing_for(digest) {
                return None;
            }
            Some(crdt.delta_since(digest))
        })
        .flatten()
}

fn apply_local(world: &mut StoreRt, node: NodeId, coll: CollectionId, delta: MembershipDelta) {
    world.with_service_mut(node, |g: &mut GossipNode| {
        // Route through the service's own handler so local joins and
        // remote pushes share one code path.
        g.apply(StoreMsg::GossipPush { coll, delta });
    });
}

fn record_shipped(world: &mut StoreRt, delta: &MembershipDelta) {
    let m = world.metrics_mut();
    m.add(names::NOVEL_SHIPPED, delta.novel.len() as u64);
    m.add(names::DELTA_BYTES, wire::delta_encoded_size(delta) as u64);
}

/// Charges a version vector crossing the wire at its compact encoded
/// size. The old flat `16 * len` both overcharged small vectors (varints
/// are 1–3 bytes here, not 16) and ignored that OR-Set removal dots keep
/// widening the vector — the two modes are only comparable when both are
/// billed by the same `weakset_store::wire` encoding.
fn record_digest(world: &mut StoreRt, vv: &VersionVector) {
    world
        .metrics_mut()
        .add(names::DIGEST_BYTES, wire::vv_encoded_size(vv) as u64);
}
