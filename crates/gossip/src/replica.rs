//! The gossip replica service: a [`StoreServer`] decorated with CRDT
//! membership replicas and the anti-entropy message handlers.
//!
//! A [`GossipNode`] answers the full store protocol. Object traffic and
//! lock/guard management delegate straight to the wrapped server;
//! membership messages are intercepted so that every successful mutation
//! is mirrored into the node's [`MembershipCrdt`] and every
//! [`StoreMsg::ListMembers`] read is answered *from* the CRDT. The
//! primary-path state (versioned [`CollectionState`] with its mutation
//! log) keeps evolving untouched inside the wrapped server, so the
//! primary/quorum read policies and conformance checking keep working on
//! the same deployment that gossip serves.
//!
//! [`CollectionState`]: weakset_store::collection::CollectionState

use crate::crdt::{GSet, ORSet};
use crate::reconcile::RangeTree;
use std::collections::{BTreeSet, HashMap};
use weakset_runtime::prelude::*;
use weakset_sim::node::NodeId;
use weakset_sim::world::{Service, ServiceCtx};
use weakset_store::collection::MemberEntry;
use weakset_store::dotted::{Dot, MembershipDelta, VersionVector};
use weakset_store::msg::StoreMsg;
use weakset_store::object::{CollectionId, ObjectId};
use weakset_store::server::StoreServer;
use weakset_store::wire::DeltaBatch;

/// Which of the paper's two membership specifications a replica enforces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GossipSemantics {
    /// Figure 5: the membership only grows. Backed by a [`GSet`];
    /// removals are ignored at the CRDT layer.
    GrowOnly,
    /// Figure 6: members come and go. Backed by an [`ORSet`] with
    /// observed-remove semantics.
    #[default]
    GrowShrink,
}

/// One collection's CRDT replica: either flavour behind a uniform API.
#[derive(Clone, Debug, PartialEq)]
pub enum MembershipCrdt {
    /// Grow-only membership (Figure 5).
    GrowOnly(GSet),
    /// Grow-and-shrink membership (Figure 6).
    GrowShrink(ORSet),
}

impl MembershipCrdt {
    /// An empty replica with the given semantics.
    pub fn new(semantics: GossipSemantics) -> Self {
        match semantics {
            GossipSemantics::GrowOnly => MembershipCrdt::GrowOnly(GSet::new()),
            GossipSemantics::GrowShrink => MembershipCrdt::GrowShrink(ORSet::new()),
        }
    }

    /// The semantics this replica enforces.
    pub fn semantics(&self) -> GossipSemantics {
        match self {
            MembershipCrdt::GrowOnly(_) => GossipSemantics::GrowOnly,
            MembershipCrdt::GrowShrink(_) => GossipSemantics::GrowShrink,
        }
    }

    /// Adds `entry` as a mutation of `replica`.
    pub fn add(&mut self, replica: NodeId, entry: MemberEntry) -> Dot {
        match self {
            MembershipCrdt::GrowOnly(s) => s.add(replica, entry),
            MembershipCrdt::GrowShrink(s) => s.add(replica, entry),
        }
    }

    /// Removes an element as a mutation of `replica`. Grow-only replicas
    /// ignore the request (the set only grows — Fig. 5 has no removal
    /// transition) and report 0.
    pub fn remove(&mut self, replica: NodeId, elem: ObjectId) -> usize {
        match self {
            MembershipCrdt::GrowOnly(_) => 0,
            MembershipCrdt::GrowShrink(s) => s.remove(replica, elem),
        }
    }

    /// The current membership, sorted.
    pub fn elements(&self) -> Vec<MemberEntry> {
        let set = match self {
            MembershipCrdt::GrowOnly(s) => s.elements(),
            MembershipCrdt::GrowShrink(s) => s.elements(),
        };
        set.into_iter().collect()
    }

    /// True when some live entry has this element id.
    pub fn contains(&self, elem: ObjectId) -> bool {
        match self {
            MembershipCrdt::GrowOnly(s) => s.contains(elem),
            MembershipCrdt::GrowShrink(s) => s.contains(elem),
        }
    }

    /// The replica's digest (every observed dot).
    pub fn digest(&self) -> VersionVector {
        match self {
            MembershipCrdt::GrowOnly(s) => s.digest(),
            MembershipCrdt::GrowShrink(s) => s.digest(),
        }
    }

    /// The delta a peer with `digest` is missing.
    pub fn delta_since(&self, digest: &VersionVector) -> MembershipDelta {
        match self {
            MembershipCrdt::GrowOnly(s) => s.delta_since(digest),
            MembershipCrdt::GrowShrink(s) => s.delta_since(digest),
        }
    }

    /// Joins a delta into this replica.
    pub fn apply(&mut self, delta: &MembershipDelta) {
        match self {
            MembershipCrdt::GrowOnly(s) => s.apply(delta),
            MembershipCrdt::GrowShrink(s) => s.apply(delta),
        }
    }

    /// Every live entry with its dot — the input to a Merkle-range
    /// reconciliation tree.
    pub fn dotted_entries(&self) -> Vec<weakset_store::dotted::DottedEntry> {
        match self {
            MembershipCrdt::GrowOnly(s) => s.dotted_entries(),
            MembershipCrdt::GrowShrink(s) => s.dotted_entries(),
        }
    }

    /// Joins a Merkle-range delta batch into this replica.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) {
        match self {
            MembershipCrdt::GrowOnly(s) => s.apply_batch(batch),
            MembershipCrdt::GrowShrink(s) => s.apply_batch(batch),
        }
    }

    /// The replica's [`RangeTree`] over its live dots, for answering or
    /// driving a Merkle-range descent.
    pub fn range_tree(&self) -> RangeTree {
        RangeTree::from_entries(self.dotted_entries())
    }

    /// True when a peer holding `digest` could learn nothing from us:
    /// the digest dominates ours. Sound for both flavours because every
    /// effective mutation — including OR-Set removals, via their removal
    /// dots — advances the version vector.
    pub fn nothing_for(&self, digest: &VersionVector) -> bool {
        digest.dominates(&self.digest())
    }
}

/// A store node that also speaks the anti-entropy protocol.
///
/// Install one per replica node instead of a bare [`StoreServer`]; the
/// anti-entropy rounds themselves are driven by
/// [`crate::engine::install`].
#[derive(Debug)]
pub struct GossipNode {
    node: NodeId,
    inner: StoreServer,
    replicas: HashMap<CollectionId, MembershipCrdt>,
    /// Removals deferred while the wrapped server holds a grow guard
    /// (§3.3): mirrored here so the CRDT releases its ghosts at the same
    /// moment the primary-path state does.
    pending_removes: HashMap<CollectionId, BTreeSet<ObjectId>>,
    default_semantics: GossipSemantics,
}

impl GossipNode {
    /// A gossip replica on `node`. Collections created through the
    /// protocol get [`GossipSemantics::GrowShrink`] replicas unless
    /// [`GossipNode::with_default_semantics`] says otherwise.
    pub fn new(node: NodeId) -> Self {
        GossipNode {
            node,
            inner: StoreServer::new(),
            replicas: HashMap::new(),
            pending_removes: HashMap::new(),
            default_semantics: GossipSemantics::default(),
        }
    }

    /// Sets the semantics used for protocol-created collections.
    #[must_use]
    pub fn with_default_semantics(mut self, semantics: GossipSemantics) -> Self {
        self.default_semantics = semantics;
        self
    }

    /// The node this replica runs on (the replica id its dots carry).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Creates (or re-types) a CRDT replica for `coll` explicitly —
    /// deployment setup for collections whose semantics differ from the
    /// node default. Also ensures the wrapped server hosts the
    /// collection.
    pub fn create_replica(&mut self, coll: CollectionId, semantics: GossipSemantics) {
        self.inner.preload_collection(coll);
        self.replicas.insert(coll, MembershipCrdt::new(semantics));
    }

    /// Read access to a collection's CRDT replica.
    pub fn crdt(&self, coll: CollectionId) -> Option<&MembershipCrdt> {
        self.replicas.get(&coll)
    }

    /// Mutable access to a collection's CRDT replica (bench/test
    /// preloading of large sets without driving the full protocol).
    pub fn crdt_mut(&mut self, coll: CollectionId) -> Option<&mut MembershipCrdt> {
        self.replicas.get_mut(&coll)
    }

    /// The wrapped plain store server.
    pub fn inner(&self) -> &StoreServer {
        &self.inner
    }

    /// Mutable access to the wrapped server (test/workload preloading).
    pub fn inner_mut(&mut self) -> &mut StoreServer {
        &mut self.inner
    }

    /// Applies a request locally, exactly as [`StoreServer::apply`] but
    /// through the gossip-aware interception.
    pub fn apply(&mut self, msg: StoreMsg) -> StoreMsg {
        self.handle_msg(msg)
    }

    /// Omniscient visitor for the collection's primary-path state (the
    /// version log that conformance checking replays), reaching through
    /// the [`GossipNode`] wrapper on `node`. Pass it straight to
    /// `HistorySource::new` to observe iterator runs over gossip
    /// deployments; `visit` is simply not called when the node hosts no
    /// gossip service or no such collection.
    pub fn visit_collection_history(
        world: &weakset_store::client::StoreRt,
        node: NodeId,
        coll: CollectionId,
        visit: &mut dyn FnMut(&weakset_store::collection::CollectionState),
    ) {
        world.with_service(node, |g: &GossipNode| {
            if let Some(state) = g.inner().collection(coll) {
                visit(state);
            }
        });
    }

    fn member_of_inner(&self, coll: CollectionId, elem: ObjectId) -> bool {
        self.inner
            .collection(coll)
            .is_some_and(|c| c.contains(elem))
    }

    fn handle_msg(&mut self, msg: StoreMsg) -> StoreMsg {
        match msg {
            StoreMsg::GossipDigestReq(coll) => match self.replicas.get(&coll) {
                Some(crdt) => StoreMsg::GossipDigest {
                    coll,
                    digest: crdt.digest(),
                },
                None => StoreMsg::NoSuchCollection(coll),
            },
            StoreMsg::GossipDeltaReq { coll, digest } => match self.replicas.get(&coll) {
                Some(crdt) => StoreMsg::GossipDelta {
                    coll,
                    delta: crdt.delta_since(&digest),
                },
                None => StoreMsg::NoSuchCollection(coll),
            },
            StoreMsg::GossipPush { coll, delta } => match self.replicas.get_mut(&coll) {
                Some(crdt) => {
                    crdt.apply(&delta);
                    StoreMsg::GossipDigest {
                        coll,
                        digest: crdt.digest(),
                    }
                }
                None => StoreMsg::NoSuchCollection(coll),
            },
            // One round of a Merkle-range descent: answer every probed
            // range from a fresh snapshot of the live-dot tree, stamping
            // the reply with our digest (the initiator needs it to tell
            // removals from unseen adds).
            StoreMsg::GossipRangeReq { coll, ranges } => match self.replicas.get(&coll) {
                Some(crdt) => StoreMsg::GossipRangeResp {
                    coll,
                    digest: crdt.digest(),
                    ranges: crdt.range_tree().respond(&ranges),
                },
                None => StoreMsg::NoSuchCollection(coll),
            },
            StoreMsg::GossipDeltaBatch { coll, batch } => match self.replicas.get_mut(&coll) {
                Some(crdt) => {
                    crdt.apply_batch(&batch);
                    StoreMsg::GossipDigest {
                        coll,
                        digest: crdt.digest(),
                    }
                }
                None => StoreMsg::NoSuchCollection(coll),
            },
            StoreMsg::CreateCollection(coll) => {
                let reply = self.inner.apply(StoreMsg::CreateCollection(coll));
                self.replicas
                    .entry(coll)
                    .or_insert_with(|| MembershipCrdt::new(self.default_semantics));
                reply
            }
            StoreMsg::ListMembers(coll) => match self.replicas.get(&coll) {
                // Reads come from the CRDT: its digest total is a
                // monotone version and converged replicas agree on it.
                Some(crdt) => StoreMsg::Members {
                    version: crdt.digest().total(),
                    entries: crdt.elements(),
                },
                None => self.inner.apply(StoreMsg::ListMembers(coll)),
            },
            StoreMsg::AddMember { coll, entry } => {
                // Mirror only *effective* adds so the CRDT's dot count
                // tracks the wrapped server's version (duplicate adds do
                // not bump either side).
                let already = self.member_of_inner(coll, entry.elem);
                let reply = self.inner.apply(StoreMsg::AddMember { coll, entry });
                if matches!(reply, StoreMsg::Members { .. }) && !already {
                    if let Some(crdt) = self.replicas.get_mut(&coll) {
                        crdt.add(self.node, entry);
                    }
                }
                reply
            }
            StoreMsg::RemoveMember { coll, elem } => {
                let guarded = self.inner.is_grow_guarded(coll);
                let present = self.member_of_inner(coll, elem);
                let reply = self.inner.apply(StoreMsg::RemoveMember { coll, elem });
                if matches!(reply, StoreMsg::Members { .. }) && present {
                    if guarded {
                        self.pending_removes.entry(coll).or_default().insert(elem);
                    } else if let Some(crdt) = self.replicas.get_mut(&coll) {
                        crdt.remove(self.node, elem);
                    }
                }
                reply
            }
            StoreMsg::ReleaseGrowGuard { coll, token } => {
                let reply = self.inner.apply(StoreMsg::ReleaseGrowGuard { coll, token });
                if !self.inner.is_grow_guarded(coll) {
                    if let Some(ghosts) = self.pending_removes.remove(&coll) {
                        let node = self.node;
                        if let Some(crdt) = self.replicas.get_mut(&coll) {
                            for elem in ghosts {
                                crdt.remove(node, elem);
                            }
                        }
                    }
                }
                reply
            }
            // Session-gated requests. Scalar version totals are NOT a
            // sound causality floor for gossip replicas (two replicas
            // can cover disjoint dot sets with equal totals), so the
            // gate is dot-level: the replica must dominate the clock
            // the session has observed. Replies carry the replica's
            // digest so the client learns dot-level dependencies.
            StoreMsg::WithSession { session, inner } => match *inner {
                StoreMsg::ListMembers(coll) => match self.replicas.get(&coll) {
                    Some(crdt) => {
                        let digest = crdt.digest();
                        let floor_clock = session.clock(coll);
                        let clock_ok = floor_clock.is_none_or(|c| digest.dominates(c));
                        let total_ok = digest.total() >= session.floor(coll);
                        if clock_ok && total_ok {
                            StoreMsg::SessionStamped {
                                clock: digest.clone(),
                                inner: Box::new(StoreMsg::Members {
                                    version: digest.total(),
                                    entries: crdt.elements(),
                                }),
                            }
                        } else {
                            StoreMsg::SessionBehind {
                                coll,
                                have: digest.total(),
                                need: session
                                    .floor(coll)
                                    .max(floor_clock.map_or(0, VersionVector::total)),
                            }
                        }
                    }
                    // No CRDT replica here: the wrapped plain server's
                    // scalar gate (sound for primary-serialized state)
                    // takes over.
                    None => self.inner.apply(StoreMsg::WithSession {
                        session,
                        inner: Box::new(StoreMsg::ListMembers(coll)),
                    }),
                },
                // Mutations pass through the gossip-aware interception,
                // then the reply is stamped with the post-mutation
                // digest — the dot this session must later find.
                other => {
                    let target = match &other {
                        StoreMsg::AddMember { coll, .. } | StoreMsg::RemoveMember { coll, .. } => {
                            Some(*coll)
                        }
                        _ => None,
                    };
                    let reply = self.handle_msg(other);
                    match target.and_then(|c| self.replicas.get(&c)) {
                        Some(crdt) if matches!(reply, StoreMsg::Members { .. }) => {
                            StoreMsg::SessionStamped {
                                clock: crdt.digest(),
                                inner: Box::new(reply),
                            }
                        }
                        _ => reply,
                    }
                }
            },
            // Batched parts must re-enter HERE, not the wrapped server,
            // so CRDT-backed reads stay CRDT-backed inside envelopes.
            StoreMsg::Batch(parts) => {
                StoreMsg::BatchReply(parts.into_iter().map(|p| self.handle_msg(p)).collect())
            }
            // Object traffic, queries, locks, and the rival primary-sync
            // path go straight to the wrapped server.
            other => self.inner.apply(other),
        }
    }
}

impl Service<StoreMsg> for GossipNode {
    fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: StoreMsg) -> StoreMsg {
        self.handle_msg(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn e(id: u64) -> MemberEntry {
        MemberEntry {
            elem: ObjectId(id),
            home: n(0),
        }
    }

    fn node_with_coll(semantics: GossipSemantics) -> (GossipNode, CollectionId) {
        let mut g = GossipNode::new(n(1)).with_default_semantics(semantics);
        let c = CollectionId(1);
        assert_eq!(g.apply(StoreMsg::CreateCollection(c)), StoreMsg::Ack);
        (g, c)
    }

    #[test]
    fn mutations_mirror_into_the_crdt() {
        let (mut g, c) = node_with_coll(GossipSemantics::GrowShrink);
        g.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(1),
        });
        g.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(2),
        });
        assert!(g.crdt(c).unwrap().contains(ObjectId(1)));
        g.apply(StoreMsg::RemoveMember {
            coll: c,
            elem: ObjectId(1),
        });
        assert!(!g.crdt(c).unwrap().contains(ObjectId(1)));
        // Reads answer from the CRDT with the digest total as version:
        // two adds plus one removal dot — aligned with the wrapped
        // server's mutation count.
        let reply = g.apply(StoreMsg::ListMembers(c));
        assert_eq!(
            reply,
            StoreMsg::Members {
                version: 3,
                entries: vec![e(2)]
            }
        );
        // The wrapped server's versioned log evolved in lock-step.
        assert_eq!(g.inner().collection(c).unwrap().version(), 3);
        // A duplicate add bumps neither side.
        g.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(2),
        });
        assert_eq!(g.inner().collection(c).unwrap().version(), 3);
        assert_eq!(g.crdt(c).unwrap().digest().total(), 3);
    }

    #[test]
    fn refused_mutations_do_not_touch_the_crdt() {
        let (mut g, c) = node_with_coll(GossipSemantics::GrowShrink);
        g.apply(StoreMsg::AcquireReadLock { coll: c, token: 9 });
        assert_eq!(
            g.apply(StoreMsg::AddMember {
                coll: c,
                entry: e(1)
            }),
            StoreMsg::Locked
        );
        assert!(g.crdt(c).unwrap().elements().is_empty());
    }

    #[test]
    fn grow_guard_defers_crdt_removal_too() {
        let (mut g, c) = node_with_coll(GossipSemantics::GrowShrink);
        g.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(1),
        });
        g.apply(StoreMsg::AcquireGrowGuard { coll: c, token: 5 });
        g.apply(StoreMsg::RemoveMember {
            coll: c,
            elem: ObjectId(1),
        });
        // Ghost: still a member on both the primary path and the CRDT.
        assert!(g.inner().collection(c).unwrap().contains(ObjectId(1)));
        assert!(g.crdt(c).unwrap().contains(ObjectId(1)));
        g.apply(StoreMsg::ReleaseGrowGuard { coll: c, token: 5 });
        assert!(!g.inner().collection(c).unwrap().contains(ObjectId(1)));
        assert!(!g.crdt(c).unwrap().contains(ObjectId(1)));
    }

    #[test]
    fn grow_only_replicas_ignore_removals() {
        let (mut g, c) = node_with_coll(GossipSemantics::GrowOnly);
        g.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(1),
        });
        g.apply(StoreMsg::RemoveMember {
            coll: c,
            elem: ObjectId(1),
        });
        // The CRDT keeps Fig. 5 semantics even though the primary-path
        // state removed the member.
        assert!(g.crdt(c).unwrap().contains(ObjectId(1)));
        assert!(!g.inner().collection(c).unwrap().contains(ObjectId(1)));
    }

    #[test]
    fn gossip_handlers_exchange_state() {
        let (mut a, c) = node_with_coll(GossipSemantics::GrowShrink);
        let mut b = GossipNode::new(n(2));
        b.create_replica(c, GossipSemantics::GrowShrink);
        a.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(1),
        });

        // Pull: b asks a for what it is missing.
        let digest = match b.apply(StoreMsg::GossipDigestReq(c)) {
            StoreMsg::GossipDigest { digest, .. } => digest,
            other => panic!("unexpected {other:?}"),
        };
        let delta = match a.apply(StoreMsg::GossipDeltaReq { coll: c, digest }) {
            StoreMsg::GossipDelta { delta, .. } => delta,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(delta.novel.len(), 1);
        let reply = b.apply(StoreMsg::GossipPush { coll: c, delta });
        assert!(matches!(reply, StoreMsg::GossipDigest { .. }));
        assert!(b.crdt(c).unwrap().contains(ObjectId(1)));
    }

    #[test]
    fn gossip_requests_for_unknown_collections() {
        let mut g = GossipNode::new(n(1));
        assert_eq!(
            g.apply(StoreMsg::GossipDigestReq(CollectionId(9))),
            StoreMsg::NoSuchCollection(CollectionId(9))
        );
        assert_eq!(
            g.apply(StoreMsg::GossipPush {
                coll: CollectionId(9),
                delta: MembershipDelta::default()
            }),
            StoreMsg::NoSuchCollection(CollectionId(9))
        );
    }

    #[test]
    fn session_gate_is_dot_level_not_total() {
        use weakset_store::session::SessionToken;
        // Two replicas each with one local add: equal digest totals,
        // disjoint dots. A scalar floor cannot tell them apart; the
        // dot-level gate must.
        let (mut a, c) = node_with_coll(GossipSemantics::GrowShrink);
        let mut b = GossipNode::new(n(2));
        b.create_replica(c, GossipSemantics::GrowShrink);
        a.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(1),
        });
        b.apply(StoreMsg::AddMember {
            coll: c,
            entry: e(2),
        });
        let mut tok = SessionToken::new();
        tok.observe_clock(c, &a.crdt(c).unwrap().digest());
        tok.observe_version(c, 1);
        // b's total equals the session floor, but b never saw a's dot.
        let reply = b.apply(StoreMsg::WithSession {
            session: tok.clone(),
            inner: Box::new(StoreMsg::ListMembers(c)),
        });
        assert_eq!(
            reply,
            StoreMsg::SessionBehind {
                coll: c,
                have: 1,
                need: 1
            }
        );
        // a itself satisfies the session and stamps its digest.
        match a.apply(StoreMsg::WithSession {
            session: tok,
            inner: Box::new(StoreMsg::ListMembers(c)),
        }) {
            StoreMsg::SessionStamped { clock, inner } => {
                assert_eq!(clock, a.crdt(c).unwrap().digest());
                assert!(matches!(*inner, StoreMsg::Members { version: 1, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn session_wrapped_mutations_get_stamped() {
        use weakset_store::session::SessionToken;
        let (mut g, c) = node_with_coll(GossipSemantics::GrowShrink);
        let reply = g.apply(StoreMsg::WithSession {
            session: SessionToken::new(),
            inner: Box::new(StoreMsg::AddMember {
                coll: c,
                entry: e(1),
            }),
        });
        match reply {
            StoreMsg::SessionStamped { clock, inner } => {
                assert_eq!(clock.total(), 1, "post-mutation digest");
                assert!(matches!(*inner, StoreMsg::Members { version: 1, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn object_traffic_delegates() {
        use weakset_store::object::ObjectRecord;
        let mut g = GossipNode::new(n(1));
        let rec = ObjectRecord::new(ObjectId(4), "menu", &b"soup"[..]);
        assert_eq!(g.apply(StoreMsg::PutObject(rec.clone())), StoreMsg::Ack);
        assert_eq!(
            g.apply(StoreMsg::GetObject(ObjectId(4))),
            StoreMsg::Object(rec)
        );
    }
}
