//! Delta-state CRDTs for weak-set membership.
//!
//! Two flavours, matching the paper's two specification figures:
//!
//! * [`GSet`] — a grow-only set (Figure 5). Merge is set union, so along
//!   any replica's timeline and across any exchange `s_i ⊆ s_j` for
//!   `i ≤ j`: exactly the monotonicity Fig. 5's `ensures` clause demands.
//! * [`ORSet`] — an observed-remove set (Figure 6) in the *optimized*
//!   formulation: live entries tagged with dots plus a version vector of
//!   every dot ever observed. A removal deletes the observed dots of an
//!   element; a concurrent re-add mints a fresh dot, so adds win over
//!   concurrent removes and membership still converges.
//!
//! Both are *delta-state* CRDTs: [`GSet::delta_since`] /
//! [`ORSet::delta_since`] produce a [`MembershipDelta`] against a peer's
//! digest so that only entries the peer has not observed cross the wire,
//! and [`GSet::apply`] / [`ORSet::apply`] join a delta into local state.
//! Joins are commutative, associative, and idempotent (property-tested in
//! this crate), which is what makes anti-entropy order-insensitive.

use std::collections::{BTreeMap, BTreeSet};
use weakset_sim::node::NodeId;
use weakset_store::collection::MemberEntry;
use weakset_store::dotted::{Dot, DottedEntry, MembershipDelta, VersionVector};
use weakset_store::object::ObjectId;
use weakset_store::wire::DeltaBatch;

/// A grow-only membership set: dotted entries plus the vector of observed
/// dots. The dot tags exist purely so digests can compress exchanges;
/// semantically this is a plain G-Set whose merge is union.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GSet {
    entries: BTreeMap<Dot, MemberEntry>,
    vv: VersionVector,
}

impl GSet {
    /// An empty grow-only set.
    pub fn new() -> Self {
        GSet::default()
    }

    /// Adds `entry` as a mutation of `replica`, returning the new dot.
    pub fn add(&mut self, replica: NodeId, entry: MemberEntry) -> Dot {
        let dot = self.vv.advance(replica);
        self.entries.insert(dot, entry);
        dot
    }

    /// The current membership (dots deduplicated to values).
    pub fn elements(&self) -> BTreeSet<MemberEntry> {
        self.entries.values().copied().collect()
    }

    /// True when some live entry has this element id.
    pub fn contains(&self, elem: ObjectId) -> bool {
        self.entries.values().any(|e| e.elem == elem)
    }

    /// The digest: every dot this replica has observed.
    pub fn digest(&self) -> VersionVector {
        self.vv.clone()
    }

    /// The delta a peer with `digest` is missing. Grow-only sets never
    /// remove, so the delta's `live` list is left empty (it carries no
    /// information the entries themselves do not).
    pub fn delta_since(&self, digest: &VersionVector) -> MembershipDelta {
        MembershipDelta {
            vv: self.vv.clone(),
            novel: self
                .entries
                .iter()
                .filter(|(&dot, _)| !digest.contains(dot))
                .map(|(&dot, &entry)| DottedEntry { dot, entry })
                .collect(),
            live: Vec::new(),
        }
    }

    /// Joins a delta into this set: union of entries, join of vectors.
    pub fn apply(&mut self, delta: &MembershipDelta) {
        for de in &delta.novel {
            self.entries.insert(de.dot, de.entry);
        }
        self.vv.join(&delta.vv);
    }

    /// Full-state join with another replica's set.
    pub fn merge(&mut self, other: &GSet) {
        self.apply(&other.delta_since(&VersionVector::new()));
    }

    /// Number of live dots (not deduplicated values).
    pub fn dot_count(&self) -> usize {
        self.entries.len()
    }

    /// Every live entry with its dot, in dot order — the input to a
    /// Merkle-range reconciliation tree.
    pub fn dotted_entries(&self) -> Vec<DottedEntry> {
        self.entries
            .iter()
            .map(|(&dot, &entry)| DottedEntry { dot, entry })
            .collect()
    }

    /// Joins a Merkle-range [`DeltaBatch`] into this set. Grow-only sets
    /// never remove, so the batch's `drop` list is ignored; novel entries
    /// union in and vectors join, exactly like [`GSet::apply`].
    pub fn apply_batch(&mut self, batch: &DeltaBatch) {
        for de in &batch.novel {
            self.entries.insert(de.dot, de.entry);
        }
        self.vv.join(&batch.vv);
    }
}

/// An observed-remove membership set (optimized OR-Set): `entries` holds
/// the *live* dots, `vv` every dot ever observed. A dot covered by `vv`
/// but absent from `entries` has been removed; because the vector
/// remembers it, a late-arriving copy of the add cannot resurrect it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ORSet {
    entries: BTreeMap<Dot, MemberEntry>,
    vv: VersionVector,
}

impl ORSet {
    /// An empty observed-remove set.
    pub fn new() -> Self {
        ORSet::default()
    }

    /// Adds `entry` as a mutation of `replica`, returning the new dot.
    /// Re-adding a removed element mints a fresh dot, which is how adds
    /// win over concurrent removes.
    pub fn add(&mut self, replica: NodeId, entry: MemberEntry) -> Dot {
        let dot = self.vv.advance(replica);
        self.entries.insert(dot, entry);
        dot
    }

    /// Removes every *observed* dot carrying `elem`, returning how many
    /// were removed. Dots this replica has not yet seen are unaffected
    /// (observed-remove semantics). The removed dots stay covered by the
    /// version vector, which is precisely what prevents resurrection.
    ///
    /// An effective removal additionally mints one *removal dot* for
    /// `replica`: a vector advance with no live entry. It records the
    /// remove event in the digest, so (a) digest dominance implies state
    /// dominance — a peer whose digest covers ours needs nothing from us
    /// even after removals — and (b) the digest total counts every
    /// effective mutation, aligning it with the primary's versioned log.
    pub fn remove(&mut self, replica: NodeId, elem: ObjectId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.elem != elem);
        let killed = before - self.entries.len();
        if killed > 0 {
            self.vv.advance(replica);
        }
        killed
    }

    /// The current membership (live dots deduplicated to values).
    pub fn elements(&self) -> BTreeSet<MemberEntry> {
        self.entries.values().copied().collect()
    }

    /// True when some live entry has this element id.
    pub fn contains(&self, elem: ObjectId) -> bool {
        self.entries.values().any(|e| e.elem == elem)
    }

    /// The digest: every dot this replica has observed (live or removed).
    pub fn digest(&self) -> VersionVector {
        self.vv.clone()
    }

    /// The delta a peer with `digest` is missing: entry payloads only for
    /// dots the digest does not cover, plus this replica's full vector and
    /// live-dot list so the peer can detect removals (a dot it holds that
    /// `vv` covers but `live` omits was removed here).
    pub fn delta_since(&self, digest: &VersionVector) -> MembershipDelta {
        MembershipDelta {
            vv: self.vv.clone(),
            novel: self
                .entries
                .iter()
                .filter(|(&dot, _)| !digest.contains(dot))
                .map(|(&dot, &entry)| DottedEntry { dot, entry })
                .collect(),
            live: self.entries.keys().copied().collect(),
        }
    }

    /// Joins a delta into this set — the optimized OR-Set join:
    ///
    /// * a novel entry is adopted unless our vector already covers its dot
    ///   (covered + absent locally = we removed it; do not resurrect);
    /// * a local live dot is dropped when the sender has observed it but
    ///   no longer lists it live (the sender removed it);
    /// * vectors join pointwise.
    pub fn apply(&mut self, delta: &MembershipDelta) {
        for de in &delta.novel {
            if !self.vv.contains(de.dot) {
                self.entries.insert(de.dot, de.entry);
            }
        }
        let sender_live: BTreeSet<Dot> = delta.live.iter().copied().collect();
        self.entries
            .retain(|&dot, _| !delta.vv.contains(dot) || sender_live.contains(&dot));
        self.vv.join(&delta.vv);
    }

    /// Full-state join with another replica's set.
    pub fn merge(&mut self, other: &ORSet) {
        self.apply(&other.delta_since(&VersionVector::new()));
    }

    /// Number of live dots (not deduplicated values).
    pub fn dot_count(&self) -> usize {
        self.entries.len()
    }

    /// Every live entry with its dot, in dot order — the input to a
    /// Merkle-range reconciliation tree.
    pub fn dotted_entries(&self) -> Vec<DottedEntry> {
        self.entries
            .iter()
            .map(|(&dot, &entry)| DottedEntry { dot, entry })
            .collect()
    }

    /// Joins a Merkle-range [`DeltaBatch`] into this set. The same
    /// observed-remove rules as [`ORSet::apply`], but against an explicit
    /// drop list instead of a full live list:
    ///
    /// * a novel entry is adopted unless our vector already covers its
    ///   dot (covered + locally absent = removed here; no resurrection);
    /// * a dropped dot is deleted only when the sender's vector covers it
    ///   (the sender *observed* the add and still says it is gone);
    /// * vectors join pointwise.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) {
        for de in &batch.novel {
            if !self.vv.contains(de.dot) {
                self.entries.insert(de.dot, de.entry);
            }
        }
        for &dot in &batch.drop {
            if batch.vv.contains(dot) {
                self.entries.remove(&dot);
            }
        }
        self.vv.join(&batch.vv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn e(id: u64) -> MemberEntry {
        MemberEntry {
            elem: ObjectId(id),
            home: n(0),
        }
    }

    #[test]
    fn gset_grows_and_merges_by_union() {
        let mut a = GSet::new();
        let mut b = GSet::new();
        a.add(n(1), e(1));
        b.add(n(2), e(2));
        let snapshot = a.elements();
        a.merge(&b);
        b.merge(&a);
        assert_eq!(a.elements(), b.elements());
        assert_eq!(a.elements().len(), 2);
        assert!(
            snapshot.is_subset(&a.elements()),
            "Fig. 5: the set only grows"
        );
        assert!(a.contains(ObjectId(2)));
        assert_eq!(a.dot_count(), 2);
    }

    #[test]
    fn gset_delta_ships_only_uncovered_dots() {
        let mut a = GSet::new();
        a.add(n(1), e(1));
        a.add(n(1), e(2));
        let mut b = GSet::new();
        b.apply(&a.delta_since(&b.digest()));
        assert_eq!(b.elements(), a.elements());
        // Nothing new: the next delta is empty.
        let d = a.delta_since(&b.digest());
        assert!(d.novel.is_empty());
        // Applying an old delta again changes nothing (idempotent).
        let again = a.delta_since(&VersionVector::new());
        b.apply(&again);
        assert_eq!(b.elements(), a.elements());
    }

    #[test]
    fn orset_remove_deletes_observed_dots_only() {
        let mut a = ORSet::new();
        let mut b = ORSet::new();
        a.add(n(1), e(7));
        // b adds the same element concurrently under its own dot.
        b.add(n(2), e(7));
        // a removes what it observed: its own dot only.
        assert_eq!(a.remove(n(1), ObjectId(7)), 1);
        assert!(!a.contains(ObjectId(7)));
        // After exchanging, b's concurrent add survives: add wins.
        a.merge(&b);
        b.merge(&a);
        assert!(a.contains(ObjectId(7)));
        assert_eq!(a.elements(), b.elements());
        // Removing a non-member mints no removal dot.
        let digest = a.digest();
        assert_eq!(a.remove(n(1), ObjectId(99)), 0);
        assert_eq!(a.digest(), digest);
    }

    #[test]
    fn orset_removal_propagates_without_resurrection() {
        let mut a = ORSet::new();
        let mut b = ORSet::new();
        a.add(n(1), e(3));
        b.merge(&a);
        assert!(b.contains(ObjectId(3)));
        // b removes after observing; the removal reaches a via the
        // (vv, live) half of the delta even though no entries ship.
        b.remove(n(2), ObjectId(3));
        let d = b.delta_since(&a.digest());
        assert!(d.novel.is_empty());
        a.apply(&d);
        assert!(!a.contains(ObjectId(3)));
        // A stale full-state delta from before the removal cannot
        // resurrect the element: the dot is already observed.
        let mut stale = ORSet::new();
        stale.add(n(1), e(3)); // same replica id/counter as a's original dot
        a.apply(&stale.delta_since(&VersionVector::new()));
        assert!(!a.contains(ObjectId(3)));
    }

    #[test]
    fn orset_readd_after_remove_is_a_fresh_dot() {
        let mut a = ORSet::new();
        a.add(n(1), e(5));
        a.remove(n(1), ObjectId(5)); // counter 2: the removal dot
        let dot = a.add(n(1), e(5));
        assert_eq!(dot.counter, 3);
        assert!(a.contains(ObjectId(5)));
        let mut b = ORSet::new();
        b.merge(&a);
        assert!(b.contains(ObjectId(5)));
        assert_eq!(b.dot_count(), 1);
    }

    #[test]
    fn merge_is_commutative_on_a_small_divergence() {
        let mut a = ORSet::new();
        let mut b = ORSet::new();
        a.add(n(1), e(1));
        a.add(n(1), e(2));
        a.remove(n(1), ObjectId(1));
        b.add(n(2), e(1));
        b.add(n(2), e(9));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.elements(), ba.elements());
        assert_eq!(ab.digest(), ba.digest());
    }
}
