//! Merkle-range reconciliation over a replica's live-dot space.
//!
//! The classic digest-then-delta exchange ships the sender's **full
//! live-dot list** with every delta (that is how removals propagate),
//! which is `O(n)` bytes per round — fine for toy sets, fatal at 10^6
//! elements. This module locates the *symmetric difference* between two
//! replicas' live-dot sets instead, by descending an implicit Merkle
//! tree over a hashed 64-bit key space:
//!
//! 1. each live dot is mapped to a key by [`dot_key`] (a splitmix64-style
//!    mix, so keys spread uniformly no matter how dots cluster);
//! 2. a [`RangeTree`] summarizes any aligned key range as `(count, XOR
//!    of per-dot hashes)` — an order-independent fingerprint computable
//!    in `O(log n)` from a sorted array plus prefix-XOR table, no actual
//!    tree allocation;
//! 3. the initiator sends summaries of its frontier ranges; the peer
//!    [`RangeTree::respond`]s per range — `Match` (identical, prune),
//!    `Split` (mismatch on a populous range: here are my child
//!    summaries, descend), or `Leaf` (mismatch on a small range: here
//!    are my entries, reconcile directly);
//! 4. after a few rounds every mismatch has bottomed out in leaves, and
//!    the two replicas exchange [`weakset_store::wire::DeltaBatch`]es
//!    containing only the differing entries plus drop lists.
//!
//! With branching factor `2^SPLIT_BITS = 16` and `LEAF_LIMIT = 16`, a
//! `k`-dot divergence of an `n`-dot set costs `O(k · log n)` summary
//! bytes over `O(log n / log 16)` round trips — the whole exchange is
//! proportional to the difference, not the set.
//!
//! Removals need care: a dot present in my tree but absent from the
//! peer's leaves is *either* removed at the peer *or* never seen there.
//! The peer's version vector disambiguates exactly as in the optimized
//! OR-Set join — covered means removed, uncovered means novel — which is
//! why every range response carries the replier's digest.

use crate::crdt::{GSet, ORSet};
use weakset_store::dotted::{Dot, DottedEntry, VersionVector};
use weakset_store::wire::{RangeKey, RangeReply, RangeSummary};

/// Dots per mismatched range below which the range is enumerated
/// outright (a [`RangeReply::Leaf`]) instead of split further.
pub const LEAF_LIMIT: usize = 16;

/// Bits added per descent level: each split fans a range into
/// `2^SPLIT_BITS` children.
pub const SPLIT_BITS: u8 = 4;

/// 64-bit finalizer (splitmix64): bijective, avalanching. Used both to
/// key dots into the range space and to fingerprint them.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Where `dot` lives in the 64-bit reconciliation key space. Mixing the
/// replica id before folding in the counter keeps consecutive counters
/// from the same replica uniformly spread.
pub fn dot_key(dot: Dot) -> u64 {
    mix64(mix64(dot.replica.0 as u64) ^ dot.counter)
}

/// The per-dot fingerprint XORed into range summaries. Derived from the
/// key by a second mix so a summary cannot be forged by key arithmetic.
fn dot_hash(dot: Dot) -> u64 {
    mix64(dot_key(dot) ^ 0xa076_1d64_78bd_642f)
}

/// A queryable snapshot of one replica's live-dot set: entries sorted by
/// [`dot_key`], with a prefix-XOR table so any contiguous span's
/// fingerprint costs two lookups. Build once per reconciliation from
/// [`RangeTree::from_entries`]; both sides of the exchange use the same
/// structure (the initiator to pick frontiers and diff leaves, the
/// responder inside [`RangeTree::respond`]).
#[derive(Clone, Debug)]
pub struct RangeTree {
    /// `(key, entry)` sorted by key, ties broken by dot.
    keyed: Vec<(u64, DottedEntry)>,
    /// `xor[i]` = XOR of the first `i` entries' hashes.
    xor: Vec<u64>,
}

impl Default for RangeTree {
    fn default() -> Self {
        RangeTree::from_entries(Vec::new())
    }
}

impl RangeTree {
    /// Builds the tree from a replica's live entries (any order).
    pub fn from_entries(entries: Vec<DottedEntry>) -> Self {
        let mut keyed: Vec<(u64, DottedEntry)> =
            entries.into_iter().map(|e| (dot_key(e.dot), e)).collect();
        keyed.sort_unstable_by_key(|&(k, e)| (k, e.dot));
        let mut xor = Vec::with_capacity(keyed.len() + 1);
        let mut acc = 0u64;
        xor.push(acc);
        for &(_, e) in &keyed {
            acc ^= dot_hash(e.dot);
            xor.push(acc);
        }
        RangeTree { keyed, xor }
    }

    /// Builds the tree for a grow-only set's live entries.
    pub fn for_gset(set: &GSet) -> Self {
        RangeTree::from_entries(set.dotted_entries())
    }

    /// Builds the tree for an OR-Set's live entries.
    pub fn for_orset(set: &ORSet) -> Self {
        RangeTree::from_entries(set.dotted_entries())
    }

    /// Total live dots in the tree.
    pub fn len(&self) -> usize {
        self.keyed.len()
    }

    /// True when the tree holds no dots.
    pub fn is_empty(&self) -> bool {
        self.keyed.is_empty()
    }

    /// Index range `[lo, hi)` of entries whose keys fall in `key`.
    fn span(&self, key: RangeKey) -> (usize, usize) {
        let lo = self.keyed.partition_point(|&(k, _)| k < key.lo());
        let hi = self.keyed.partition_point(|&(k, _)| k <= key.hi());
        (lo, hi)
    }

    /// The `(count, hash)` summary of one range.
    pub fn summary(&self, key: RangeKey) -> RangeSummary {
        let (lo, hi) = self.span(key);
        RangeSummary {
            key,
            count: (hi - lo) as u64,
            hash: self.xor[hi] ^ self.xor[lo],
        }
    }

    /// The live entries whose keys fall in `key`.
    pub fn entries_in(&self, key: RangeKey) -> Vec<DottedEntry> {
        let (lo, hi) = self.span(key);
        self.keyed[lo..hi].iter().map(|&(_, e)| e).collect()
    }

    /// Summaries of `key`'s `2^SPLIT_BITS` children (only the occupied
    /// and queried structure matters; empty children summarize to
    /// `(0, 0)` and cost a few bytes each).
    pub fn children(&self, key: RangeKey) -> Vec<RangeSummary> {
        key.split(SPLIT_BITS)
            .into_iter()
            .map(|child| self.summary(child))
            .collect()
    }

    /// True when a mismatched `summary`-sized range should be enumerated
    /// rather than descended: small on either side, or unsplittable.
    fn should_enumerate(&self, key: RangeKey, peer_count: u64) -> bool {
        let (lo, hi) = self.span(key);
        let mine = hi - lo;
        mine <= LEAF_LIMIT || peer_count <= LEAF_LIMIT as u64 || key.depth > 64 - SPLIT_BITS
    }

    /// Answers one round of a peer's range probe: for each summary the
    /// peer sent, `Match` when our fingerprint agrees, `Leaf` with our
    /// entries when the mismatched range is small (on either side — the
    /// peer's count rides in its summary), `Split` with child summaries
    /// otherwise.
    pub fn respond(&self, probes: &[RangeSummary]) -> Vec<RangeReply> {
        probes
            .iter()
            .map(|probe| {
                let mine = self.summary(probe.key);
                if mine.count == probe.count && mine.hash == probe.hash {
                    RangeReply::Match(probe.key)
                } else if self.should_enumerate(probe.key, probe.count) {
                    RangeReply::Leaf {
                        key: probe.key,
                        entries: self.entries_in(probe.key),
                    }
                } else {
                    RangeReply::Split(self.children(probe.key))
                }
            })
            .collect()
    }
}

/// What one side of a reconciliation learned from a finished descent:
/// the leaf-level view of every mismatched range, split into the peer's
/// entries we lack and our entries the peer lacks. Interpretation
/// (novel add vs removal) belongs to the caller, which has the digests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RangeDiff {
    /// Entries the peer holds live in mismatched leaves that we do not.
    pub peer_only: Vec<DottedEntry>,
    /// Entries we hold live in mismatched leaves that the peer does not.
    pub mine_only: Vec<DottedEntry>,
}

/// Folds one leaf reply into a [`RangeDiff`], comparing the peer's
/// enumerated entries against `ours` for the same range.
pub fn diff_leaf(
    ours: &RangeTree,
    key: RangeKey,
    peer_entries: &[DottedEntry],
    out: &mut RangeDiff,
) {
    let mine = ours.entries_in(key);
    let mine_dots: std::collections::BTreeSet<Dot> = mine.iter().map(|e| e.dot).collect();
    let peer_dots: std::collections::BTreeSet<Dot> = peer_entries.iter().map(|e| e.dot).collect();
    out.peer_only
        .extend(peer_entries.iter().filter(|e| !mine_dots.contains(&e.dot)));
    out.mine_only
        .extend(mine.iter().filter(|e| !peer_dots.contains(&e.dot)));
}

/// Classifies a one-sided entry after the descent: `true` means the dot
/// was *removed* at the side whose digest is given (it observed the dot
/// yet no longer lists it live); `false` means that side simply has not
/// seen the add yet.
pub fn removed_at(digest: &VersionVector, dot: Dot) -> bool {
    digest.contains(dot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::node::NodeId;
    use weakset_store::collection::MemberEntry;
    use weakset_store::object::ObjectId;

    fn entry(r: u32, c: u64) -> DottedEntry {
        DottedEntry {
            dot: Dot {
                replica: NodeId(r),
                counter: c,
            },
            entry: MemberEntry {
                elem: ObjectId(c),
                home: NodeId(r),
            },
        }
    }

    fn tree(n: u64) -> RangeTree {
        RangeTree::from_entries((1..=n).map(|c| entry(1, c)).collect())
    }

    #[test]
    fn keys_spread_uniformly() {
        // 4096 consecutive dots from one replica land in all 16 top-level
        // buckets with no bucket grossly over-full.
        let t = tree(4096);
        let kids = t.children(RangeKey::ROOT);
        assert_eq!(kids.len(), 16);
        for k in &kids {
            assert!(k.count > 128 && k.count < 384, "bucket count {}", k.count);
        }
        assert_eq!(kids.iter().map(|k| k.count).sum::<u64>(), 4096);
        // XOR of child hashes is the root hash.
        let root = t.summary(RangeKey::ROOT);
        assert_eq!(root.hash, kids.iter().fold(0, |a, k| a ^ k.hash));
    }

    #[test]
    fn identical_trees_match_at_the_root() {
        let a = tree(1000);
        let b = tree(1000);
        let replies = b.respond(&[a.summary(RangeKey::ROOT)]);
        assert_eq!(replies, vec![RangeReply::Match(RangeKey::ROOT)]);
    }

    #[test]
    fn descent_finds_exactly_the_symmetric_difference() {
        let n = 2000u64;
        let a_entries: Vec<DottedEntry> = (1..=n).map(|c| entry(1, c)).collect();
        // b lacks 3 of a's entries and has 2 of its own.
        let b_entries: Vec<DottedEntry> = a_entries
            .iter()
            .filter(|e| ![17, 900, 1999].contains(&e.dot.counter))
            .copied()
            .chain([entry(2, 1), entry(2, 2)])
            .collect();
        let a = RangeTree::from_entries(a_entries);
        let b = RangeTree::from_entries(b_entries);

        // Drive the descent from a's side.
        let mut diff = RangeDiff::default();
        let mut frontier = vec![a.summary(RangeKey::ROOT)];
        let mut rounds = 0;
        while !frontier.is_empty() {
            rounds += 1;
            assert!(rounds < 20, "descent must terminate");
            let mut next = Vec::new();
            for reply in b.respond(&frontier) {
                match reply {
                    RangeReply::Match(_) => {}
                    RangeReply::Leaf { key, entries } => diff_leaf(&a, key, &entries, &mut diff),
                    RangeReply::Split(children) => {
                        for child in children {
                            let mine = a.summary(child.key);
                            if mine.count != child.count || mine.hash != child.hash {
                                next.push(mine);
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        let mut missing_at_b: Vec<u64> = diff.mine_only.iter().map(|e| e.dot.counter).collect();
        missing_at_b.sort_unstable();
        let missing_at_a: Vec<Dot> = diff.peer_only.iter().map(|e| e.dot).collect();
        assert_eq!(missing_at_b, vec![17, 900, 1999]);
        assert_eq!(missing_at_a.len(), 2);
        assert!(missing_at_a.iter().all(|d| d.replica == NodeId(2)));
    }

    #[test]
    fn tiny_mismatches_leaf_immediately() {
        let a = RangeTree::from_entries(vec![entry(1, 1)]);
        let b = RangeTree::from_entries(vec![entry(1, 1), entry(1, 2)]);
        let replies = b.respond(&[a.summary(RangeKey::ROOT)]);
        match &replies[0] {
            RangeReply::Leaf { entries, .. } => assert_eq!(entries.len(), 2),
            other => panic!("expected Leaf, got {other:?}"),
        }
    }

    #[test]
    fn empty_trees_are_cheap() {
        let a = RangeTree::default();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        let s = a.summary(RangeKey::ROOT);
        assert_eq!((s.count, s.hash), (0, 0));
        let b = tree(5);
        match &b.respond(&[s])[0] {
            RangeReply::Leaf { entries, .. } => assert_eq!(entries.len(), 5),
            other => panic!("expected Leaf, got {other:?}"),
        }
    }

    #[test]
    fn removed_at_reads_the_digest() {
        let mut vv = VersionVector::new();
        let seen = vv.advance(NodeId(1));
        assert!(removed_at(&vv, seen));
        assert!(!removed_at(
            &vv,
            Dot {
                replica: NodeId(1),
                counter: 2
            }
        ));
    }
}
