//! End-to-end: the `weakset` iterators running leaderless over a
//! gossip-replicated deployment, with their histories checked against the
//! paper's figures.
//!
//! The point of the exercise: with [`IterConfig::leaderless`] an iterator
//! makes progress from *any reachable converged replica* — it neither
//! fails nor blocks when the primary is unreachable — and the runs it
//! produces still conform to Figure 5 / Figure 6. The conformance
//! observer keeps reading ground truth from the primary's log through a
//! [`HistorySource`] that reaches inside the [`GossipNode`] wrapper.

use weakset::iter::grow_only::GrowElements;
use weakset::iter::optimistic::OptimisticElements;
use weakset::prelude::{HistorySource, IterConfig, IterStep, RunObserver};
use weakset_gossip::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_spec::checker::{check_computation, Figure};
use weakset_store::collection::MemberEntry;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, StoreClient, StoreWorld};

const COLL: CollectionId = CollectionId(1);

fn setup(n: usize, semantics: GossipSemantics) -> (StoreWorld, StoreClient, CollectionRef) {
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let servers: Vec<NodeId> = t.add_servers("s", n);
    let mut w = StoreWorld::new(
        WorldConfig::seeded(29),
        t,
        LatencyModel::Constant(SimDuration::from_millis(1)),
    );
    for &s in &servers {
        w.install_service(
            s,
            Box::new(GossipNode::new(s).with_default_semantics(semantics)),
        );
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(50));
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(&mut w, &cref).unwrap();
    (w, client, cref)
}

/// Adds element `id`, homing its object record on `home` (which need not
/// be the collection primary — that is what keeps fetches alive when the
/// primary is partitioned away).
fn add(w: &mut StoreWorld, client: &StoreClient, cref: &CollectionRef, id: u64, home: NodeId) {
    client
        .put_object(
            w,
            home,
            ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
        )
        .unwrap();
    client
        .add_member(
            w,
            cref,
            MemberEntry {
                elem: ObjectId(id),
                home,
            },
        )
        .unwrap();
}

/// The observer's omniscient history accessor for gossip deployments:
/// reach through the [`GossipNode`] wrapper to the inner store's log.
fn gossip_history() -> HistorySource {
    HistorySource::new(GossipNode::visit_collection_history)
}

/// Converge all membership hosts, then stop gossiping.
fn converge(w: &mut StoreWorld, cref: &CollectionRef) {
    let handle = engine::install(
        w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(5),
            fanout: 2,
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(300);
    w.run_until(deadline);
    assert!(
        engine::converged(w, COLL, &cref.all_nodes()),
        "setup gossip"
    );
    handle.stop();
    w.run_to_quiescence();
}

/// Figure 6 end-to-end: the optimistic iterator with leaderless reads
/// completes from surviving replicas while the primary is partitioned
/// away — where the primary-read iterator can only block.
#[test]
fn optimistic_leaderless_completes_without_the_primary() {
    let (mut w, client, cref) = setup(3, GossipSemantics::GrowShrink);
    // Objects homed off-primary so fetches survive the partition.
    add(&mut w, &client, &cref, 1, cref.replicas[0]);
    add(&mut w, &client, &cref, 2, cref.replicas[1]);
    converge(&mut w, &cref);
    w.topology_mut().partition(&[cref.home]);

    // Control: primary reads block (never fail — Fig. 6), no progress.
    let mut blocked = OptimisticElements::new(client.clone(), cref.clone(), IterConfig::default());
    assert_eq!(blocked.next(&mut w), IterStep::Blocked);

    // Leaderless: both elements arrive from the converged replicas.
    let mut it = OptimisticElements::new(client.clone(), cref.clone(), IterConfig::leaderless());
    it.observe(
        RunObserver::new(cref.id, cref.home, client.node()).with_history_source(gossip_history()),
    );
    let (got, end) = it.drain(&mut w, 3, SimDuration::from_millis(10));
    assert_eq!(end, IterStep::Done);
    let mut ids: Vec<ObjectId> = got.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![ObjectId(1), ObjectId(2)]);

    let comp = it.take_computation(&w).unwrap();
    check_computation(Figure::Fig6, &comp).assert_ok();
}

/// Figure 5 end-to-end: grow-only gossip replicas back a grow-only
/// iterator reading leaderless; the recorded history satisfies both the
/// grow-only spec and the weaker Figure 6.
#[test]
fn grow_only_leaderless_conforms_to_fig5() {
    let (mut w, client, cref) = setup(3, GossipSemantics::GrowOnly);
    add(&mut w, &client, &cref, 1, cref.replicas[0]);
    add(&mut w, &client, &cref, 2, cref.replicas[1]);
    add(&mut w, &client, &cref, 3, cref.replicas[0]);
    converge(&mut w, &cref);
    w.topology_mut().partition(&[cref.home]);

    let mut it = GrowElements::new(client.clone(), cref.clone(), IterConfig::leaderless());
    it.observe(
        RunObserver::new(cref.id, cref.home, client.node()).with_history_source(gossip_history()),
    );
    let mut yielded = 0;
    loop {
        match it.next(&mut w) {
            IterStep::Yielded(_) => yielded += 1,
            IterStep::Done => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(yielded, 3);

    let comp = it.take_computation(&w).unwrap();
    check_computation(Figure::Fig5, &comp).assert_ok();
    check_computation(Figure::Fig6, &comp).assert_ok();
}

/// Growth that arrives *by gossip* mid-run is picked up: the iterator
/// yields an element added at the primary after the run started, then the
/// primary vanishes and the new member is still served leaderless.
#[test]
fn leaderless_iterator_sees_gossiped_growth() {
    let (mut w, client, cref) = setup(3, GossipSemantics::GrowShrink);
    add(&mut w, &client, &cref, 1, cref.replicas[0]);
    converge(&mut w, &cref);

    let mut it = OptimisticElements::new(client.clone(), cref.clone(), IterConfig::leaderless());
    it.observe(
        RunObserver::new(cref.id, cref.home, client.node()).with_history_source(gossip_history()),
    );
    assert_eq!(it.next(&mut w).elem(), Some(ObjectId(1)));

    // Concurrent growth at the (still healthy) primary, spread by
    // anti-entropy; then the primary drops off the network.
    add(&mut w, &client, &cref, 2, cref.replicas[1]);
    converge(&mut w, &cref);
    w.topology_mut().partition(&[cref.home]);

    assert_eq!(it.next(&mut w).elem(), Some(ObjectId(2)));
    assert_eq!(it.next(&mut w), IterStep::Done);

    let comp = it.take_computation(&w).unwrap();
    check_computation(Figure::Fig6, &comp).assert_ok();
}
