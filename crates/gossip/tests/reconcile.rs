//! Merkle-range reconciliation: mode equivalence, byte proportionality,
//! and the accounting regressions this work exposed.
//!
//! * `MerkleRange` and `Full` digest modes must converge to **identical**
//!   membership and digests from arbitrary divergent OR-Set states —
//!   they are two transports for the same join (property-tested).
//! * Bytes shipped under `MerkleRange` must scale with the symmetric
//!   difference at fixed set size, where `Full` scales with the set.
//! * A peer that answers an anti-entropy request with the wrong message
//!   type must count as a failure (it used to vanish silently).
//! * A replica that crashes holding unreplicated dots must surface in
//!   the convergence-lag metrics (it used to read as converged).

use proptest::prelude::*;
use weakset_gossip::prelude::*;
use weakset_obs::gossip as names;
use weakset_runtime::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{CollectionId, ObjectId};
use weakset_store::prelude::{CollectionRef, StoreClient, StoreServer, StoreWorld};

const COLL: CollectionId = CollectionId(1);
const TIMEOUT: SimDuration = SimDuration::from_millis(50);

fn entry(id: u64, home: NodeId) -> MemberEntry {
    MemberEntry {
        elem: ObjectId(id),
        home,
    }
}

/// A client node plus `n` gossip replica nodes.
fn setup(n: usize, seed: u64) -> (StoreWorld, StoreClient, CollectionRef) {
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let servers: Vec<NodeId> = t.add_servers("s", n);
    let mut w = StoreWorld::new(
        WorldConfig::seeded(seed),
        t,
        LatencyModel::Constant(SimDuration::from_millis(1)),
    );
    for &s in &servers {
        w.install_service(s, Box::new(GossipNode::new(s)));
    }
    let client = StoreClient::new(cn, TIMEOUT);
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(&mut w, &cref).unwrap();
    (w, client, cref)
}

/// Installs a prebuilt OR-Set as `node`'s replica of [`COLL`].
fn preload(w: &mut StoreWorld, node: NodeId, set: &ORSet) {
    w.with_service_mut(node, |g: &mut GossipNode| {
        g.create_replica(COLL, GossipSemantics::GrowShrink);
        *g.crdt_mut(COLL).unwrap() = MembershipCrdt::GrowShrink(set.clone());
    });
}

/// A replica's observable state: sorted membership plus its digest.
type ReplicaState = (Vec<MemberEntry>, weakset_store::dotted::VersionVector);

/// Reads `node`'s replica state: (sorted membership, digest).
fn state_at(w: &StoreWorld, node: NodeId) -> ReplicaState {
    w.with_service(node, |g: &GossipNode| {
        let c = g.crdt(COLL).unwrap();
        (c.elements(), c.digest())
    })
    .unwrap()
}

/// One step of the divergence-building interpreter (see
/// [`divergent_pair`]).
#[derive(Clone, Debug)]
enum Step {
    /// Add element `elem` at replica 0 or 1.
    Add { at: u8, elem: u64 },
    /// Remove element `elem` at replica 0 or 1 (no-op when absent).
    Remove { at: u8, elem: u64 },
    /// One-way merge: the other replica's state joins into `at`.
    MergeInto { at: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Adds listed twice: bias toward growth so runs build real state.
    prop_oneof![
        (0u8..2, 1u64..20).prop_map(|(at, elem)| Step::Add { at, elem }),
        (0u8..2, 21u64..40).prop_map(|(at, elem)| Step::Add { at, elem }),
        (0u8..2, 1u64..40).prop_map(|(at, elem)| Step::Remove { at, elem }),
        (0u8..2).prop_map(|at| Step::MergeInto { at }),
    ]
}

/// Interprets a step list into two divergent OR-Sets. Interleaved
/// partial merges make the divergence genuinely two-sided: each side
/// can hold novel adds *and* removals of dots the other still lists.
fn divergent_pair(steps: &[Step], r0: NodeId, r1: NodeId) -> (ORSet, ORSet) {
    let mut sets = [ORSet::new(), ORSet::new()];
    let replicas = [r0, r1];
    for step in steps {
        match *step {
            Step::Add { at, elem } => {
                let at = at as usize;
                sets[at].add(replicas[at], entry(elem, replicas[at]));
            }
            Step::Remove { at, elem } => {
                let at = at as usize;
                sets[at].remove(replicas[at], ObjectId(elem));
            }
            Step::MergeInto { at } => {
                let at = at as usize;
                let other = sets[1 - at].clone();
                sets[at].merge(&other);
            }
        }
    }
    let [a, b] = sets;
    (a, b)
}

/// Runs one push-pull sync between two replicas preloaded with `a` and
/// `b`, in the given digest mode; returns the post-sync states of both
/// plus total (digest, delta) bytes charged.
fn sync_divergent(
    a: &ORSet,
    b: &ORSet,
    digest_mode: DigestMode,
    seed: u64,
) -> (ReplicaState, ReplicaState, u64, u64) {
    let (mut w, _client, cref) = setup(2, seed);
    preload(&mut w, cref.home, a);
    preload(&mut w, cref.replicas[0], b);
    engine::sync_pair_with(
        &mut w,
        COLL,
        cref.home,
        cref.replicas[0],
        digest_mode,
        TIMEOUT,
    );
    let digest_bytes = w.metrics().counter(names::DIGEST_BYTES);
    let delta_bytes = w.metrics().counter(names::DELTA_BYTES);
    (
        state_at(&w, cref.home),
        state_at(&w, cref.replicas[0]),
        digest_bytes,
        delta_bytes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// From ANY divergent pair of OR-Set states, one push-pull exchange
    /// converges both replicas — and `MerkleRange` lands on exactly the
    /// membership and digest that `Full` does. The two digest modes are
    /// transports for the same join.
    #[test]
    fn merkle_and_full_converge_identically(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let r0 = NodeId(1);
        let r1 = NodeId(2);
        let (a, b) = divergent_pair(&steps, r0, r1);
        let (full_a, full_b, _, _) = sync_divergent(&a, &b, DigestMode::Full, 7);
        let (mk_a, mk_b, _, _) = sync_divergent(&a, &b, DigestMode::MerkleRange, 7);
        // Each mode converges its pair...
        prop_assert_eq!(&full_a, &full_b);
        prop_assert_eq!(&mk_a, &mk_b);
        // ...and both modes agree with each other.
        prop_assert_eq!(&full_a, &mk_a);
    }

}

/// At fixed set size, Merkle-range bytes track the symmetric difference
/// (`O(k log n)`): reconciling `16k` differing dots costs well under
/// `16k/k` times proportionally more bytes only by the `log(n/k)`
/// factor, and a small diff costs a fraction of what `Full` ships
/// (whose delta carries the entire live-dot list both ways).
#[test]
fn merkle_bytes_scale_with_difference() {
    let n = 8192u64;
    let r0 = NodeId(1);
    let mut base = ORSet::new();
    for i in 1..=n {
        base.add(r0, entry(i, r0));
    }
    let run = |k: u64, mode: DigestMode| {
        let mut a = base.clone();
        let mut b = base.clone();
        // a gains k/2 fresh elements, b gains k/2 of its own.
        for i in 0..k / 2 {
            a.add(NodeId(3), entry(n + 1 + i, r0));
            b.add(NodeId(4), entry(2 * n + 1 + i, r0));
        }
        let (sa, sb, digest, delta) = sync_divergent(&a, &b, mode, 13);
        assert_eq!(sa, sb, "k={k} {mode:?} must converge");
        digest + delta
    };
    let small = run(8, DigestMode::MerkleRange);
    let large = run(128, DigestMode::MerkleRange);
    let full = run(8, DigestMode::Full);
    // 16x the difference must cost clearly less than 16x the bytes
    // (theory: ~(128·log(n/128)) / (8·log(n/8)) ≈ 10x here).
    assert!(
        large < small * 12,
        "bytes must be sublinear in the diff ratio: {small} -> {large}"
    );
    // And the whole point: a small diff of a big set beats Full.
    assert!(
        small * 2 < full,
        "merkle ({small}) must undercut full ({full}) at n={n}, k=8"
    );
}

/// All three gossip modes converge under `MerkleRange`, end to end
/// through the scheduled engine (not just pairwise syncs).
#[test]
fn merkle_mode_converges_under_schedule() {
    for mode in [GossipMode::Push, GossipMode::Pull, GossipMode::PushPull] {
        let (mut w, client, cref) = setup(4, 19);
        for i in 1..=6 {
            client
                .add_member(&mut w, &cref, entry(i, cref.home))
                .unwrap();
        }
        client.remove_member(&mut w, &cref, ObjectId(3)).unwrap();
        let handle = engine::install(
            &mut w,
            COLL,
            cref.all_nodes(),
            GossipConfig {
                mode,
                digest_mode: DigestMode::MerkleRange,
                interval: SimDuration::from_millis(10),
                ..GossipConfig::default()
            },
        );
        let deadline = w.now() + SimDuration::from_millis(500);
        w.run_until(deadline);
        assert!(
            engine::converged(&w, COLL, &cref.all_nodes()),
            "mode {mode:?} failed to converge under MerkleRange"
        );
        assert_eq!(
            engine::elements_at(&w, cref.replicas[0], COLL)
                .unwrap()
                .len(),
            5
        );
        assert!(
            w.metrics().counter(names::RANGE_RPCS) > 0,
            "MerkleRange must actually descend"
        );
        handle.stop();
        w.run_to_quiescence();
    }
}

/// Regression (silent drop): a peer that does not speak the anti-entropy
/// protocol — here a plain [`StoreServer`] — answers `BadRequest`, which
/// used to be matched as `Ok(_) => None` and dropped without a trace.
/// Every such exchange must now count as a failure, in both digest
/// modes.
#[test]
fn unexpected_replies_count_as_failures() {
    for digest_mode in [DigestMode::Full, DigestMode::MerkleRange] {
        let mut t = Topology::new();
        let _client = t.add_node("client", 0);
        let gossip_node = t.add_node("g", 1);
        let plain_node = t.add_node("p", 2);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(5),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        w.install_service(gossip_node, Box::new(GossipNode::new(gossip_node)));
        // The peer is a bare store server: no gossip vocabulary.
        w.install_service(plain_node, Box::new(StoreServer::new()));
        w.with_service_mut(gossip_node, |g: &mut GossipNode| {
            g.create_replica(COLL, GossipSemantics::GrowShrink);
            g.crdt_mut(COLL)
                .unwrap()
                .add(gossip_node, entry(1, gossip_node));
        });
        assert_eq!(w.metrics().counter(names::FAILURES), 0);
        engine::sync_pair_with(&mut w, COLL, gossip_node, plain_node, digest_mode, TIMEOUT);
        assert!(
            w.metrics().counter(names::FAILURES) > 0,
            "{digest_mode:?}: a BadRequest reply must be counted, not swallowed"
        );
    }
}

/// Regression (crashed-replica blindness): a replica that crashes while
/// holding dots nobody else has observed used to vanish from the
/// convergence-lag join — the survivors agreed with each other, so the
/// round read as fully converged while state sat unreplicated on the
/// dead node. The join now includes down-replica digests and the
/// exposure surfaces as `gossip.unreplicated_dots`.
#[test]
fn crashed_replica_with_unreplicated_dots_is_not_converged() {
    let (mut w, client, cref) = setup(3, 31);
    // Seed and fully converge one member.
    client
        .add_member(&mut w, &cref, entry(1, cref.home))
        .unwrap();
    let handle = engine::install(
        &mut w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(10),
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(300);
    w.run_until(deadline);
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
    assert_eq!(w.metrics().gauge(names::UNREPLICATED_DOTS), 0);
    let stale_before = w.metrics().counter(names::REPLICA_STALE_ROUNDS);
    // A second member lands on the primary, which crashes before any
    // round can replicate the new dot.
    client
        .add_member(&mut w, &cref, entry(2, cref.home))
        .unwrap();
    w.topology_mut().crash(cref.home);
    let deadline = w.now() + SimDuration::from_millis(300);
    w.run_until(deadline);
    // The two survivors agree with each other — the old code called
    // this converged. The new dot exists only on the dead primary.
    assert!(
        w.metrics().gauge(names::UNREPLICATED_DOTS) > 0,
        "the crashed primary's unreplicated dot must be visible"
    );
    assert!(
        w.metrics().counter(names::REPLICA_STALE_ROUNDS) > stale_before,
        "live replicas trailing a dead replica's digest are stale"
    );
    handle.stop();
    w.run_to_quiescence();
}
