//! Property: OR-Set removal dots win. An element removed while a
//! partition holds stale replicas apart must not resurrect — not in the
//! client's `ReadPolicy::Leaderless` union read, and not on any replica
//! once anti-entropy reconverges after the heal.

use proptest::prelude::*;
use weakset_gossip::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreWorld};

const COLL: CollectionId = CollectionId(1);

fn setup(seed: u64, n: usize) -> (StoreWorld, StoreClient, CollectionRef) {
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let servers: Vec<NodeId> = t.add_servers("s", n);
    let mut w = StoreWorld::new(
        WorldConfig::seeded(seed),
        t,
        LatencyModel::Constant(SimDuration::from_millis(1)),
    );
    for &s in &servers {
        w.install_service(
            s,
            Box::new(GossipNode::new(s).with_default_semantics(GossipSemantics::GrowShrink)),
        );
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(50));
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(&mut w, &cref).unwrap();
    (w, client, cref)
}

fn converge(w: &mut StoreWorld, cref: &CollectionRef) {
    let handle = engine::install(
        w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(5),
            fanout: 2,
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(400);
    w.run_until(deadline);
    assert!(engine::converged(w, COLL, &cref.all_nodes()), "convergence");
    handle.stop();
    w.run_to_quiescence();
}

fn union_elems(w: &mut StoreWorld, client: &StoreClient, cref: &CollectionRef) -> Vec<u64> {
    let mut ids: Vec<u64> = client
        .read_members(w, cref, ReadPolicy::Leaderless)
        .expect("leaderless read with a reachable replica")
        .entries
        .iter()
        .map(|m| m.elem.0)
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Removals issued at the primary while the replicas are partitioned
    /// away never resurrect: the leaderless union read excludes the
    /// victim both during the partition (primary-only union) and after
    /// heal + reconvergence (every replica has applied the removal dots,
    /// which dominate the stale add dots the replicas still carry).
    #[test]
    fn partition_era_removals_do_not_resurrect(
        seed in 0u64..500,
        k in 2usize..6,
        victim_pick in 0usize..6,
    ) {
        let victim = (victim_pick % k) as u64 + 1;
        let (mut w, client, cref) = setup(seed, 3);
        for id in 1..=k as u64 {
            let home = cref.all_nodes()[(id as usize) % 3];
            client
                .put_object(&mut w, home, ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]))
                .unwrap();
            client
                .add_member(&mut w, &cref, MemberEntry { elem: ObjectId(id), home })
                .unwrap();
        }
        converge(&mut w, &cref);

        // Replicas drop off together; client and primary stay connected,
        // so the removal lands at the primary while both replicas keep
        // their (now stale) membership including the victim.
        w.topology_mut().partition(&cref.replicas);
        client.remove_member(&mut w, &cref, ObjectId(victim)).unwrap();

        let expected: Vec<u64> = (1..=k as u64).filter(|&e| e != victim).collect();
        prop_assert_eq!(union_elems(&mut w, &client, &cref), expected.clone());

        // Heal and reconverge: the removal dots must beat the stale adds
        // on every replica, and the union must stay shrunk.
        w.topology_mut().heal_partition();
        converge(&mut w, &cref);
        prop_assert_eq!(union_elems(&mut w, &client, &cref), expected);
        for &node in &cref.all_nodes() {
            let elems = engine::elements_at(&w, node, COLL).expect("replica hosts the collection");
            prop_assert!(
                !elems.iter().any(|m| m.elem == ObjectId(victim)),
                "victim resurrected on {node}"
            );
        }
    }
}
