//! Property tests for the membership CRDT algebra.
//!
//! Anti-entropy is only correct if the join is a semilattice merge:
//! commutative, associative, and idempotent — and if shipping deltas is
//! indistinguishable from shipping full states. These properties are what
//! let `weakset-gossip` deliver deltas in any order, any number of times,
//! over any topology, and still converge every replica to one membership.

use proptest::prelude::*;
use weakset_gossip::prelude::{GSet, ORSet};
use weakset_sim::node::NodeId;
use weakset_store::collection::MemberEntry;
use weakset_store::dotted::VersionVector;
use weakset_store::object::ObjectId;

/// One local mutation at a replica: `kind == 0` is a remove, anything
/// else an add. Element ids are drawn from a small pool so adds, removes
/// and re-adds of the same element collide often.
type Op = (u8, u64);

fn entry(elem: u64) -> MemberEntry {
    MemberEntry {
        elem: ObjectId(elem),
        home: NodeId(0),
    }
}

/// Replays `ops` as local mutations of replica `id` on an OR-Set.
fn orset_of(id: u32, ops: &[Op]) -> ORSet {
    let mut s = ORSet::new();
    for &(kind, elem) in ops {
        if kind == 0 {
            s.remove(NodeId(id), ObjectId(elem));
        } else {
            s.add(NodeId(id), entry(elem));
        }
    }
    s
}

/// Replays `ops` on a G-Set (removes are skipped: grow-only).
fn gset_of(id: u32, ops: &[Op]) -> GSet {
    let mut s = GSet::new();
    for &(kind, elem) in ops {
        if kind != 0 {
            s.add(NodeId(id), entry(elem));
        }
    }
    s
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 1u64..9), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a ⊔ b = b ⊔ a, as full states (entries, dots, and vector).
    #[test]
    fn orset_merge_is_commutative(oa in ops(), ob in ops()) {
        let a = orset_of(1, &oa);
        let b = orset_of(2, &ob);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// (a ⊔ b) ⊔ c = a ⊔ (b ⊔ c).
    #[test]
    fn orset_merge_is_associative(oa in ops(), ob in ops(), oc in ops()) {
        let a = orset_of(1, &oa);
        let b = orset_of(2, &ob);
        let c = orset_of(3, &oc);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// a ⊔ a = a, and re-applying an already-joined state is a no-op.
    #[test]
    fn orset_merge_is_idempotent(oa in ops(), ob in ops()) {
        let a = orset_of(1, &oa);
        let b = orset_of(2, &ob);
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a);
        let mut ab = a.clone();
        ab.merge(&b);
        let once = ab.clone();
        ab.merge(&b);
        prop_assert_eq!(ab, once);
    }

    /// Applying the delta against the receiver's digest produces exactly
    /// the full-state merge: digest-then-delta loses nothing.
    #[test]
    fn orset_delta_application_equals_full_merge(oa in ops(), ob in ops()) {
        let a = orset_of(1, &oa);
        let b = orset_of(2, &ob);
        let mut via_delta = b.clone();
        via_delta.apply(&a.delta_since(&b.digest()));
        let mut via_merge = b.clone();
        via_merge.merge(&a);
        prop_assert_eq!(via_delta, via_merge);
    }

    /// Digest dominance implies state dominance: when a peer's digest
    /// covers ours, the delta we would send is pure overhead (no novel
    /// entries, and applying it changes nothing). This is the property
    /// that makes the engine's push-skip sound — removal dots exist
    /// precisely so it also holds after removals.
    #[test]
    fn dominated_digest_means_nothing_to_send(oa in ops(), ob in ops()) {
        let a = orset_of(1, &oa);
        let mut b = orset_of(2, &ob);
        b.merge(&a);
        prop_assert!(b.digest().dominates(&a.digest()));
        let d = a.delta_since(&b.digest());
        prop_assert!(d.novel.is_empty());
        let before = b.clone();
        b.apply(&d);
        prop_assert_eq!(b, before);
    }

    /// G-Set joins obey the same algebra, and Fig. 5's `ensures` holds
    /// across merges: a replica's membership only ever grows.
    #[test]
    fn gset_merge_algebra_and_monotonicity(oa in ops(), ob in ops(), oc in ops()) {
        let a = gset_of(1, &oa);
        let b = gset_of(2, &ob);
        let c = gset_of(3, &oc);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab.elements(), &ba.elements());
        prop_assert!(a.elements().is_subset(&ab.elements()));
        prop_assert!(b.elements().is_subset(&ab.elements()));
        let mut twice = ab.clone();
        twice.merge(&b);
        prop_assert_eq!(twice, ab);
    }

    /// Multi-replica convergence: scatter operations over three replicas,
    /// deliver pairwise deltas in an arbitrary order, then run one
    /// complete anti-entropy round. All replicas end with identical
    /// membership and identical digests, no matter the delivery order.
    #[test]
    fn orset_replicas_converge_after_final_round(
        per_replica in proptest::collection::vec(ops(), 3),
        deliveries in proptest::collection::vec((0usize..3, 0usize..3), 0..20),
    ) {
        let mut rs: Vec<ORSet> = per_replica
            .iter()
            .enumerate()
            .map(|(i, ops)| orset_of(i as u32 + 1, ops))
            .collect();
        // Arbitrary partial gossip: replica `to` pulls a delta from `from`.
        for &(from, to) in &deliveries {
            if from != to {
                let d = rs[from].delta_since(&rs[to].digest());
                rs[to].apply(&d);
            }
        }
        // One complete round: gather everything into replica 0, then
        // scatter its state back out.
        for i in 1..rs.len() {
            let d = rs[i].delta_since(&rs[0].digest());
            rs[0].apply(&d);
        }
        for i in 1..rs.len() {
            let d = rs[0].delta_since(&rs[i].digest());
            rs[i].apply(&d);
        }
        for i in 1..rs.len() {
            prop_assert_eq!(rs[i].elements(), rs[0].elements());
            prop_assert_eq!(rs[i].digest(), rs[0].digest());
        }
    }

    /// The same convergence for grow-only replicas, plus monotonicity
    /// along every delivery: no G-Set ever shrinks during gossip.
    #[test]
    fn gset_replicas_converge_after_final_round(
        per_replica in proptest::collection::vec(ops(), 3),
        deliveries in proptest::collection::vec((0usize..3, 0usize..3), 0..20),
    ) {
        let mut rs: Vec<GSet> = per_replica
            .iter()
            .enumerate()
            .map(|(i, ops)| gset_of(i as u32 + 1, ops))
            .collect();
        for &(from, to) in &deliveries {
            if from != to {
                let before = rs[to].elements();
                let d = rs[from].delta_since(&rs[to].digest());
                rs[to].apply(&d);
                prop_assert!(before.is_subset(&rs[to].elements()));
            }
        }
        for i in 1..rs.len() {
            let d = rs[i].delta_since(&rs[0].digest());
            rs[0].apply(&d);
        }
        for i in 1..rs.len() {
            let d = rs[0].delta_since(&rs[i].digest());
            rs[i].apply(&d);
        }
        for i in 1..rs.len() {
            prop_assert_eq!(rs[i].elements(), rs[0].elements());
            prop_assert_eq!(rs[i].digest(), rs[0].digest());
        }
    }

    /// A full-state delta (against the empty vector) is the state: any
    /// receiver that applies it becomes a superset, and a fresh receiver
    /// becomes an exact copy.
    #[test]
    fn full_state_delta_reconstructs_the_set(oa in ops()) {
        let a = orset_of(1, &oa);
        let mut fresh = ORSet::new();
        fresh.apply(&a.delta_since(&VersionVector::new()));
        prop_assert_eq!(fresh, a);
    }
}
