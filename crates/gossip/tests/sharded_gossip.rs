//! End-to-end: a sharded weak set over gossip-replicated shard groups.
//!
//! Each shard's sub-collection runs its own anti-entropy schedule
//! strictly inside its replica group (`engine::install_sharded`);
//! convergence is per shard (`engine::converged_sharded`). Once the
//! groups converge, leaderless batched reads and fan-out iteration keep
//! working with EVERY shard primary partitioned away — and the per-shard
//! runs still conform to the paper's figures.

use weakset::prelude::*;
use weakset_gossip::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_spec::checker::check_computation;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{StoreClient, StoreWorld};

const BASE: CollectionId = CollectionId(7);

fn sharded_gossip_world(
    n_shards: usize,
    group_size: usize,
) -> (StoreWorld, ShardedWeakSet, Vec<ShardGroup>) {
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let groups: Vec<ShardGroup> = (0..n_shards)
        .map(|g| {
            let nodes: Vec<NodeId> = t.add_servers(&format!("g{g}-"), group_size);
            ShardGroup {
                home: nodes[0],
                replicas: nodes[1..].to_vec(),
            }
        })
        .collect();
    let mut w = StoreWorld::new(
        WorldConfig::seeded(31),
        t,
        LatencyModel::Constant(SimDuration::from_millis(1)),
    );
    for id in w.topology().node_ids().collect::<Vec<_>>() {
        if id != cn {
            w.install_service(
                id,
                Box::new(GossipNode::new(id).with_default_semantics(GossipSemantics::GrowShrink)),
            );
        }
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(50));
    let set = ShardedWeakSet::create(&mut w, BASE, client, &groups, IterConfig::leaderless())
        .expect("create sharded set");
    (w, set, groups)
}

/// Adds element `id`, homing its object on the routed shard's FIRST
/// REPLICA so fetches survive a partition of the shard primary.
fn add_off_primary(w: &mut StoreWorld, set: &ShardedWeakSet, groups: &[ShardGroup], id: u64) {
    let shard = set.shard_for(ObjectId(id));
    let home = groups[shard].replicas[0];
    set.add(
        w,
        ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
        home,
    )
    .unwrap();
}

/// The per-shard gossip wiring: one schedule per shard group.
fn shard_pairs(set: &ShardedWeakSet) -> Vec<(CollectionId, Vec<NodeId>)> {
    (0..set.shard_count())
        .map(|i| (set.shard(i).cref().id, set.shard(i).cref().all_nodes()))
        .collect()
}

fn converge_all(w: &mut StoreWorld, set: &ShardedWeakSet) {
    let pairs = shard_pairs(set);
    let handles = engine::install_sharded(
        w,
        &pairs,
        GossipConfig {
            interval: SimDuration::from_millis(5),
            fanout: 2,
            ..GossipConfig::default()
        },
    );
    assert_eq!(handles.len(), set.shard_count());
    let deadline = w.now() + SimDuration::from_millis(500);
    w.run_until(deadline);
    assert!(
        engine::converged_sharded(w, &pairs),
        "every shard group converged"
    );
    for h in handles {
        h.stop();
    }
    w.run_to_quiescence();
}

#[test]
fn sharded_leaderless_reads_survive_all_primaries_partitioned() {
    let (mut w, set, groups) = sharded_gossip_world(2, 3);
    for id in 1..=8 {
        add_off_primary(&mut w, &set, &groups, id);
    }
    converge_all(&mut w, &set);

    // Cut off EVERY shard primary at once.
    let primaries: Vec<NodeId> = groups.iter().map(|g| g.home).collect();
    w.topology_mut().partition(&primaries);

    // One batched leaderless round still counts the whole set.
    assert_eq!(set.size(&mut w).unwrap(), 8);

    // And the fan-out optimistic iterator drains it, per-shard runs
    // conforming to Figure 6 against the gossip-wrapped history.
    let mut it = set.elements_observed_via(Semantics::Optimistic, |_| {
        HistorySource::new(GossipNode::visit_collection_history)
    });
    let mut got = Vec::new();
    loop {
        match it.next(&mut w) {
            IterStep::Yielded(rec) => got.push(rec.id),
            IterStep::Done => break,
            other => panic!("unexpected step: {other:?}"),
        }
    }
    got.sort_unstable();
    assert_eq!(got, (1..=8).map(ObjectId).collect::<Vec<_>>());
    let comps = it.take_computations(&w);
    assert_eq!(comps.len(), 2, "one computation per shard");
    for comp in &comps {
        check_computation(Semantics::Optimistic.figure(), comp).assert_ok();
    }

    // Per-shard observability was recorded by the batched read.
    let stats = weakset_sim::metrics::per_shard_stats(w.metrics());
    assert_eq!(stats.len(), 2);
    for s in &stats {
        assert!(s.reads_ok >= 1, "shard {}", s.shard);
        assert_eq!(s.queue_depth_max, 3, "whole group shares one envelope");
    }
}

#[test]
fn per_shard_gossip_stays_inside_its_group() {
    let (mut w, set, groups) = sharded_gossip_world(2, 3);
    for id in 1..=6 {
        add_off_primary(&mut w, &set, &groups, id);
    }
    // Partition shard 1's whole group away BEFORE gossip: shard 0 must
    // still converge on its own — its schedule never needs the other
    // group.
    let mut other_group: Vec<NodeId> = vec![groups[1].home];
    other_group.extend(&groups[1].replicas);
    w.topology_mut().partition(&other_group);

    let pairs = shard_pairs(&set);
    let handles = engine::install_sharded(
        &mut w,
        &pairs,
        GossipConfig {
            interval: SimDuration::from_millis(5),
            fanout: 2,
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(500);
    w.run_until(deadline);
    assert!(
        engine::converged(&w, pairs[0].0, &pairs[0].1),
        "shard 0 converges despite shard 1's group being cut off"
    );
    // Shard 1's group ALSO converges internally: the partition split
    // groups apart, not group members from each other.
    assert!(engine::converged(&w, pairs[1].0, &pairs[1].1));
    for h in handles {
        h.stop();
    }
    w.run_to_quiescence();

    // Shard 0 reads fine; shard 1 is unreachable from the client, so
    // the whole-set read reports it.
    let shard0_members = set.shard(0).size(&mut w).unwrap();
    assert_eq!(
        shard0_members,
        (1..=6)
            .filter(|&id| set.shard_for(ObjectId(id)) == 0)
            .count()
    );
    assert!(matches!(
        set.size(&mut w),
        Err(Failure::MembershipUnavailable(_))
    ));
}
