//! Read-your-writes through gossip convergence lag.
//!
//! Gossip replicas converge by anti-entropy, so right after a write only
//! the primary's CRDT holds the new dot. A plain leaderless union read
//! served by the lagging replicas can miss the session's own committed
//! insert; `ReadPolicy::CausalSession` must never do so — it redirects
//! to a replica that dominates the session clock, waits for convergence,
//! or fails, but it never silently serves the stale membership.

use weakset_gossip::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{CollectionId, ObjectId};
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreError, StoreWorld};

const COLL: CollectionId = CollectionId(1);

fn setup(seed: u64) -> (StoreWorld, StoreClient, CollectionRef) {
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let servers: Vec<NodeId> = t.add_servers("s", 3);
    let mut w = StoreWorld::new(
        WorldConfig::seeded(seed),
        t,
        LatencyModel::Constant(SimDuration::from_millis(1)),
    );
    for &s in &servers {
        w.install_service(
            s,
            Box::new(GossipNode::new(s).with_default_semantics(GossipSemantics::GrowShrink)),
        );
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(50)).with_session();
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(&mut w, &cref).unwrap();
    (w, client, cref)
}

fn converge(w: &mut StoreWorld, cref: &CollectionRef) {
    let handle = engine::install(
        w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(5),
            fanout: 2,
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(400);
    w.run_until(deadline);
    assert!(engine::converged(w, COLL, &cref.all_nodes()), "convergence");
    handle.stop();
    w.run_to_quiescence();
}

fn elems(read: &weakset_store::client::MembershipRead) -> Vec<u64> {
    let mut ids: Vec<u64> = read.entries.iter().map(|m| m.elem.0).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn session_reads_never_miss_own_writes_during_convergence_lag() {
    let (mut w, client, cref) = setup(11);
    // Two writes land at the primary's CRDT; the secondaries' CRDTs stay
    // empty until anti-entropy runs (which it has not yet).
    for id in [1u64, 2] {
        client
            .add_member(
                &mut w,
                &cref,
                MemberEntry {
                    elem: ObjectId(id),
                    home: cref.home,
                },
            )
            .unwrap();
    }
    // The session learned the primary's post-write digest.
    let tok = client.session_token().unwrap();
    assert_eq!(tok.clock(COLL).map(|c| c.total()), Some(2));

    // A session read during the lag: both secondaries answer
    // SessionBehind and the union is served by the primary — the client
    // sees its own writes.
    let read = client
        .read_members(&mut w, &cref, ReadPolicy::CausalSession)
        .unwrap();
    assert_eq!(elems(&read), vec![1, 2], "read-your-writes despite lag");
    assert!(w.metrics().counter("session.read.behind") >= 2);

    // With the primary gone and the replicas still unconverged, a plain
    // leaderless union happily serves an EMPTY membership — the client's
    // own writes vanish. The session read refuses and fails instead.
    w.topology_mut().partition(&[cref.home]);
    let stale = client
        .read_members(&mut w, &cref, ReadPolicy::Leaderless)
        .unwrap();
    assert_eq!(elems(&stale), Vec::<u64>::new(), "lagging union is empty");
    let err = client
        .read_members(&mut w, &cref, ReadPolicy::CausalSession)
        .unwrap_err();
    assert!(matches!(err, StoreError::SessionBehind { need: 2, .. }));
    assert!(err.is_failure());

    // After anti-entropy converges the ring, the same session read is
    // satisfied by the secondaries alone (primary still partitioned).
    w.topology_mut().heal_partition();
    converge(&mut w, &cref);
    w.topology_mut().partition(&[cref.home]);
    let read = client
        .read_members(&mut w, &cref, ReadPolicy::CausalSession)
        .unwrap();
    assert_eq!(elems(&read), vec![1, 2], "converged replicas satisfy");
}

#[test]
fn session_reads_stay_monotonic_across_replicas() {
    let (mut w, client, cref) = setup(12);
    client
        .add_member(
            &mut w,
            &cref,
            MemberEntry {
                elem: ObjectId(1),
                home: cref.home,
            },
        )
        .unwrap();
    converge(&mut w, &cref);
    // Read once from the converged ring: the session clock now covers
    // the whole membership.
    let first = client
        .read_members(&mut w, &cref, ReadPolicy::CausalSession)
        .unwrap();
    assert_eq!(elems(&first), vec![1]);
    // A second write lands at the primary only; the secondaries lag
    // again. Every subsequent session read must include BOTH elements
    // (monotonic reads + read-your-writes), no matter which replicas it
    // ends up touching.
    client
        .add_member(
            &mut w,
            &cref,
            MemberEntry {
                elem: ObjectId(2),
                home: cref.home,
            },
        )
        .unwrap();
    for _ in 0..3 {
        let read = client
            .read_members(&mut w, &cref, ReadPolicy::CausalSession)
            .unwrap();
        assert_eq!(elems(&read), vec![1, 2], "no going back in time");
    }
}
