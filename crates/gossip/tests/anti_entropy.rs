//! Engine-level integration: anti-entropy rounds on the simulated event
//! loop converge replicas in every mode, survive partitions, and back
//! leaderless membership reads.

use weakset_gossip::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::client::ReadPolicy;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{CollectionId, ObjectId};
use weakset_store::prelude::{CollectionRef, StoreClient, StoreError, StoreWorld};

const COLL: CollectionId = CollectionId(1);

/// A client node plus `n` gossip replica nodes, one site each.
fn setup(n: usize, seed: u64) -> (StoreWorld, StoreClient, CollectionRef) {
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let servers: Vec<NodeId> = t.add_servers("s", n);
    let mut w = StoreWorld::new(
        WorldConfig::seeded(seed),
        t,
        LatencyModel::Constant(SimDuration::from_millis(1)),
    );
    for &s in &servers {
        w.install_service(s, Box::new(GossipNode::new(s)));
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(50));
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(&mut w, &cref).unwrap();
    (w, client, cref)
}

fn entry(id: u64, home: NodeId) -> MemberEntry {
    MemberEntry {
        elem: ObjectId(id),
        home,
    }
}

/// Mutations at the primary reach every replica through gossip alone —
/// the best-effort SyncMembers path plays no part in CRDT state.
#[test]
fn all_modes_converge() {
    for mode in [GossipMode::Push, GossipMode::Pull, GossipMode::PushPull] {
        let (mut w, client, cref) = setup(4, 11);
        for i in 1..=5 {
            client
                .add_member(&mut w, &cref, entry(i, cref.home))
                .unwrap();
        }
        assert!(
            !engine::converged(&w, COLL, &cref.all_nodes()),
            "secondaries must start stale ({mode:?})"
        );
        let handle = engine::install(
            &mut w,
            COLL,
            cref.all_nodes(),
            GossipConfig {
                mode,
                interval: SimDuration::from_millis(10),
                ..GossipConfig::default()
            },
        );
        let deadline = w.now() + SimDuration::from_millis(500);
        w.run_until(deadline);
        assert!(
            engine::converged(&w, COLL, &cref.all_nodes()),
            "mode {mode:?} failed to converge"
        );
        assert_eq!(
            engine::elements_at(&w, cref.replicas[0], COLL)
                .unwrap()
                .len(),
            5
        );
        handle.stop();
        w.run_to_quiescence();
    }
}

/// Removals propagate: the (vv, live) half of the delta carries them even
/// when no entry payloads ship.
#[test]
fn removals_propagate() {
    let (mut w, client, cref) = setup(3, 5);
    client
        .add_member(&mut w, &cref, entry(1, cref.home))
        .unwrap();
    client
        .add_member(&mut w, &cref, entry(2, cref.home))
        .unwrap();
    let handle = engine::install(
        &mut w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(5),
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(200);
    w.run_until(deadline);
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
    client.remove_member(&mut w, &cref, ObjectId(1)).unwrap();
    let deadline = w.now() + SimDuration::from_millis(200);
    w.run_until(deadline);
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
    let members = engine::elements_at(&w, cref.replicas[1], COLL).unwrap();
    assert_eq!(members, vec![entry(2, cref.home)]);
    handle.stop();
    w.run_to_quiescence();
}

/// A partitioned replica goes stale, keeps answering from its converged
/// state, and catches up after healing — rounds that cannot reach it are
/// counted as failures, not errors.
#[test]
fn partition_stalls_then_heals() {
    let (mut w, client, cref) = setup(3, 23);
    let isolated = cref.replicas[1];
    client
        .add_member(&mut w, &cref, entry(1, cref.home))
        .unwrap();
    let handle = engine::install(
        &mut w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(10),
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(300);
    w.run_until(deadline);
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
    // Isolate one replica; the primary keeps mutating.
    w.topology_mut().partition(&[isolated]);
    client
        .add_member(&mut w, &cref, entry(2, cref.home))
        .unwrap();
    let deadline = w.now() + SimDuration::from_millis(300);
    w.run_until(deadline);
    assert_eq!(engine::elements_at(&w, isolated, COLL).unwrap().len(), 1);
    assert!(!engine::converged(&w, COLL, &cref.all_nodes()));
    assert!(w.metrics().counter("gossip.failures") > 0);
    // Heal: anti-entropy repairs the divergence.
    w.topology_mut().heal_partition();
    let deadline = w.now() + SimDuration::from_millis(300);
    w.run_until(deadline);
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
    assert_eq!(engine::elements_at(&w, isolated, COLL).unwrap().len(), 2);
    handle.stop();
    w.run_to_quiescence();
}

/// The headline scenario: a partition isolates the primary *and* a
/// majority of replicas. Primary reads fail, quorum reads fail, but the
/// leaderless read answers complete converged membership from the
/// minority side.
#[test]
fn leaderless_reads_survive_primary_isolating_partition() {
    let (mut w, client, cref) = setup(5, 77);
    for i in 1..=4 {
        client
            .add_member(&mut w, &cref, entry(i, cref.home))
            .unwrap();
    }
    let handle = engine::install(
        &mut w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(10),
            fanout: 2,
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(500);
    w.run_until(deadline);
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
    // Cut the primary and two replicas away from the client: 3 of 5
    // membership hosts unreachable, no majority on the client's side.
    w.topology_mut()
        .partition(&[cref.home, cref.replicas[0], cref.replicas[1]]);
    assert!(matches!(
        client.read_members(&mut w, &cref, ReadPolicy::Primary),
        Err(StoreError::Net(_))
    ));
    assert!(matches!(
        client.read_members(&mut w, &cref, ReadPolicy::Quorum),
        Err(StoreError::NoQuorum { got: 2, need: 3 })
    ));
    let read = client
        .read_members(&mut w, &cref, ReadPolicy::Leaderless)
        .unwrap();
    assert_eq!(
        read.entries.len(),
        4,
        "converged minority serves everything"
    );
    assert_eq!(read.version, 4);
    handle.stop();
    w.run_to_quiescence();
}

/// `until` bounds the schedule without an explicit stop.
#[test]
fn until_deadline_stops_the_schedule() {
    let (mut w, client, cref) = setup(2, 3);
    client
        .add_member(&mut w, &cref, entry(1, cref.home))
        .unwrap();
    let _handle = engine::install(
        &mut w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(10),
            until: Some(SimTime::from_millis(100)),
            ..GossipConfig::default()
        },
    );
    // Quiescence is reachable because the round past the deadline exits
    // without rescheduling.
    w.run_to_quiescence();
    assert!(w.now() >= SimTime::from_millis(100));
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
}

/// A one-shot pairwise sync without a schedule.
#[test]
fn sync_pair_repairs_two_replicas() {
    let (mut w, client, cref) = setup(2, 9);
    client
        .add_member(&mut w, &cref, entry(1, cref.home))
        .unwrap();
    assert!(!engine::converged(&w, COLL, &cref.all_nodes()));
    engine::sync_pair(
        &mut w,
        COLL,
        cref.replicas[0],
        cref.home,
        SimDuration::from_millis(20),
    );
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
}

/// Digest-then-delta does its job: once converged, further rounds ship
/// no entry payloads.
#[test]
fn converged_rounds_ship_nothing() {
    let (mut w, client, cref) = setup(3, 41);
    for i in 1..=3 {
        client
            .add_member(&mut w, &cref, entry(i, cref.home))
            .unwrap();
    }
    let handle = engine::install(
        &mut w,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(10),
            ..GossipConfig::default()
        },
    );
    let deadline = w.now() + SimDuration::from_millis(400);
    w.run_until(deadline);
    assert!(engine::converged(&w, COLL, &cref.all_nodes()));
    let shipped = w.metrics().counter("gossip.novel_shipped");
    let deadline = w.now() + SimDuration::from_millis(400);
    w.run_until(deadline);
    assert_eq!(
        w.metrics().counter("gossip.novel_shipped"),
        shipped,
        "converged replicas must exchange digests only"
    );
    handle.stop();
    w.run_to_quiescence();
}
