//! The simulator as a [`Runtime`]: trait impls for
//! [`weakset_sim::world::World`] that delegate to its inherent methods.
//!
//! Nothing here adds behavior — the impls exist so `&mut World<M>`
//! coerces to `&mut dyn Runtime<M>` at call sites. Concrete-typed
//! callers (tests, DST, benches) keep hitting the inherent methods
//! directly; only `dyn`-typed callers dispatch through these.

use crate::traits::{Clock, Observe, RtMessage, RtTask, Runtime, ServiceHost, Spawner, Transport};
use std::any::Any;
use weakset_sim::metrics::{Metrics, SpanId, TraceContext};
use weakset_sim::net::NetError;
use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::world::{ReplyToken, Service, Task, World};

impl<M: RtMessage> Clock for World<M> {
    fn now(&self) -> SimTime {
        World::now(self)
    }

    fn sleep(&mut self, d: SimDuration) {
        World::sleep(self, d)
    }

    fn rng_for(&self, label: &str) -> SimRng {
        World::rng_for(self, label)
    }
}

impl<M: RtMessage> Observe for World<M> {
    fn metrics(&self) -> &Metrics {
        World::metrics(self)
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        World::metrics_mut(self)
    }

    fn span_enter(&mut self, kind: &str, detail: &dyn Fn() -> String) -> SpanId {
        World::span_enter(self, kind, detail)
    }

    fn span_enter_under(
        &mut self,
        parent: Option<TraceContext>,
        kind: &str,
        detail: &dyn Fn() -> String,
    ) -> SpanId {
        World::span_enter_under(self, parent, kind, detail)
    }

    fn span_exit(&mut self, id: SpanId) {
        World::span_exit(self, id)
    }

    fn current_ctx(&self) -> Option<TraceContext> {
        World::current_ctx(self)
    }

    fn trace_event(&mut self, kind: &str, detail: &dyn Fn() -> String) {
        World::trace_event(self, kind, detail)
    }
}

impl<M: RtMessage> Transport<M> for World<M> {
    fn rpc(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        timeout: SimDuration,
    ) -> Result<M, NetError> {
        World::rpc(self, from, to, msg, timeout)
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: M) -> ReplyToken {
        World::send(self, from, to, msg)
    }

    fn send_batch(&mut self, from: NodeId, to: NodeId, parts: Vec<M>) -> ReplyToken {
        World::send_batch(self, from, to, parts)
    }

    fn try_take_reply(&mut self, token: ReplyToken) -> Option<Result<M, NetError>> {
        World::try_take_reply(self, token)
    }

    fn wait_any(&mut self, tokens: &[ReplyToken], deadline: SimTime) -> Option<ReplyToken> {
        World::wait_any(self, tokens, deadline)
    }

    fn estimate_latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        World::estimate_latency(self, a, b)
    }
}

impl<M: RtMessage> ServiceHost<M> for World<M> {
    fn install_service(&mut self, node: NodeId, svc: Box<dyn Service<M> + Send>) {
        World::install_service(self, node, svc)
    }

    fn with_service_any(&self, node: NodeId, f: &mut dyn FnMut(&dyn Any)) -> bool {
        match World::service_dyn(self, node) {
            Some(any) => {
                f(any);
                true
            }
            None => false,
        }
    }

    fn with_service_any_mut(&mut self, node: NodeId, f: &mut dyn FnMut(&mut dyn Any)) -> bool {
        match World::service_dyn_mut(self, node) {
            Some(any) => {
                f(any);
                true
            }
            None => false,
        }
    }

    fn is_up(&self, node: NodeId) -> bool {
        self.topology().is_up(node)
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.topology().reachable(from, to)
    }
}

/// Bridges a backend-agnostic [`RtTask`] into the simulator's event
/// queue as a [`weakset_sim::world::Task`].
struct TaskAdapter<M: RtMessage>(Box<dyn RtTask<M>>);

impl<M: RtMessage> Task<M> for TaskAdapter<M> {
    fn label(&self) -> &str {
        self.0.label()
    }

    fn run(self: Box<Self>, world: &mut World<M>) {
        let rt: &mut dyn Runtime<M> = world;
        self.0.run(rt)
    }
}

impl<M: RtMessage> Spawner<M> for World<M> {
    fn spawn_in(&mut self, d: SimDuration, task: Box<dyn RtTask<M>>) {
        World::spawn_in(self, d, TaskAdapter(task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{RuntimeExt, TaskFn};
    use weakset_sim::net::BatchEnvelope;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::{ServiceCtx, WorldConfig};

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Val(u64),
        Batch(Vec<Msg>),
    }

    impl BatchEnvelope for Msg {
        fn wrap_batch(parts: Vec<Self>) -> Self {
            Msg::Batch(parts)
        }
        fn unwrap_batch(self) -> Result<Vec<Self>, Self> {
            match self {
                Msg::Batch(parts) => Ok(parts),
                other => Err(other),
            }
        }
    }

    struct Echo {
        hits: u64,
    }

    impl Service<Msg> for Echo {
        fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: Msg) -> Msg {
            self.hits += 1;
            match msg {
                Msg::Val(n) => Msg::Val(n + 1),
                batch => batch,
            }
        }
    }

    fn world() -> (World<Msg>, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a", 0);
        let b = t.add_node("b", 1);
        let mut w = World::new(
            WorldConfig::default(),
            t,
            weakset_sim::latency::LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        w.install_service(b, Box::new(Echo { hits: 0 }));
        (w, a, b)
    }

    #[test]
    fn world_coerces_to_dyn_runtime() {
        let (mut w, a, b) = world();
        let rt: &mut dyn Runtime<Msg> = &mut w;
        let reply = rt.rpc(a, b, Msg::Val(1), SimDuration::from_millis(100));
        assert_eq!(reply, Ok(Msg::Val(2)));
        assert!(rt.now() > SimTime::ZERO);
        assert!(rt.is_up(b));
        assert!(rt.reachable(a, b));
    }

    #[test]
    fn typed_service_access_through_dyn() {
        let (mut w, _a, b) = world();
        let rt: &mut dyn Runtime<Msg> = &mut w;
        let hits = rt.with_service(b, |e: &Echo| e.hits);
        assert_eq!(hits, Some(0));
        let bumped = rt.with_service_mut(b, |e: &mut Echo| {
            e.hits += 7;
            e.hits
        });
        assert_eq!(bumped, Some(7));
        assert_eq!(rt.with_service(NodeId(99), |e: &Echo| e.hits), None);
    }

    #[test]
    fn spawned_rt_task_fires_on_sim_queue() {
        let (mut w, _a, b) = world();
        {
            let rt: &mut dyn Runtime<Msg> = &mut w;
            rt.spawn_in(
                SimDuration::from_millis(5),
                Box::new(TaskFn(move |rt: &mut (dyn Runtime<Msg> + 'static)| {
                    rt.with_service_mut(b, |e: &mut Echo| e.hits = 42);
                })),
            );
            rt.sleep(SimDuration::from_millis(10));
        }
        assert_eq!(w.service::<Echo>(b).map(|e| e.hits), Some(42));
    }
}
