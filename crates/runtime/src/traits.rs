//! The object-safe execution-environment traits.
//!
//! The split follows ownership: [`Clock`] owns time, [`Transport`] owns
//! delivery and completion, [`ServiceHost`] owns the per-node handlers
//! and liveness, [`Spawner`] owns deferred work, and [`Observe`] owns
//! metrics and the causal span stack. [`Runtime`] is their sum — the
//! type that client-side code takes as `&mut dyn Runtime<M>`.

use std::any::Any;
use std::fmt;
use weakset_sim::metrics::{Metrics, SpanId, TraceContext};
use weakset_sim::net::{BatchEnvelope, NetError};
use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::world::{ReplyToken, Service};

/// What a message type must satisfy to cross the runtime boundary:
/// clonable, debuggable, batchable, and safe to hand to another thread.
pub trait RtMessage: Clone + fmt::Debug + BatchEnvelope + Send + 'static {}

impl<M: Clone + fmt::Debug + BatchEnvelope + Send + 'static> RtMessage for M {}

/// Time and deterministic randomness.
///
/// On the simulator this is the virtual event-queue clock; on the
/// threaded backend it is wall time since the runtime started, reported
/// in the same microsecond [`SimTime`] units so client code and metrics
/// are unit-compatible across backends.
pub trait Clock {
    /// The current instant.
    fn now(&self) -> SimTime;
    /// Blocks the calling logical process for `d`, letting background
    /// work (timers, message delivery) make progress in the meantime.
    fn sleep(&mut self, d: SimDuration);
    /// A deterministic RNG stream derived from the run seed and a label.
    fn rng_for(&self, label: &str) -> SimRng;
}

/// Metrics and causal tracing.
///
/// Span details are passed as `&dyn Fn() -> String` (object safety);
/// they are only invoked when the sink is enabled, so a disabled sink
/// still pays no allocation.
pub trait Observe {
    /// Run metrics.
    fn metrics(&self) -> &Metrics;
    /// Mutable run metrics (client-side instrumentation).
    fn metrics_mut(&mut self) -> &mut Metrics;
    /// Opens a causal span under the current context and makes it
    /// current. Pair with [`Observe::span_exit`].
    fn span_enter(&mut self, kind: &str, detail: &dyn Fn() -> String) -> SpanId;
    /// Opens a causal span under an explicit parent context.
    fn span_enter_under(
        &mut self,
        parent: Option<TraceContext>,
        kind: &str,
        detail: &dyn Fn() -> String,
    ) -> SpanId;
    /// Closes a span opened by this trait; spans close in LIFO order.
    fn span_exit(&mut self, id: SpanId);
    /// The innermost open span's context.
    fn current_ctx(&self) -> Option<TraceContext>;
    /// Records a point event attributed to the current context.
    fn trace_event(&mut self, kind: &str, detail: &dyn Fn() -> String);
}

/// Message delivery and completion.
pub trait Transport<M: RtMessage> {
    /// Synchronous RPC: send, wait (advancing this backend's notion of
    /// time), return the reply or the failure.
    fn rpc(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        timeout: SimDuration,
    ) -> Result<M, NetError>;
    /// Launches a request asynchronously; collect with
    /// [`Transport::try_take_reply`] / [`Transport::wait_any`].
    fn send(&mut self, from: NodeId, to: NodeId, msg: M) -> ReplyToken;
    /// Launches several sibling requests as one wire-level envelope.
    fn send_batch(&mut self, from: NodeId, to: NodeId, parts: Vec<M>) -> ReplyToken;
    /// Collects an async reply if it has completed. Never blocks.
    fn try_take_reply(&mut self, token: ReplyToken) -> Option<Result<M, NetError>>;
    /// Blocks until one of `tokens` completes or `deadline` passes;
    /// the completed reply is left for [`Transport::try_take_reply`].
    fn wait_any(&mut self, tokens: &[ReplyToken], deadline: SimTime) -> Option<ReplyToken>;
    /// Deterministic latency estimate for closest-first scheduling.
    /// Backends without a latency model return zero (callers break ties
    /// by element id, so ordering stays deterministic).
    fn estimate_latency(&self, a: NodeId, b: NodeId) -> SimDuration;
}

/// Per-node services and liveness.
pub trait ServiceHost<M: RtMessage> {
    /// Installs (or replaces) the service handling messages on `node`.
    fn install_service(&mut self, node: NodeId, svc: Box<dyn Service<M> + Send>);
    /// Visits the service on `node` untyped; returns false when the node
    /// hosts no service. Prefer [`RuntimeExt::with_service`].
    fn with_service_any(&self, node: NodeId, f: &mut dyn FnMut(&dyn Any)) -> bool;
    /// Mutable visit of the service on `node`.
    fn with_service_any_mut(&mut self, node: NodeId, f: &mut dyn FnMut(&mut dyn Any)) -> bool;
    /// Whether the node is currently up.
    fn is_up(&self, node: NodeId) -> bool;
    /// Whether a route currently exists from `from` to `to`.
    fn reachable(&self, from: NodeId, to: NodeId) -> bool;
}

/// A unit of deferred work, the runtime-agnostic analogue of
/// [`weakset_sim::world::Task`]. `Send` because the threaded backend
/// carries pending tasks across view clones handed to other threads.
pub trait RtTask<M: RtMessage>: Send {
    /// Label recorded when the task fires.
    fn label(&self) -> &str {
        "task"
    }
    /// Runs the task against whichever backend scheduled it. Tasks may
    /// re-spawn themselves via [`Spawner::spawn_in`].
    fn run(self: Box<Self>, rt: &mut (dyn Runtime<M> + 'static));
}

/// Adapts a closure into an [`RtTask`] (there is no blanket `FnOnce`
/// impl: downstream crates implement `RtTask` for their own types, and
/// a blanket would conflict).
pub struct TaskFn<F>(pub F);

impl<M: RtMessage, F: FnOnce(&mut (dyn Runtime<M> + 'static)) + Send> RtTask<M> for TaskFn<F> {
    fn run(self: Box<Self>, rt: &mut (dyn Runtime<M> + 'static)) {
        (self.0)(rt)
    }
}

/// Deferred scheduling.
pub trait Spawner<M: RtMessage> {
    /// Schedules `task` to run `d` from now. The simulator fires it from
    /// the event queue; the threaded backend fires it from the driving
    /// view's timer heap while that view sleeps or waits.
    fn spawn_in(&mut self, d: SimDuration, task: Box<dyn RtTask<M>>);
}

/// The full execution environment: what `StoreClient`, the `elements`
/// iterators, and the gossip engine run against.
pub trait Runtime<M: RtMessage>:
    Clock + Observe + ServiceHost<M> + Transport<M> + Spawner<M>
{
}

impl<M: RtMessage, T: Clock + Observe + ServiceHost<M> + Transport<M> + Spawner<M>> Runtime<M>
    for T
{
}

/// Typed conveniences over [`ServiceHost`]'s object-safe visitors.
pub trait RuntimeExt<M: RtMessage>: ServiceHost<M> {
    /// Reads the service on `node` downcast to `T`. `None` when the node
    /// hosts no service or it is not a `T`.
    fn with_service<T: Any, R>(&self, node: NodeId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let mut f = Some(f);
        let mut out = None;
        self.with_service_any(node, &mut |any| {
            if let Some(t) = any.downcast_ref::<T>() {
                if let Some(f) = f.take() {
                    out = Some(f(t));
                }
            }
        });
        out
    }

    /// Mutates the service on `node` downcast to `T`.
    fn with_service_mut<T: Any, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let mut f = Some(f);
        let mut out = None;
        self.with_service_any_mut(node, &mut |any| {
            if let Some(t) = any.downcast_mut::<T>() {
                if let Some(f) = f.take() {
                    out = Some(f(t));
                }
            }
        });
        out
    }
}

impl<M: RtMessage, S: ServiceHost<M> + ?Sized> RuntimeExt<M> for S {}
