//! # weakset-runtime
//!
//! The execution-environment boundary for weak sets.
//!
//! Everything above the store protocol — `weakset-store`'s client,
//! `weakset`'s iterators, `weakset-gossip`'s anti-entropy rounds — runs
//! against the object-safe traits in this crate instead of calling the
//! simulator directly. Two backends implement them:
//!
//! * [`weakset_sim::world::World`] — the discrete-event simulator. It
//!   owns a virtual clock, delivers messages through a deterministic
//!   event queue, and hosts services inline on one thread. Every
//!   existing simulation, DST scenario, and bench keeps working
//!   unchanged: `&mut World<M>` coerces implicitly to
//!   `&mut dyn Runtime<M>`.
//! * [`threaded::ThreadedRuntime`] — real OS threads. Each node is a
//!   thread draining an in-process mpsc mailbox; the clock is wall time
//!   (`std::time::Instant`, reported in the same microsecond units as
//!   [`weakset_sim::time::SimTime`]); timers fire while the driving
//!   client sleeps or waits. Service handlers, read policies, figure
//!   semantics, and obs metrics are byte-for-byte the same code as on
//!   the simulator — that portability is checked by the cross-backend
//!   parity suite in the workspace root.
//!
//! ## Who owns what
//!
//! | concern   | sim backend                  | threaded backend                |
//! |-----------|------------------------------|---------------------------------|
//! | time      | event-queue virtual clock    | `Instant` since runtime start   |
//! | delivery  | ordered event queue          | per-node mpsc mailbox + thread  |
//! | timers    | scheduled events             | heap drained in `sleep`/`wait`  |
//! | services  | inline `HashMap` dispatch    | `Mutex` slot per node thread    |
//! | tracing   | world-owned span stack       | view-owned span stack           |
//!
//! See DESIGN.md ("Execution backends") for the full diagram.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod record;
pub mod sim_impl;
pub mod threaded;
pub mod traits;

pub use record::{RecEntry, RecEvent, RecOutcome, Recorder, Recording};
pub use traits::{
    Clock, Observe, RtMessage, RtTask, Runtime, RuntimeExt, ServiceHost, Spawner, TaskFn, Transport,
};

/// One-stop imports: every boundary trait, so `world.now()` etc. resolve
/// on `&mut dyn Runtime<M>` receivers.
pub mod prelude {
    // `Recorder` stays out of the prelude: the spec crate's computation
    // recorder owns that name in glob-import contexts. Reach the
    // boundary recorder as `weakset_runtime::Recorder`.
    pub use crate::record::{RecEvent, RecOutcome, Recording};
    pub use crate::threaded::ThreadedRuntime;
    pub use crate::traits::{
        Clock, Observe, RtMessage, RtTask, Runtime, RuntimeExt, ServiceHost, Spawner, TaskFn,
        Transport,
    };
}
