//! Recording the observable nondeterminism of a real-runtime run.
//!
//! The threaded backend is deliberately *not* reproducible: scheduling
//! is real OS concurrency. What a client observes of that
//! nondeterminism, though, crosses a narrow boundary — the [`crate::traits`]
//! methods. A [`Recorder`] hooked into
//! [`crate::threaded::ThreadedRuntime`] captures every boundary crossing
//! as a [`RecEntry`]: message departure order and payload hashes, rpc
//! outcomes with their observed stall times (the clock reads that
//! matter), async completion order (`wait_any` winners), timer-fire
//! order, spawn and reachability transitions. The resulting
//! [`Recording`] is a compact, schema-versioned log that `weakset-dst`
//! can replay through the deterministic simulator, pinning delivery to
//! the recorded interleaving and substituting the recorded failures —
//! which puts a real run in front of the conformance oracles, the
//! shrinker, and explain mode.
//!
//! Payloads are hashed ([`hash_debug`], FNV-1a over the `Debug`
//! rendering), not stored: replay re-executes the client against real
//! services, so it only needs to *verify* payloads, and a hash keeps
//! artifacts small and free of message-type serializers. Clock reads
//! are captured as per-event timestamps (`at_us`) plus observed stall
//! durations (`elapsed_us`) rather than as a stream of `now()` samples.

use std::fmt;
use std::sync::{Arc, Mutex};
use weakset_sim::time::SimTime;

/// Artifact schema version; bump on any breaking change to the log
/// grammar (mirrors the repro-artifact convention in `weakset-dst`).
pub const SCHEMA_VERSION: u64 = 1;

/// FNV-1a over a value's `Debug` rendering, without allocating the
/// rendering. Stable across backends because message `Debug` output
/// depends only on message content (node ids match when nodes are
/// created in the same order).
pub fn hash_debug<T: fmt::Debug>(v: &T) -> u64 {
    struct Fnv(u64);
    impl fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            for b in s.bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    let _ = fmt::write(&mut h, format_args!("{v:?}"));
    h.0
}

/// How a recorded rpc ended, payloads hashed. Mirrors
/// [`weakset_sim::net::NetError`] with raw node ids so the log is
/// self-contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecOutcome {
    /// The rpc returned a reply hashing to `reply_hash`.
    Ok {
        /// [`hash_debug`] of the reply message.
        reply_hash: u64,
    },
    /// The rpc failed with `NodeDown(node)`.
    NodeDown {
        /// Raw id of the down node.
        node: u32,
    },
    /// The rpc failed with `Unreachable { from, to }`.
    Unreachable {
        /// Raw id of the calling node.
        from: u32,
        /// Raw id of the unreachable node.
        to: u32,
    },
    /// The rpc timed out.
    Timeout,
}

impl RecOutcome {
    /// Classifies a transport result into its recorded form.
    pub fn of<M: fmt::Debug>(r: &Result<M, weakset_sim::net::NetError>) -> Self {
        use weakset_sim::net::NetError;
        match r {
            Result::Ok(reply) => RecOutcome::Ok {
                reply_hash: hash_debug(reply),
            },
            Err(NetError::NodeDown(n)) => RecOutcome::NodeDown { node: n.0 },
            Err(NetError::Unreachable { from, to }) => RecOutcome::Unreachable {
                from: from.0,
                to: to.0,
            },
            Err(NetError::Timeout) => RecOutcome::Timeout,
        }
    }

    /// The error this outcome stands for, or `None` for `Ok`.
    pub fn to_net_error(self) -> Option<weakset_sim::net::NetError> {
        use weakset_sim::net::NetError;
        use weakset_sim::node::NodeId;
        match self {
            RecOutcome::Ok { .. } => None,
            RecOutcome::NodeDown { node } => Some(NetError::NodeDown(NodeId(node))),
            RecOutcome::Unreachable { from, to } => Some(NetError::Unreachable {
                from: NodeId(from),
                to: NodeId(to),
            }),
            RecOutcome::Timeout => Some(NetError::Timeout),
        }
    }
}

/// One observable boundary crossing. Node ids are raw `NodeId.0`
/// values; node creation order is part of the log ([`RecEvent::AddNode`]),
/// so a replayer reconstructing the fleet in order gets identical ids.
#[derive(Clone, Debug, PartialEq)]
pub enum RecEvent {
    /// A node joined the fleet (in id order).
    AddNode {
        /// The node's registered name.
        name: String,
    },
    /// A service was installed on `node`.
    InstallService {
        /// Raw node id.
        node: u32,
    },
    /// A driver-emitted alignment marker: everything until the next
    /// `Region` belongs to the activity `label` names. Replay re-syncs
    /// on these, and the shrinker drops whole regions at a time.
    Region {
        /// The activity label (e.g. `setup.3.1`, `inv.12`).
        label: String,
    },
    /// A synchronous rpc and its observed outcome.
    Rpc {
        /// Raw id of the calling node.
        from: u32,
        /// Raw id of the target node.
        to: u32,
        /// [`hash_debug`] of the request message.
        req_hash: u64,
        /// How it ended.
        outcome: RecOutcome,
        /// Observed wall-clock stall, in microseconds — the clock read
        /// replay substitutes when the outcome is a failure.
        elapsed_us: u64,
    },
    /// An async send (including batched envelopes) and the token the
    /// caller got back.
    Send {
        /// Raw id of the calling node.
        from: u32,
        /// Raw id of the target node.
        to: u32,
        /// [`hash_debug`] of the message as sent (batches hash as their
        /// wrapped envelope).
        req_hash: u64,
        /// The raw reply token minted for the caller.
        token: u64,
    },
    /// A completed async reply was collected (informational; replay
    /// derives availability from pinned `WaitAny` winners).
    TookReply {
        /// The raw token collected.
        token: u64,
        /// How the reply ended.
        outcome: RecOutcome,
    },
    /// A `wait_any` returned: the winning raw token, or `None` on
    /// deadline.
    WaitAny {
        /// The completed token, if any.
        winner: Option<u64>,
        /// Observed wall-clock stall, in microseconds.
        elapsed_us: u64,
    },
    /// The client slept (informational).
    Sleep {
        /// Requested duration, in microseconds.
        us: u64,
    },
    /// A deferred task was scheduled (informational).
    SpawnIn {
        /// Delay until it is due, in microseconds.
        delay_us: u64,
        /// The task's label.
        label: String,
    },
    /// A due timer fired, in fire order.
    TimerFired {
        /// The fired task's label.
        label: String,
    },
    /// The route between two nodes was blocked or restored.
    SetReachable {
        /// One endpoint (raw id).
        a: u32,
        /// The other endpoint (raw id).
        b: u32,
        /// `true` restores the route, `false` blocks it.
        ok: bool,
    },
    /// A node was marked up or down.
    SetNodeUp {
        /// Raw node id.
        node: u32,
        /// The new liveness.
        up: bool,
    },
}

/// One timestamped log entry.
#[derive(Clone, Debug, PartialEq)]
pub struct RecEntry {
    /// Backend clock at the crossing, in microseconds since the run
    /// started.
    pub at_us: u64,
    /// What crossed the boundary.
    pub ev: RecEvent,
}

/// A complete, self-contained recording of one real-runtime run.
#[derive(Clone, Debug, PartialEq)]
pub struct Recording {
    /// Log grammar version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// The run seed (RNG streams derive from it on both backends).
    pub seed: u64,
    /// Whether shutdown reported hung nodes: the log is a valid prefix,
    /// not a complete run.
    pub truncated: bool,
    /// Node names in creation (= id) order.
    pub nodes: Vec<String>,
    /// The embedded workload description (a `weakset-dst` scenario in
    /// its RON text form) that drove the run; replay re-drives it.
    pub workload: String,
    /// The boundary-event log, in observation order.
    pub entries: Vec<RecEntry>,
}

struct RecInner {
    seed: u64,
    truncated: bool,
    nodes: Vec<String>,
    workload: String,
    entries: Vec<RecEntry>,
}

/// A cloneable handle appending to one shared log. Clones share the
/// log (a view cloned for another thread keeps recording into the same
/// recording); a `Mutex` serializes appends, so concurrent views record
/// in observation order.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Mutex<RecInner>>,
}

impl Recorder {
    /// An empty recording for a run seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(RecInner {
                seed,
                truncated: false,
                nodes: Vec::new(),
                workload: String::new(),
                entries: Vec::new(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Embeds the workload description (scenario RON) that drives the
    /// run, so the artifact replays without out-of-band context.
    pub fn set_workload(&self, ron: impl Into<String>) {
        self.lock().workload = ron.into();
    }

    /// Appends one boundary event observed at `at`.
    pub fn note(&self, at: SimTime, ev: RecEvent) {
        self.lock().entries.push(RecEntry {
            at_us: at.as_micros(),
            ev,
        });
    }

    /// Records a node joining the fleet (name order = id order).
    pub fn note_add_node(&self, at: SimTime, name: &str) {
        let mut g = self.lock();
        g.nodes.push(name.to_string());
        g.entries.push(RecEntry {
            at_us: at.as_micros(),
            ev: RecEvent::AddNode {
                name: name.to_string(),
            },
        });
    }

    /// Emits an alignment marker (see [`RecEvent::Region`]).
    pub fn region(&self, at: SimTime, label: &str) {
        self.note(
            at,
            RecEvent::Region {
                label: label.to_string(),
            },
        );
    }

    /// Marks the log as a shutdown-truncated prefix.
    pub fn mark_truncated(&self) {
        self.lock().truncated = true;
    }

    /// Number of entries recorded so far.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the recording (the recorder keeps accumulating).
    pub fn finish(&self) -> Recording {
        let g = self.lock();
        Recording {
            schema_version: SCHEMA_VERSION,
            seed: g.seed,
            truncated: g.truncated,
            nodes: g.nodes.clone(),
            workload: g.workload.clone(),
            entries: g.entries.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Serialization (RON-like, hand-rolled — same dialect as weakset-dst
// scenario artifacts, extended with quoted strings)
// ---------------------------------------------------------------------

fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
}

fn push_outcome(out: &mut String, o: &RecOutcome) {
    match *o {
        RecOutcome::Ok { reply_hash } => out.push_str(&format!("Ok(reply_hash: {reply_hash})")),
        RecOutcome::NodeDown { node } => out.push_str(&format!("NodeDown(node: {node})")),
        RecOutcome::Unreachable { from, to } => {
            out.push_str(&format!("Unreachable(from: {from}, to: {to})"));
        }
        RecOutcome::Timeout => out.push_str("Timeout"),
    }
}

fn push_event(out: &mut String, ev: &RecEvent) {
    match ev {
        RecEvent::AddNode { name } => {
            out.push_str("AddNode(name: ");
            push_str_lit(out, name);
            out.push(')');
        }
        RecEvent::InstallService { node } => {
            out.push_str(&format!("InstallService(node: {node})"));
        }
        RecEvent::Region { label } => {
            out.push_str("Region(label: ");
            push_str_lit(out, label);
            out.push(')');
        }
        RecEvent::Rpc {
            from,
            to,
            req_hash,
            outcome,
            elapsed_us,
        } => {
            out.push_str(&format!(
                "Rpc(from: {from}, to: {to}, req_hash: {req_hash}, outcome: "
            ));
            push_outcome(out, outcome);
            out.push_str(&format!(", elapsed_us: {elapsed_us})"));
        }
        RecEvent::Send {
            from,
            to,
            req_hash,
            token,
        } => {
            out.push_str(&format!(
                "Send(from: {from}, to: {to}, req_hash: {req_hash}, token: {token})"
            ));
        }
        RecEvent::TookReply { token, outcome } => {
            out.push_str(&format!("TookReply(token: {token}, outcome: "));
            push_outcome(out, outcome);
            out.push(')');
        }
        RecEvent::WaitAny { winner, elapsed_us } => {
            match winner {
                Some(t) => out.push_str(&format!("WaitAny(winner: Some({t})")),
                None => out.push_str("WaitAny(winner: None"),
            }
            out.push_str(&format!(", elapsed_us: {elapsed_us})"));
        }
        RecEvent::Sleep { us } => out.push_str(&format!("Sleep(us: {us})")),
        RecEvent::SpawnIn { delay_us, label } => {
            out.push_str(&format!("SpawnIn(delay_us: {delay_us}, label: "));
            push_str_lit(out, label);
            out.push(')');
        }
        RecEvent::TimerFired { label } => {
            out.push_str("TimerFired(label: ");
            push_str_lit(out, label);
            out.push(')');
        }
        RecEvent::SetReachable { a, b, ok } => {
            out.push_str(&format!("SetReachable(a: {a}, b: {b}, ok: {ok})"));
        }
        RecEvent::SetNodeUp { node, up } => {
            out.push_str(&format!("SetNodeUp(node: {node}, up: {up})"));
        }
    }
}

impl Recording {
    /// Renders the recording in its artifact text form.
    pub fn to_ron(&self) -> String {
        let mut s = String::new();
        s.push_str("Recording(\n");
        s.push_str(&format!("    schema_version: {},\n", self.schema_version));
        s.push_str(&format!("    seed: {},\n", self.seed));
        s.push_str(&format!("    truncated: {},\n", self.truncated));
        s.push_str("    nodes: [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            push_str_lit(&mut s, n);
        }
        s.push_str("],\n    workload: ");
        push_str_lit(&mut s, &self.workload);
        s.push_str(",\n    entries: [\n");
        for e in &self.entries {
            s.push_str(&format!("        (at_us: {}, ev: ", e.at_us));
            push_event(&mut s, &e.ev);
            s.push_str("),\n");
        }
        s.push_str("    ],\n)\n");
        s
    }

    /// Parses the artifact text form (fields in [`Recording::to_ron`]
    /// order; `// ...` comments are ignored).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax problem,
    /// including an unsupported `schema_version`.
    pub fn from_ron(text: &str) -> Result<Recording, String> {
        let tokens = tokenize(text)?;
        let mut p = Parser { tokens, pos: 0 };
        let r = p.recording()?;
        p.expect_end()?;
        Ok(r)
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
}

fn tokenize(text: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for nc in chars.by_ref() {
                        if nc == '\n' {
                            break;
                        }
                    }
                } else {
                    return Err("stray '/'".into());
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            other => return Err(format!("bad escape {other:?}")),
                        },
                        Some(other) => s.push(other),
                        None => return Err("unterminated string".into()),
                    }
                }
                out.push(Tok::Str(s));
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '[' => {
                chars.next();
                out.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Tok::RBracket);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            ':' => {
                chars.next();
                out.push(Tok::Colon);
            }
            '0'..='9' => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v as u64))
                            .ok_or("number overflows u64")?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut id = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_ascii_alphanumeric() || a == '_' {
                        id.push(a);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(id));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn next(&mut self) -> Result<Tok, String> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(t)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn expect(&mut self, want: Tok) -> Result<(), String> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected {want:?}, got {got:?}"))
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(format!("trailing input at token {}", self.pos))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    fn num(&mut self) -> Result<u64, String> {
        match self.next()? {
            Tok::Num(n) => Ok(n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        match self.next()? {
            Tok::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn keyword(&mut self, want: &str) -> Result<(), String> {
        let got = self.ident()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected field '{want}', got '{got}'"))
        }
    }

    /// `name: <num>` followed by a comma.
    fn num_field(&mut self, name: &str) -> Result<u64, String> {
        self.keyword(name)?;
        self.expect(Tok::Colon)?;
        let n = self.num()?;
        self.expect(Tok::Comma)?;
        Ok(n)
    }

    /// `name: <num>` without the trailing comma (closing-paren position).
    fn num_key(&mut self, name: &str) -> Result<u64, String> {
        self.keyword(name)?;
        self.expect(Tok::Colon)?;
        self.num()
    }

    fn bool_value(&mut self) -> Result<bool, String> {
        match self.ident()?.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("expected bool, got '{other}'")),
        }
    }

    fn comma_sep<T>(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<Vec<T>, String> {
        self.expect(Tok::LBracket)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBracket) {
            out.push(item(self)?);
            if self.peek() == Some(&Tok::Comma) {
                self.next()?;
            }
        }
        self.expect(Tok::RBracket)?;
        Ok(out)
    }

    fn outcome(&mut self) -> Result<RecOutcome, String> {
        match self.ident()?.as_str() {
            "Ok" => {
                self.expect(Tok::LParen)?;
                let reply_hash = self.num_key("reply_hash")?;
                self.expect(Tok::RParen)?;
                Ok(RecOutcome::Ok { reply_hash })
            }
            "NodeDown" => {
                self.expect(Tok::LParen)?;
                let node = self.num_key("node")? as u32;
                self.expect(Tok::RParen)?;
                Ok(RecOutcome::NodeDown { node })
            }
            "Unreachable" => {
                self.expect(Tok::LParen)?;
                let from = self.num_field("from")? as u32;
                let to = self.num_key("to")? as u32;
                self.expect(Tok::RParen)?;
                Ok(RecOutcome::Unreachable { from, to })
            }
            "Timeout" => Ok(RecOutcome::Timeout),
            other => Err(format!("unknown outcome '{other}'")),
        }
    }

    fn event(&mut self) -> Result<RecEvent, String> {
        let tag = self.ident()?;
        match tag.as_str() {
            "AddNode" => {
                self.expect(Tok::LParen)?;
                self.keyword("name")?;
                self.expect(Tok::Colon)?;
                let name = self.string()?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::AddNode { name })
            }
            "InstallService" => {
                self.expect(Tok::LParen)?;
                let node = self.num_key("node")? as u32;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::InstallService { node })
            }
            "Region" => {
                self.expect(Tok::LParen)?;
                self.keyword("label")?;
                self.expect(Tok::Colon)?;
                let label = self.string()?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::Region { label })
            }
            "Rpc" => {
                self.expect(Tok::LParen)?;
                let from = self.num_field("from")? as u32;
                let to = self.num_field("to")? as u32;
                let req_hash = self.num_field("req_hash")?;
                self.keyword("outcome")?;
                self.expect(Tok::Colon)?;
                let outcome = self.outcome()?;
                self.expect(Tok::Comma)?;
                let elapsed_us = self.num_key("elapsed_us")?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::Rpc {
                    from,
                    to,
                    req_hash,
                    outcome,
                    elapsed_us,
                })
            }
            "Send" => {
                self.expect(Tok::LParen)?;
                let from = self.num_field("from")? as u32;
                let to = self.num_field("to")? as u32;
                let req_hash = self.num_field("req_hash")?;
                let token = self.num_key("token")?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::Send {
                    from,
                    to,
                    req_hash,
                    token,
                })
            }
            "TookReply" => {
                self.expect(Tok::LParen)?;
                let token = self.num_field("token")?;
                self.keyword("outcome")?;
                self.expect(Tok::Colon)?;
                let outcome = self.outcome()?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::TookReply { token, outcome })
            }
            "WaitAny" => {
                self.expect(Tok::LParen)?;
                self.keyword("winner")?;
                self.expect(Tok::Colon)?;
                let winner = match self.ident()?.as_str() {
                    "Some" => {
                        self.expect(Tok::LParen)?;
                        let t = self.num()?;
                        self.expect(Tok::RParen)?;
                        Some(t)
                    }
                    "None" => None,
                    other => return Err(format!("expected Some/None, got '{other}'")),
                };
                self.expect(Tok::Comma)?;
                let elapsed_us = self.num_key("elapsed_us")?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::WaitAny { winner, elapsed_us })
            }
            "Sleep" => {
                self.expect(Tok::LParen)?;
                let us = self.num_key("us")?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::Sleep { us })
            }
            "SpawnIn" => {
                self.expect(Tok::LParen)?;
                let delay_us = self.num_field("delay_us")?;
                self.keyword("label")?;
                self.expect(Tok::Colon)?;
                let label = self.string()?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::SpawnIn { delay_us, label })
            }
            "TimerFired" => {
                self.expect(Tok::LParen)?;
                self.keyword("label")?;
                self.expect(Tok::Colon)?;
                let label = self.string()?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::TimerFired { label })
            }
            "SetReachable" => {
                self.expect(Tok::LParen)?;
                let a = self.num_field("a")? as u32;
                let b = self.num_field("b")? as u32;
                self.keyword("ok")?;
                self.expect(Tok::Colon)?;
                let ok = self.bool_value()?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::SetReachable { a, b, ok })
            }
            "SetNodeUp" => {
                self.expect(Tok::LParen)?;
                let node = self.num_field("node")? as u32;
                self.keyword("up")?;
                self.expect(Tok::Colon)?;
                let up = self.bool_value()?;
                self.expect(Tok::RParen)?;
                Ok(RecEvent::SetNodeUp { node, up })
            }
            other => Err(format!("unknown event '{other}'")),
        }
    }

    fn recording(&mut self) -> Result<Recording, String> {
        self.keyword("Recording")?;
        self.expect(Tok::LParen)?;
        let schema_version = self.num_field("schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let seed = self.num_field("seed")?;
        self.keyword("truncated")?;
        self.expect(Tok::Colon)?;
        let truncated = self.bool_value()?;
        self.expect(Tok::Comma)?;
        self.keyword("nodes")?;
        self.expect(Tok::Colon)?;
        let nodes = self.comma_sep(Parser::string)?;
        self.expect(Tok::Comma)?;
        self.keyword("workload")?;
        self.expect(Tok::Colon)?;
        let workload = self.string()?;
        self.expect(Tok::Comma)?;
        self.keyword("entries")?;
        self.expect(Tok::Colon)?;
        let entries = self.comma_sep(|p| {
            p.expect(Tok::LParen)?;
            let at_us = p.num_field("at_us")?;
            p.keyword("ev")?;
            p.expect(Tok::Colon)?;
            let ev = p.event()?;
            p.expect(Tok::RParen)?;
            Ok(RecEntry { at_us, ev })
        })?;
        self.expect(Tok::Comma)?;
        self.expect(Tok::RParen)?;
        Ok(Recording {
            schema_version,
            seed,
            truncated,
            nodes,
            workload,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recording {
        Recording {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            truncated: true,
            nodes: vec!["client".into(), "s0".into()],
            workload: "Scenario(\n    seed: 1,\n)\n".into(),
            entries: vec![
                RecEntry {
                    at_us: 0,
                    ev: RecEvent::AddNode {
                        name: "client".into(),
                    },
                },
                RecEntry {
                    at_us: 3,
                    ev: RecEvent::InstallService { node: 1 },
                },
                RecEntry {
                    at_us: 5,
                    ev: RecEvent::Region {
                        label: "setup.1.0".into(),
                    },
                },
                RecEntry {
                    at_us: 9,
                    ev: RecEvent::Rpc {
                        from: 0,
                        to: 1,
                        req_hash: u64::MAX,
                        outcome: RecOutcome::Ok { reply_hash: 7 },
                        elapsed_us: 1200,
                    },
                },
                RecEntry {
                    at_us: 11,
                    ev: RecEvent::Rpc {
                        from: 0,
                        to: 1,
                        req_hash: 1,
                        outcome: RecOutcome::Unreachable { from: 0, to: 1 },
                        elapsed_us: 80,
                    },
                },
                RecEntry {
                    at_us: 12,
                    ev: RecEvent::Send {
                        from: 0,
                        to: 1,
                        req_hash: 2,
                        token: 5,
                    },
                },
                RecEntry {
                    at_us: 13,
                    ev: RecEvent::WaitAny {
                        winner: Some(5),
                        elapsed_us: 900,
                    },
                },
                RecEntry {
                    at_us: 14,
                    ev: RecEvent::TookReply {
                        token: 5,
                        outcome: RecOutcome::Timeout,
                    },
                },
                RecEntry {
                    at_us: 15,
                    ev: RecEvent::WaitAny {
                        winner: None,
                        elapsed_us: 5000,
                    },
                },
                RecEntry {
                    at_us: 16,
                    ev: RecEvent::Sleep { us: 5000 },
                },
                RecEntry {
                    at_us: 17,
                    ev: RecEvent::SpawnIn {
                        delay_us: 100,
                        label: "gossip.round".into(),
                    },
                },
                RecEntry {
                    at_us: 18,
                    ev: RecEvent::TimerFired {
                        label: "gossip.round".into(),
                    },
                },
                RecEntry {
                    at_us: 19,
                    ev: RecEvent::SetReachable {
                        a: 0,
                        b: 1,
                        ok: false,
                    },
                },
                RecEntry {
                    at_us: 20,
                    ev: RecEvent::SetNodeUp { node: 1, up: false },
                },
                RecEntry {
                    at_us: 21,
                    ev: RecEvent::Rpc {
                        from: 0,
                        to: 1,
                        req_hash: 3,
                        outcome: RecOutcome::NodeDown { node: 1 },
                        elapsed_us: 10,
                    },
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let r = sample();
        let text = r.to_ron();
        let back = Recording::from_ron(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn round_trips_empty() {
        let r = Recording {
            nodes: Vec::new(),
            workload: String::new(),
            entries: Vec::new(),
            truncated: false,
            ..sample()
        };
        assert_eq!(Recording::from_ron(&r.to_ron()).unwrap(), r);
    }

    #[test]
    fn comments_and_escapes_survive() {
        let mut text = String::from("// recording artifact\n");
        let r = Recording {
            nodes: vec!["we\"ird\\name\n".into()],
            ..sample()
        };
        text.push_str(&r.to_ron());
        assert_eq!(Recording::from_ron(&text).unwrap(), r);
    }

    #[test]
    fn rejects_future_schema_and_garbage() {
        let bumped = sample().to_ron().replace(
            &format!("schema_version: {SCHEMA_VERSION}"),
            "schema_version: 999",
        );
        let err = Recording::from_ron(&bumped).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        assert!(Recording::from_ron("").is_err());
        assert!(Recording::from_ron("Recording(seed: nope)").is_err());
    }

    #[test]
    fn recorder_accumulates_and_snapshots() {
        let rec = Recorder::new(9);
        assert!(rec.is_empty());
        rec.note_add_node(SimTime::from_micros(1), "client");
        rec.region(SimTime::from_micros(2), "start");
        rec.set_workload("Scenario()");
        let view = rec.clone();
        view.note(SimTime::from_micros(3), RecEvent::Sleep { us: 10 });
        let snap = rec.finish();
        assert_eq!(snap.seed, 9);
        assert!(!snap.truncated);
        assert_eq!(snap.nodes, vec!["client".to_string()]);
        assert_eq!(snap.entries.len(), 3);
        rec.mark_truncated();
        assert!(rec.finish().truncated);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn debug_hashes_are_stable_and_content_sensitive() {
        #[derive(Debug)]
        #[allow(dead_code)] // fields are read through the derived Debug
        struct P(u64, &'static str);
        assert_eq!(hash_debug(&P(1, "a")), hash_debug(&P(1, "a")));
        assert_ne!(hash_debug(&P(1, "a")), hash_debug(&P(2, "a")));
        assert_ne!(hash_debug(&P(1, "a")), hash_debug(&P(1, "b")));
    }

    #[test]
    fn outcomes_map_to_net_errors() {
        use weakset_sim::net::NetError;
        use weakset_sim::node::NodeId;
        let ok: Result<u64, NetError> = Ok(7);
        assert!(matches!(RecOutcome::of(&ok), RecOutcome::Ok { .. }));
        assert_eq!(RecOutcome::of(&ok).to_net_error(), None);
        let down: Result<u64, NetError> = Err(NetError::NodeDown(NodeId(3)));
        assert_eq!(
            RecOutcome::of(&down).to_net_error(),
            Some(NetError::NodeDown(NodeId(3)))
        );
        let un: Result<u64, NetError> = Err(NetError::Unreachable {
            from: NodeId(0),
            to: NodeId(2),
        });
        assert_eq!(
            RecOutcome::of(&un).to_net_error(),
            Some(NetError::Unreachable {
                from: NodeId(0),
                to: NodeId(2)
            })
        );
        let t: Result<u64, NetError> = Err(NetError::Timeout);
        assert_eq!(RecOutcome::of(&t).to_net_error(), Some(NetError::Timeout));
    }
}
