//! The real-clock backend: one OS thread per node, in-process mpsc
//! mailboxes, wall time reported in [`SimTime`] microseconds.
//!
//! ## Shape
//!
//! A [`ThreadedRuntime`] value is a *view* onto a shared node fleet.
//! [`ThreadedRuntime::add_node`] spawns a thread that drains that
//! node's mailbox and runs its installed [`Service`] — exactly the
//! handler type the simulator hosts, which is what makes server code
//! portable. Cloning a view (for concurrent client load) shares the
//! fleet but gives the clone its own completion channel, token space,
//! timer heap, metrics, and span stack, so views never contend.
//!
//! ## Time and timers
//!
//! `now()` is `Instant::elapsed` since the runtime was created,
//! truncated to microseconds, so metrics and conformance checks are
//! unit-compatible with simulator runs. Deferred tasks
//! ([`Spawner::spawn_in`]) live on the *view's* timer heap and fire
//! only while that view is inside `sleep`, `rpc`, or `wait_any` — the
//! threaded analogue of the simulator firing tasks while the client
//! pumps the event loop.
//!
//! ## Shutdown
//!
//! Node threads never spin: they block on `recv_timeout` and re-check
//! the fleet-wide stop flag every slice, so they exit within ~20ms of
//! either [`ThreadedRuntime::shutdown`] or the last view being dropped
//! (which disconnects every mailbox). `shutdown` polls with a hard
//! deadline and reports the nodes that failed to stop instead of
//! hanging the caller.
//!
//! ## Live telemetry
//!
//! A running fleet is observable without touching the contention-free
//! view design. [`ThreadedRuntime::attach_telemetry`] registers the
//! view as a publisher on a shared [`TelemetryHub`]: on a configurable
//! cadence (checked at the natural pump points — rpc completion,
//! sleep, waits) the view re-publishes its whole private registry into
//! its hub slot, so a scrape of the hub is exact up to one cadence of
//! staleness per view and views still never share a metrics lock.
//! Mailbox backlog and queue depth per node are lock-free atomic cells
//! sampled by the hub at scrape time. An attached [`FlightRecorder`]
//! keeps the last N boundary crossings (rpc outcomes, sends, timer
//! fires, fault transitions) and is dumped on a hung shutdown; an
//! attached [`Watchdog`] flags rpcs and waits that outlive a deadline.

use crate::record::{hash_debug, RecEvent, RecOutcome, Recorder};
use crate::traits::{Clock, Observe, RtMessage, RtTask, ServiceHost, Spawner, Transport};
use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use weakset_obs::telemetry::{self, FlightRecorder, HubPublisher, TelemetryHub, Watchdog};
use weakset_sim::metrics::{EventSink, Metrics, SpanId, TraceContext};
use weakset_sim::net::NetError;
use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::world::{ReplyToken, Service, ServiceCtx};

/// How long a node thread blocks on its mailbox before re-checking the
/// stop flag. Bounds both shutdown latency and idle wakeup rate.
const MAILBOX_SLICE: Duration = Duration::from_millis(20);

/// How long a waiting client blocks on its completion channel per
/// check of timers and deadlines.
const WAIT_SLICE: Duration = Duration::from_millis(2);

/// One request crossing a node's mailbox, with the channel its reply
/// should come back on.
struct Envelope<M> {
    from: NodeId,
    msg: M,
    token: u64,
    reply: Sender<(u64, Result<M, NetError>)>,
}

/// Lock-free mailbox occupancy cells, shared by the posting views and
/// the node's own thread and sampled live by the telemetry hub.
/// `backlog` counts envelopes posted but not yet picked up; `depth`
/// counts envelopes posted but not yet finished (backlog plus the
/// request currently inside the handler). The `*_max` cells are
/// monotone high-water marks.
#[derive(Clone, Default)]
struct MailboxStats {
    backlog: Arc<AtomicU64>,
    backlog_max: Arc<AtomicU64>,
    depth: Arc<AtomicU64>,
    depth_max: Arc<AtomicU64>,
}

impl MailboxStats {
    /// An envelope entered the mailbox.
    fn posted(&self) {
        let b = self.backlog.fetch_add(1, Ordering::Relaxed) + 1;
        self.backlog_max.fetch_max(b, Ordering::Relaxed);
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_max.fetch_max(d, Ordering::Relaxed);
    }

    /// The node thread picked an envelope up (it may still be handling).
    fn picked_up(&self) {
        saturating_dec(&self.backlog);
    }

    /// The envelope is fully disposed of (replied, eaten, or dropped).
    fn finished(&self) {
        saturating_dec(&self.depth);
    }
}

/// Decrements without wrapping below zero (posts and drains race by
/// design; a transient under-count must not underflow to u64::MAX).
fn saturating_dec(cell: &AtomicU64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while cur > 0 {
        match cell.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Registers one node's mailbox cells as live hub gauges, sampled at
/// scrape time (no publish round-trip, no lock on the node path).
fn register_node_gauges(hub: &TelemetryHub, name: &str, stats: &MailboxStats) {
    hub.register_live_gauge(
        &telemetry::mailbox_backlog(name),
        Arc::clone(&stats.backlog),
    );
    hub.register_live_gauge(
        &telemetry::mailbox_backlog_max(name),
        Arc::clone(&stats.backlog_max),
    );
    hub.register_live_gauge(&telemetry::queue_depth(name), Arc::clone(&stats.depth));
    hub.register_live_gauge(
        &telemetry::queue_depth_max(name),
        Arc::clone(&stats.depth_max),
    );
}

/// The per-node state a view needs to reach a node. The pieces a node's
/// own thread needs (`up`, `slot`, the stop flag) are `Arc`-cloned into
/// it at spawn time — the thread deliberately does NOT hold the
/// [`Shared`] fleet, so dropping the last view drops every mailbox
/// sender and the threads drain out on their own.
struct NodeHandle<M> {
    tx: Sender<Envelope<M>>,
    up: Arc<AtomicBool>,
    slot: Arc<Mutex<Option<Box<dyn Service<M> + Send>>>>,
    join: Option<JoinHandle<()>>,
    name: String,
    stats: MailboxStats,
}

/// Fleet state shared by every view.
struct Shared<M> {
    seed: u64,
    start: Instant,
    stop: Arc<AtomicBool>,
    next_node: AtomicU32,
    nodes: Mutex<HashMap<NodeId, NodeHandle<M>>>,
    /// Symmetric blocked pairs, stored normalized `(min, max)`.
    blocked: Mutex<HashSet<(NodeId, NodeId)>>,
}

/// A deferred task on a view's timer heap; earliest `(at, seq)` pops
/// first.
struct TimerEntry<M> {
    at: SimTime,
    seq: u64,
    task: Box<dyn RtTask<M>>,
}

impl<M> PartialEq for TimerEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for TimerEntry<M> {}

impl<M> PartialOrd for TimerEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for TimerEntry<M> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One view's hookup to the live telemetry plane (see
/// [`ThreadedRuntime::attach_telemetry`]).
struct RtTelemetry {
    publisher: HubPublisher,
    hub: TelemetryHub,
}

/// The OS-thread execution environment. See the module docs for the
/// view/fleet split.
pub struct ThreadedRuntime<M: RtMessage> {
    shared: Arc<Shared<M>>,
    comp_tx: Sender<(u64, Result<M, NetError>)>,
    comp_rx: Receiver<(u64, Result<M, NetError>)>,
    completed: HashMap<u64, Result<M, NetError>>,
    next_token: u64,
    timers: BinaryHeap<TimerEntry<M>>,
    timer_seq: u64,
    metrics: Metrics,
    events: EventSink,
    ctx: Vec<TraceContext>,
    recorder: Option<Recorder>,
    telemetry: Option<RtTelemetry>,
    flight: Option<FlightRecorder>,
    watchdog: Option<Watchdog>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The body of one node's thread: drain the mailbox, run the installed
/// service, reply. Holds only the `Arc` pieces it needs, never the
/// fleet, so channel disconnection is a reliable exit signal.
#[allow(clippy::too_many_arguments)]
fn node_loop<M: RtMessage>(
    rx: Receiver<Envelope<M>>,
    stop: Arc<AtomicBool>,
    up: Arc<AtomicBool>,
    slot: Arc<Mutex<Option<Box<dyn Service<M> + Send>>>>,
    seed: u64,
    start: Instant,
    node: NodeId,
    name: String,
    stats: MailboxStats,
) {
    let mut rng = SimRng::for_label(seed, &format!("svc.{name}"));
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match rx.recv_timeout(MAILBOX_SLICE) {
            Ok(env) => {
                stats.picked_up();
                if stop.load(Ordering::Relaxed) {
                    stats.finished();
                    break;
                }
                if !up.load(Ordering::Relaxed) {
                    // A crashed node eats its mail; the caller times out,
                    // matching the simulator's crashed-node behavior.
                    stats.finished();
                    continue;
                }
                let mut guard = lock(&slot);
                if let Some(svc) = guard.as_mut() {
                    let now = SimTime::from_micros(start.elapsed().as_micros() as u64);
                    let mut ctx = ServiceCtx {
                        now,
                        node,
                        rng: &mut rng,
                    };
                    let reply = svc.handle(&mut ctx, env.from, env.msg);
                    // Decrement before replying: a caller that sees the
                    // reply must not still see the op in the queue.
                    stats.finished();
                    // A dead receiver just means the requesting view is
                    // gone; nothing to do with the reply.
                    let _ = env.reply.send((env.token, Ok(reply)));
                } else {
                    // No service installed yet: drop the request, the
                    // caller times out — same as the simulator's
                    // service-less node.
                    stats.finished();
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

impl<M: RtMessage> ThreadedRuntime<M> {
    /// A fresh fleet with no nodes. `seed` labels the deterministic RNG
    /// streams handed to services and clients (scheduling itself is
    /// real-concurrent, so runs are *not* reproducible — use the
    /// simulator for that).
    pub fn new(seed: u64) -> Self {
        let (comp_tx, comp_rx) = mpsc::channel();
        ThreadedRuntime {
            shared: Arc::new(Shared {
                seed,
                start: Instant::now(),
                stop: Arc::new(AtomicBool::new(false)),
                next_node: AtomicU32::new(0),
                nodes: Mutex::new(HashMap::new()),
                blocked: Mutex::new(HashSet::new()),
            }),
            comp_tx,
            comp_rx,
            completed: HashMap::new(),
            next_token: 0,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            metrics: Metrics::new(),
            events: EventSink::new(),
            ctx: Vec::new(),
            recorder: None,
            telemetry: None,
            flight: None,
            watchdog: None,
        }
    }

    /// Hooks a [`Recorder`] into this view: from now on every boundary
    /// crossing (rpcs, sends, waits, timer fires, reachability and
    /// liveness transitions) is appended to the shared log. Views cloned
    /// *after* this call inherit the same recorder; a shutdown that
    /// reports hung nodes marks the recording truncated.
    pub fn attach_recorder(&mut self, rec: Recorder) {
        self.recorder = Some(rec);
    }

    /// The attached recorder, when one is hooked in.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Appends one event when a recorder is attached.
    fn note(&self, ev: RecEvent) {
        if let Some(rec) = &self.recorder {
            rec.note(Clock::now(self), ev);
        }
    }

    /// Hooks this view into a live [`TelemetryHub`]: the view becomes a
    /// publisher and re-publishes its private registry into its hub
    /// slot whenever at least `cadence` has elapsed, checked at the
    /// natural pump points (rpc completion, sleep, waits). Scrapes of
    /// the hub therefore lag each view by at most one cadence — the
    /// bounded-staleness trade that keeps views lock-free between
    /// publishes. Every node's mailbox-backlog and queue-depth cells
    /// (current and high-water) are registered as live gauges, sampled
    /// at scrape time with no publish round-trip. Views cloned *after*
    /// this call inherit the hub with their own publisher slot.
    pub fn attach_telemetry(&mut self, hub: TelemetryHub, cadence: Duration) {
        for h in lock(&self.shared.nodes).values() {
            register_node_gauges(&hub, &h.name, &h.stats);
        }
        self.telemetry = Some(RtTelemetry {
            publisher: hub.register(cadence),
            hub,
        });
    }

    /// The hub this view publishes into, when telemetry is attached.
    pub fn telemetry_hub(&self) -> Option<&TelemetryHub> {
        self.telemetry.as_ref().map(|t| &t.hub)
    }

    /// Hooks a [`FlightRecorder`] into this view: every boundary
    /// crossing (rpc outcomes, sends, timer fires, liveness and
    /// reachability transitions) is appended to the shared ring, and a
    /// shutdown that reports hung nodes dumps it. Clones made after
    /// this call share the ring.
    pub fn attach_flight_recorder(&mut self, flight: FlightRecorder) {
        self.flight = Some(flight);
    }

    /// The attached flight recorder, when one is hooked in.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Hooks a slow-op [`Watchdog`] into this view: rpcs and waits are
    /// registered as in-flight ops, so ones that outlive the watchdog's
    /// deadline are flagged (`watchdog.slow_op`) while still running.
    /// Clones made after this call share the watchdog.
    pub fn attach_watchdog(&mut self, watchdog: Watchdog) {
        self.watchdog = Some(watchdog);
    }

    /// Appends one flight-ring entry when a recorder is attached.
    fn flight_note(&self, node: &str, kind: &str, detail: &str) {
        if let Some(fl) = &self.flight {
            fl.record(Clock::now(self).as_micros(), node, kind, detail);
        }
    }

    /// Publishes this view's registry into the hub if its cadence is
    /// due. Costs one `Instant::now` when telemetry is attached,
    /// nothing otherwise.
    fn maybe_publish_telemetry(&mut self) {
        if let Some(t) = &mut self.telemetry {
            t.publisher.maybe_publish(&self.metrics);
        }
    }

    /// Publishes this view's registry unconditionally (shutdown, drop,
    /// and end-of-worker flushes — the readings must not be one cadence
    /// stale when the view stops existing).
    pub fn flush_telemetry(&mut self) {
        if let Some(t) = &mut self.telemetry {
            t.publisher.publish(&self.metrics);
        }
    }

    /// Closes every span still open on this view's sink (the
    /// [`EventSink::finish`] unclosed ledger), returning their names.
    /// Each unclosed span is logged with its kind, detail, and this
    /// view's owning thread, and counted into `trace.unclosed_spans` —
    /// report-only: unbalanced instrumentation is surfaced, never
    /// swallowed, but does not fail the run.
    pub fn finish_spans(&mut self) -> Vec<String> {
        let at = Clock::now(self).as_micros();
        let unclosed = self.events.finish(at);
        if unclosed.is_empty() {
            return Vec::new();
        }
        let names: Vec<String> = unclosed
            .iter()
            .map(|id| {
                self.events
                    .events()
                    .iter()
                    .find(|e| {
                        e.span == Some(*id) && e.kind != "span.end" && e.kind != "span.unclosed"
                    })
                    .map(|e| {
                        if e.detail.is_empty() {
                            e.kind.clone()
                        } else {
                            format!("{} ({})", e.kind, e.detail)
                        }
                    })
                    .unwrap_or_else(|| id.to_string())
            })
            .collect();
        self.metrics
            .add(telemetry::UNCLOSED_SPANS, names.len() as u64);
        let owner = thread::current().name().unwrap_or("?").to_string();
        for name in &names {
            eprintln!("unclosed span at shutdown on {owner}: {name}");
        }
        self.flush_telemetry();
        names
    }

    /// Splits rpc failures by cause on top of the total: a live
    /// dashboard must distinguish a partition (`unreachable`) from a
    /// slow peer (`timeout`) from a dead one (`closed`).
    fn note_rpc_failed(&mut self, err: &NetError) {
        self.metrics.incr("rpc.failed");
        let cause = match err {
            NetError::Unreachable { .. } => telemetry::RPC_FAILED_UNREACHABLE,
            NetError::Timeout => telemetry::RPC_FAILED_TIMEOUT,
            NetError::NodeDown(_) => telemetry::RPC_FAILED_CLOSED,
        };
        self.metrics.incr(cause);
    }

    /// Adds a node and spawns its mailbox thread (with no service yet —
    /// install one with [`ServiceHost::install_service`]). Client-only
    /// nodes need this too: the transport refuses to send *from* an
    /// unknown node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let node = NodeId(self.shared.next_node.fetch_add(1, Ordering::SeqCst));
        let (tx, rx) = mpsc::channel();
        let up = Arc::new(AtomicBool::new(true));
        let slot: Arc<Mutex<Option<Box<dyn Service<M> + Send>>>> = Arc::new(Mutex::new(None));
        let stats = MailboxStats::default();
        let join = thread::Builder::new()
            .name(format!("weakset-node-{name}"))
            .spawn({
                let stop = Arc::clone(&self.shared.stop);
                let up = Arc::clone(&up);
                let slot = Arc::clone(&slot);
                let seed = self.shared.seed;
                let start = self.shared.start;
                let name = name.clone();
                let stats = stats.clone();
                move || node_loop(rx, stop, up, slot, seed, start, node, name, stats)
            })
            .expect("spawn node thread");
        if let Some(t) = &self.telemetry {
            register_node_gauges(&t.hub, &name, &stats);
        }
        lock(&self.shared.nodes).insert(
            node,
            NodeHandle {
                tx,
                up,
                slot,
                join: Some(join),
                name: name.clone(),
                stats,
            },
        );
        if let Some(rec) = &self.recorder {
            rec.note_add_node(Clock::now(self), &name);
        }
        node
    }

    /// The node's registered name, when it exists.
    pub fn node_name(&self, node: NodeId) -> Option<String> {
        lock(&self.shared.nodes).get(&node).map(|h| h.name.clone())
    }

    /// Marks a node up or down. A down node eats incoming mail (callers
    /// time out) and the transport fast-fails new requests to it.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        let mut name = node.to_string();
        if let Some(h) = lock(&self.shared.nodes).get(&node) {
            h.up.store(up, Ordering::SeqCst);
            name.clone_from(&h.name);
        }
        self.note(RecEvent::SetNodeUp { node: node.0, up });
        self.flight_note(&name, "fault", if up { "node up" } else { "node down" });
    }

    /// Crashes a node (alias for `set_node_up(node, false)`).
    pub fn crash(&mut self, node: NodeId) {
        self.set_node_up(node, false);
    }

    /// Blocks or restores the (symmetric) route between two nodes.
    pub fn set_reachable(&mut self, a: NodeId, b: NodeId, ok: bool) {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        {
            let mut blocked = lock(&self.shared.blocked);
            if ok {
                blocked.remove(&key);
            } else {
                blocked.insert(key);
            }
        }
        self.note(RecEvent::SetReachable { a: a.0, b: b.0, ok });
        self.flight_note(
            &format!("{a}<->{b}"),
            "fault",
            if ok {
                "route restored"
            } else {
                "route blocked"
            },
        );
    }

    /// Stops every node thread, waiting up to `timeout`. Returns the
    /// nodes that failed to exit in time (sorted), so a hung handler
    /// fails the test instead of hanging it.
    pub fn shutdown(&mut self, timeout: Duration) -> Result<(), Vec<NodeId>> {
        self.shared.stop.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        loop {
            let hung: Vec<NodeId> = {
                let nodes = lock(&self.shared.nodes);
                let mut hung: Vec<NodeId> = nodes
                    .iter()
                    .filter(|(_, h)| h.join.as_ref().is_some_and(|j| !j.is_finished()))
                    .map(|(n, _)| *n)
                    .collect();
                hung.sort();
                hung
            };
            if hung.is_empty() {
                let mut nodes = lock(&self.shared.nodes);
                for h in nodes.values_mut() {
                    if let Some(j) = h.join.take() {
                        let _ = j.join();
                    }
                }
                drop(nodes);
                self.flush_telemetry();
                return Ok(());
            }
            if Instant::now() >= deadline {
                if let Some(rec) = &self.recorder {
                    rec.mark_truncated();
                }
                // The black box survives the hang: name every wedged
                // node in the flight ring, then dump it.
                for node in &hung {
                    let name = self.node_name(*node).unwrap_or_else(|| node.to_string());
                    self.flight_note(
                        &name,
                        "shutdown.hung",
                        &format!("did not stop within {timeout:?}"),
                    );
                }
                if let Some(fl) = &self.flight {
                    match fl.dump() {
                        Ok(path) => eprintln!(
                            "hung shutdown: flight recorder dumped to {}",
                            path.display()
                        ),
                        Err(e) => eprintln!("hung shutdown: flight-recorder dump failed: {e}"),
                    }
                }
                self.flush_telemetry();
                return Err(hung);
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// The structured event sink (disabled by default).
    pub fn events(&self) -> &EventSink {
        &self.events
    }

    /// Mutable event sink (enable recording, drain events).
    pub fn events_mut(&mut self) -> &mut EventSink {
        &mut self.events
    }

    fn is_blocked(&self, a: NodeId, b: NodeId) -> bool {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        lock(&self.shared.blocked).contains(&key)
    }

    /// Moves any newly-arrived completions into the completed map
    /// without blocking.
    fn drain_completions(&mut self) {
        while let Ok((token, result)) = self.comp_rx.try_recv() {
            self.completed.insert(token, result);
        }
    }

    /// Fires every timer that is due as of the wall clock. Timers only
    /// run here — i.e. while this view sleeps or waits — mirroring the
    /// simulator firing tasks while the client pumps the event loop.
    fn run_due_timers(&mut self) {
        loop {
            let due = self.timers.peek().is_some_and(|e| e.at <= Clock::now(self));
            if !due {
                break;
            }
            let entry = self.timers.pop().expect("peeked timer vanished");
            if self.recorder.is_some() {
                self.note(RecEvent::TimerFired {
                    label: entry.task.label().to_string(),
                });
            }
            if self.flight.is_some() {
                self.flight_note("timers", "timer.fired", entry.task.label());
            }
            entry.task.run(self);
        }
    }

    /// Launches one envelope toward `to`'s mailbox. `Err` when the node
    /// is unknown or its thread is gone.
    fn post(&mut self, from: NodeId, to: NodeId, msg: M, token: u64) -> Result<(), NetError> {
        let env = Envelope {
            from,
            msg,
            token,
            reply: self.comp_tx.clone(),
        };
        let nodes = lock(&self.shared.nodes);
        match nodes.get(&to) {
            Some(h) => {
                // Count BEFORE sending: the node thread decrements on
                // pickup, and a decrement racing ahead of its increment
                // would no-op at zero and leave a phantom +1 behind.
                h.stats.posted();
                match h.tx.send(env) {
                    Ok(()) => Ok(()),
                    Err(_) => {
                        // The envelope never entered the mailbox.
                        h.stats.picked_up();
                        h.stats.finished();
                        Err(NetError::NodeDown(to))
                    }
                }
            }
            None => Err(NetError::NodeDown(to)),
        }
    }

    /// The wall-clock instant `t` maps to.
    fn instant_at(&self, t: SimTime) -> Instant {
        self.shared.start + Duration::from_micros(t.as_micros())
    }

    fn rpc_inner(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        timeout: SimDuration,
    ) -> Result<M, NetError> {
        if !self.is_up(from) {
            return Err(NetError::NodeDown(from));
        }
        self.metrics.incr("rpc.sent");
        let started = Instant::now();
        if !self.reachable(from, to) {
            let err = if self.is_up(to) {
                NetError::Unreachable { from, to }
            } else {
                NetError::NodeDown(to)
            };
            self.note_rpc_failed(&err);
            return Err(err);
        }
        let token = self.next_token;
        self.next_token += 1;
        if let Err(e) = self.post(from, to, msg, token) {
            self.note_rpc_failed(&e);
            return Err(e);
        }
        let deadline = started + Duration::from_micros(timeout.as_micros());
        loop {
            self.drain_completions();
            if let Some(result) = self.completed.remove(&token) {
                match &result {
                    Ok(_) => {
                        self.metrics.incr("rpc.ok");
                        self.metrics
                            .observe("rpc.latency", started.elapsed().as_micros() as u64);
                    }
                    Err(e) => {
                        let e = *e;
                        self.note_rpc_failed(&e);
                    }
                }
                return result;
            }
            self.run_due_timers();
            let now = Instant::now();
            if now >= deadline {
                self.note_rpc_failed(&NetError::Timeout);
                return Err(NetError::Timeout);
            }
            match self.comp_rx.recv_timeout((deadline - now).min(WAIT_SLICE)) {
                Ok((t, r)) => {
                    self.completed.insert(t, r);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Our own sender is alive (self.comp_tx), so this
                    // cannot happen; treat as a timeout slice.
                }
            }
        }
    }
}

impl<M: RtMessage> Clone for ThreadedRuntime<M> {
    /// A new view on the same fleet: shared nodes and routes, private
    /// completion channel, token space, timers, metrics, and spans.
    fn clone(&self) -> Self {
        let (comp_tx, comp_rx) = mpsc::channel();
        ThreadedRuntime {
            shared: Arc::clone(&self.shared),
            comp_tx,
            comp_rx,
            completed: HashMap::new(),
            next_token: 0,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            metrics: Metrics::new(),
            events: EventSink::new(),
            ctx: Vec::new(),
            recorder: self.recorder.clone(),
            // Same hub, own publisher slot: the clone's readings merge
            // with — never overwrite — this view's.
            telemetry: self.telemetry.as_ref().map(|t| RtTelemetry {
                publisher: t.hub.register(t.publisher.cadence()),
                hub: t.hub.clone(),
            }),
            flight: self.flight.clone(),
            watchdog: self.watchdog.clone(),
        }
    }
}

impl<M: RtMessage> Drop for ThreadedRuntime<M> {
    /// A dying view's readings must reach the hub: worker views flush
    /// on drop, so the merged picture never silently loses a view that
    /// exited between cadences.
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

impl<M: RtMessage> Clock for ThreadedRuntime<M> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.shared.start.elapsed().as_micros() as u64)
    }

    /// Sleeps wall time, firing due timers as they come up (so gossip
    /// rounds progress while a client waits between retries).
    fn sleep(&mut self, d: SimDuration) {
        self.note(RecEvent::Sleep { us: d.as_micros() });
        let deadline = Clock::now(self) + d;
        loop {
            self.run_due_timers();
            self.maybe_publish_telemetry();
            let now = Clock::now(self);
            if now >= deadline {
                return;
            }
            let wake = match self.timers.peek() {
                Some(e) if e.at < deadline => e.at,
                _ => deadline,
            };
            let gap = wake.as_micros().saturating_sub(now.as_micros());
            thread::sleep(Duration::from_micros(gap.max(1)));
        }
    }

    fn rng_for(&self, label: &str) -> SimRng {
        SimRng::for_label(self.shared.seed, label)
    }
}

impl<M: RtMessage> Observe for ThreadedRuntime<M> {
    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn span_enter(&mut self, kind: &str, detail: &dyn Fn() -> String) -> SpanId {
        let parent = self.ctx.last().copied();
        Observe::span_enter_under(self, parent, kind, detail)
    }

    fn span_enter_under(
        &mut self,
        parent: Option<TraceContext>,
        kind: &str,
        detail: &dyn Fn() -> String,
    ) -> SpanId {
        let at = Clock::now(self).as_micros();
        let d = if self.events.is_enabled() {
            detail()
        } else {
            String::new()
        };
        let ctx = self.events.begin_span(at, kind, &d, parent);
        self.ctx.push(ctx);
        ctx.span
    }

    fn span_exit(&mut self, id: SpanId) {
        let top = self.ctx.pop();
        debug_assert_eq!(top.map(|c| c.span), Some(id), "span_exit out of LIFO order");
        let at = Clock::now(self).as_micros();
        self.events.end_span(at, id);
    }

    fn current_ctx(&self) -> Option<TraceContext> {
        self.ctx.last().copied()
    }

    fn trace_event(&mut self, kind: &str, detail: &dyn Fn() -> String) {
        if self.events.is_enabled() {
            let d = detail();
            let at = Clock::now(self).as_micros();
            let ctx = self.ctx.last().copied();
            self.events.event_in(at, kind, &d, ctx);
        }
    }
}

impl<M: RtMessage> Transport<M> for ThreadedRuntime<M> {
    fn rpc(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        timeout: SimDuration,
    ) -> Result<M, NetError> {
        let span = Observe::span_enter(self, "net.rpc", &|| format!("{from}->{to}"));
        let req_hash = self.recorder.as_ref().map(|_| hash_debug(&msg));
        let started = Instant::now();
        // The guard holds only an Arc into the watchdog; registered for
        // exactly as long as the rpc is actually in flight.
        let wd_guard = self
            .watchdog
            .as_ref()
            .map(|w| w.guard(&from.to_string(), &format!("net.rpc {from}->{to}")));
        let result = self.rpc_inner(from, to, msg, timeout);
        drop(wd_guard);
        if let Some(req_hash) = req_hash {
            self.note(RecEvent::Rpc {
                from: from.0,
                to: to.0,
                req_hash,
                outcome: RecOutcome::of(&result),
                elapsed_us: started.elapsed().as_micros() as u64,
            });
        }
        if self.flight.is_some() {
            let detail = match &result {
                Ok(_) => format!("ok in {}us", started.elapsed().as_micros()),
                Err(e) => format!("{e} after {}us", started.elapsed().as_micros()),
            };
            self.flight_note(&format!("{from}->{to}"), "rpc", &detail);
        }
        if let Err(e) = &result {
            let err = *e;
            Observe::trace_event(self, "net.rpc.failed", &|| format!("{from}->{to}: {err}"));
        }
        Observe::span_exit(self, span);
        self.maybe_publish_telemetry();
        result
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: M) -> ReplyToken {
        let req_hash = self.recorder.as_ref().map(|_| hash_debug(&msg));
        let token = self.next_token;
        self.next_token += 1;
        self.metrics.incr("rpc.sent");
        if !self.is_up(from) {
            self.completed.insert(token, Err(NetError::NodeDown(from)));
        } else if !self.reachable(from, to) {
            let err = if self.is_up(to) {
                NetError::Unreachable { from, to }
            } else {
                NetError::NodeDown(to)
            };
            self.completed.insert(token, Err(err));
        } else if let Err(e) = self.post(from, to, msg, token) {
            self.completed.insert(token, Err(e));
        }
        if let Some(req_hash) = req_hash {
            self.note(RecEvent::Send {
                from: from.0,
                to: to.0,
                req_hash,
                token,
            });
        }
        self.flight_note(&format!("{from}->{to}"), "send", &format!("token {token}"));
        ReplyToken::from_raw(token)
    }

    fn send_batch(&mut self, from: NodeId, to: NodeId, parts: Vec<M>) -> ReplyToken {
        self.metrics.incr("net.batch.envelopes");
        self.metrics.add("net.batch.parts", parts.len() as u64);
        Transport::send(self, from, to, M::wrap_batch(parts))
    }

    fn try_take_reply(&mut self, token: ReplyToken) -> Option<Result<M, NetError>> {
        self.drain_completions();
        let taken = self.completed.remove(&token.raw());
        if let Some(result) = &taken {
            if self.recorder.is_some() {
                self.note(RecEvent::TookReply {
                    token: token.raw(),
                    outcome: RecOutcome::of(result),
                });
            }
            self.maybe_publish_telemetry();
        }
        taken
    }

    fn wait_any(&mut self, tokens: &[ReplyToken], deadline: SimTime) -> Option<ReplyToken> {
        let started = Instant::now();
        let wd_guard = self
            .watchdog
            .as_ref()
            .map(|w| w.guard("view", &format!("net.wait_any {} tokens", tokens.len())));
        let winner = self.wait_any_inner(tokens, deadline);
        drop(wd_guard);
        if self.recorder.is_some() {
            self.note(RecEvent::WaitAny {
                winner: winner.map(ReplyToken::raw),
                elapsed_us: started.elapsed().as_micros() as u64,
            });
        }
        self.maybe_publish_telemetry();
        winner
    }

    /// No latency model on real threads: everything estimates to zero,
    /// and closest-first candidate ordering falls back to its
    /// deterministic element-id tie-break.
    fn estimate_latency(&self, _a: NodeId, _b: NodeId) -> SimDuration {
        SimDuration::ZERO
    }
}

impl<M: RtMessage> ThreadedRuntime<M> {
    fn wait_any_inner(&mut self, tokens: &[ReplyToken], deadline: SimTime) -> Option<ReplyToken> {
        let wall_deadline = self.instant_at(deadline);
        loop {
            self.drain_completions();
            if let Some(&t) = tokens
                .iter()
                .find(|t| self.completed.contains_key(&t.raw()))
            {
                return Some(t);
            }
            self.run_due_timers();
            let now = Instant::now();
            if now >= wall_deadline {
                return None;
            }
            if let Ok((t, r)) = self
                .comp_rx
                .recv_timeout((wall_deadline - now).min(WAIT_SLICE))
            {
                self.completed.insert(t, r);
            }
        }
    }
}

impl<M: RtMessage> ServiceHost<M> for ThreadedRuntime<M> {
    fn install_service(&mut self, node: NodeId, svc: Box<dyn Service<M> + Send>) {
        {
            let nodes = lock(&self.shared.nodes);
            let h = nodes.get(&node).unwrap_or_else(|| {
                panic!("install_service on unknown node {node:?}; add_node first")
            });
            *lock(&h.slot) = Some(svc);
        }
        self.note(RecEvent::InstallService { node: node.0 });
    }

    fn with_service_any(&self, node: NodeId, f: &mut dyn FnMut(&dyn Any)) -> bool {
        let nodes = lock(&self.shared.nodes);
        let Some(h) = nodes.get(&node) else {
            return false;
        };
        let guard = lock(&h.slot);
        match guard.as_ref() {
            Some(svc) => {
                f(svc.as_ref() as &dyn Any);
                true
            }
            None => false,
        }
    }

    fn with_service_any_mut(&mut self, node: NodeId, f: &mut dyn FnMut(&mut dyn Any)) -> bool {
        let nodes = lock(&self.shared.nodes);
        let Some(h) = nodes.get(&node) else {
            return false;
        };
        let mut guard = lock(&h.slot);
        match guard.as_mut() {
            Some(svc) => {
                f(svc.as_mut() as &mut dyn Any);
                true
            }
            None => false,
        }
    }

    fn is_up(&self, node: NodeId) -> bool {
        lock(&self.shared.nodes)
            .get(&node)
            .is_some_and(|h| h.up.load(Ordering::SeqCst))
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.is_up(from) && self.is_up(to) && !self.is_blocked(from, to)
    }
}

impl<M: RtMessage> Spawner<M> for ThreadedRuntime<M> {
    fn spawn_in(&mut self, d: SimDuration, task: Box<dyn RtTask<M>>) {
        if self.recorder.is_some() {
            self.note(RecEvent::SpawnIn {
                delay_us: d.as_micros(),
                label: task.label().to_string(),
            });
        }
        let at = Clock::now(self) + d;
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(TimerEntry { at, seq, task });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Runtime, RuntimeExt, TaskFn};
    use weakset_sim::net::BatchEnvelope;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Val(u64),
        Batch(Vec<Msg>),
    }

    impl BatchEnvelope for Msg {
        fn wrap_batch(parts: Vec<Self>) -> Self {
            Msg::Batch(parts)
        }
        fn unwrap_batch(self) -> Result<Vec<Self>, Self> {
            match self {
                Msg::Batch(parts) => Ok(parts),
                other => Err(other),
            }
        }
    }

    struct Inc {
        hits: u64,
    }

    impl Service<Msg> for Inc {
        fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: Msg) -> Msg {
            self.hits += 1;
            match msg {
                Msg::Val(n) => Msg::Val(n + 1),
                Msg::Batch(parts) => Msg::Batch(
                    parts
                        .into_iter()
                        .map(|m| match m {
                            Msg::Val(n) => Msg::Val(n + 1),
                            other => other,
                        })
                        .collect(),
                ),
            }
        }
    }

    fn fleet() -> (ThreadedRuntime<Msg>, NodeId, NodeId) {
        let mut rt = ThreadedRuntime::new(7);
        let client = rt.add_node("client");
        let server = rt.add_node("server");
        rt.install_service(server, Box::new(Inc { hits: 0 }));
        (rt, client, server)
    }

    #[test]
    fn rpc_round_trip() {
        let (mut rt, c, s) = fleet();
        let reply = Transport::rpc(&mut rt, c, s, Msg::Val(41), SimDuration::from_secs(5));
        assert_eq!(reply, Ok(Msg::Val(42)));
        assert_eq!(rt.metrics.counter("rpc.ok"), 1);
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn rpc_to_down_node_fast_fails() {
        let (mut rt, c, s) = fleet();
        rt.crash(s);
        let reply = Transport::rpc(&mut rt, c, s, Msg::Val(1), SimDuration::from_secs(5));
        assert_eq!(reply, Err(NetError::NodeDown(s)));
        rt.set_node_up(s, true);
        let reply = Transport::rpc(&mut rt, c, s, Msg::Val(1), SimDuration::from_secs(5));
        assert_eq!(reply, Ok(Msg::Val(2)));
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn blocked_route_is_unreachable() {
        let (mut rt, c, s) = fleet();
        rt.set_reachable(c, s, false);
        let reply = Transport::rpc(&mut rt, c, s, Msg::Val(1), SimDuration::from_secs(5));
        assert_eq!(reply, Err(NetError::Unreachable { from: c, to: s }));
        rt.set_reachable(c, s, true);
        assert!(ServiceHost::reachable(&rt, c, s));
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn serviceless_node_times_out() {
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(1);
        let c = rt.add_node("c");
        let empty = rt.add_node("empty");
        let reply = Transport::rpc(&mut rt, c, empty, Msg::Val(1), SimDuration::from_millis(80));
        assert_eq!(reply, Err(NetError::Timeout));
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn async_send_batch_and_wait_any() {
        let (mut rt, c, s) = fleet();
        let token = Transport::send_batch(&mut rt, c, s, vec![Msg::Val(1), Msg::Val(2)]);
        let deadline = Clock::now(&rt) + SimDuration::from_secs(5);
        let done = Transport::wait_any(&mut rt, &[token], deadline);
        assert_eq!(done, Some(token));
        let reply = Transport::try_take_reply(&mut rt, token).expect("reply present");
        assert_eq!(
            reply.unwrap().unwrap_batch().unwrap(),
            vec![Msg::Val(2), Msg::Val(3)]
        );
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn timers_fire_during_sleep() {
        let (mut rt, _c, s) = fleet();
        {
            let dynrt: &mut dyn Runtime<Msg> = &mut rt;
            dynrt.spawn_in(
                SimDuration::from_millis(5),
                Box::new(TaskFn(move |rt: &mut (dyn Runtime<Msg> + 'static)| {
                    rt.with_service_mut(s, |svc: &mut Inc| svc.hits = 99);
                })),
            );
            dynrt.sleep(SimDuration::from_millis(30));
        }
        assert_eq!(rt.with_service(s, |svc: &Inc| svc.hits), Some(99));
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn cloned_views_share_the_fleet_but_not_tokens() {
        let (rt, c, s) = fleet();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let mut view = rt.clone();
            handles.push(thread::spawn(move || {
                Transport::rpc(&mut view, c, s, Msg::Val(i), SimDuration::from_secs(5))
            }));
        }
        let mut got: Vec<u64> = handles
            .into_iter()
            .map(|h| match h.join().unwrap() {
                Ok(Msg::Val(n)) => n,
                other => panic!("unexpected reply {other:?}"),
            })
            .collect();
        got.sort();
        assert_eq!(got, vec![1, 2, 3, 4]);
        let mut rt = rt;
        assert_eq!(rt.with_service(s, |svc: &Inc| svc.hits), Some(4));
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn shutdown_reports_rather_than_hangs() {
        let (mut rt, _c, _s) = fleet();
        assert_eq!(rt.shutdown(Duration::from_secs(2)), Ok(()));
        // Idempotent: already-stopped fleets stay stopped.
        assert_eq!(rt.shutdown(Duration::from_millis(50)), Ok(()));
    }

    /// A handler that wedges long enough to outlive a short shutdown
    /// deadline.
    struct Wedge;

    impl Service<Msg> for Wedge {
        fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: Msg) -> Msg {
            thread::sleep(Duration::from_secs(2));
            msg
        }
    }

    #[test]
    fn shutdown_names_the_wedged_node_and_truncates_the_recording() {
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(3);
        rt.attach_recorder(Recorder::new(3));
        let c = rt.add_node("client");
        let wedged = rt.add_node("wedged");
        rt.install_service(wedged, Box::new(Wedge));
        let _token = Transport::send(&mut rt, c, wedged, Msg::Val(1));
        // Let the node thread pick the envelope up and enter the handler.
        thread::sleep(Duration::from_millis(100));
        let hung = rt
            .shutdown(Duration::from_millis(200))
            .expect_err("wedged handler must be reported, not waited out");
        assert_eq!(hung, vec![wedged]);
        assert_eq!(rt.node_name(wedged).as_deref(), Some("wedged"));
        let rec = rt.recorder().expect("recorder attached").finish();
        assert!(rec.truncated, "failed shutdown must truncate the recording");
        // The completed prefix is still there: both nodes and the send.
        assert_eq!(rec.nodes, vec!["client".to_string(), "wedged".to_string()]);
        assert!(rec
            .entries
            .iter()
            .any(|e| matches!(&e.ev, RecEvent::Send { from: 0, to: 1, .. })));
        // Once the wedged handler finishes, the fleet drains normally.
        assert!(rt.shutdown(Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn telemetry_hub_is_scrapeable_mid_run() {
        let hub = TelemetryHub::new();
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(5);
        rt.attach_telemetry(hub.clone(), Duration::ZERO);
        let c = rt.add_node("client");
        let s = rt.add_node("server");
        rt.install_service(s, Box::new(Inc { hits: 0 }));
        for i in 0..3 {
            let reply = Transport::rpc(&mut rt, c, s, Msg::Val(i), SimDuration::from_secs(5));
            assert!(reply.is_ok());
        }
        // Scraped BEFORE shutdown: the whole point of the hub.
        let merged = hub.merged();
        assert_eq!(merged.counter("rpc.sent"), 3);
        assert_eq!(merged.counter("rpc.ok"), 3);
        let lat = merged
            .latency("rpc.latency")
            .expect("live latency population");
        assert_eq!(lat.len(), 3);
        // The server handled requests, so its queue-depth high-water
        // mark (a live gauge, sampled at merge time) must have moved.
        assert!(merged.gauge("rt.node.server.queue.depth.max") >= 1);
        assert_eq!(merged.gauge("rt.node.server.queue.depth"), 0, "all drained");
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn rpc_failures_are_split_by_cause() {
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(9);
        let c = rt.add_node("client");
        let s = rt.add_node("server");
        rt.install_service(s, Box::new(Inc { hits: 0 }));
        let empty = rt.add_node("empty");

        rt.set_reachable(c, s, false);
        let un = Transport::rpc(&mut rt, c, s, Msg::Val(1), SimDuration::from_secs(5));
        assert!(matches!(un, Err(NetError::Unreachable { .. })));
        rt.set_reachable(c, s, true);

        rt.crash(s);
        let down = Transport::rpc(&mut rt, c, s, Msg::Val(1), SimDuration::from_secs(5));
        assert_eq!(down, Err(NetError::NodeDown(s)));
        rt.set_node_up(s, true);

        let to = Transport::rpc(&mut rt, c, empty, Msg::Val(1), SimDuration::from_millis(60));
        assert_eq!(to, Err(NetError::Timeout));

        assert_eq!(rt.metrics.counter(telemetry::RPC_FAILED_UNREACHABLE), 1);
        assert_eq!(rt.metrics.counter(telemetry::RPC_FAILED_CLOSED), 1);
        assert_eq!(rt.metrics.counter(telemetry::RPC_FAILED_TIMEOUT), 1);
        // The bare counter stays the total, so existing dashboards and
        // the cross-backend parity suite see unchanged semantics.
        assert_eq!(rt.metrics.counter("rpc.failed"), 3);
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn watchdog_flags_a_wedged_rpc_and_dumps_the_flight_ring() {
        let hub = TelemetryHub::new();
        let dump =
            std::env::temp_dir().join(format!("weakset-rt-watchdog-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&dump);
        let flight = FlightRecorder::new(64).with_dump_path(&dump);
        let wd = Watchdog::spawn(
            Duration::from_millis(40),
            Duration::from_millis(10),
            hub.clone(),
            Some(flight.clone()),
        );
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(13);
        rt.attach_telemetry(hub.clone(), Duration::ZERO);
        rt.attach_flight_recorder(flight.clone());
        rt.attach_watchdog(wd.clone());
        let c = rt.add_node("client");
        let w = rt.add_node("wedged");
        rt.install_service(w, Box::new(Wedge));
        // The handler sleeps 2s; the rpc gives up after 300ms; the
        // watchdog flags it in flight after ~40ms.
        let reply = Transport::rpc(&mut rt, c, w, Msg::Val(1), SimDuration::from_millis(300));
        assert_eq!(reply, Err(NetError::Timeout));
        wd.stop();
        assert!(wd.slow_ops() >= 1, "rpc outlived the watchdog deadline");
        assert!(hub.merged().counter(telemetry::WATCHDOG_SLOW_OP) >= 1);
        assert!(flight.has_dumped(), "first trip dumps the black box");
        let text = std::fs::read_to_string(&dump).expect("perfetto dump on disk");
        assert!(text.contains("watchdog.slow_op"));
        assert!(text.contains("traceEvents"));
        let _ = std::fs::remove_file(&dump);
        // The wedged handler finishes within 2s; drain the fleet fully.
        assert!(rt.shutdown(Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn hung_shutdown_dumps_the_flight_ring() {
        let dump =
            std::env::temp_dir().join(format!("weakset-rt-hungdump-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&dump);
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(17);
        rt.attach_flight_recorder(FlightRecorder::new(32).with_dump_path(&dump));
        let c = rt.add_node("client");
        let w = rt.add_node("wedged");
        rt.install_service(w, Box::new(Wedge));
        let _token = Transport::send(&mut rt, c, w, Msg::Val(1));
        thread::sleep(Duration::from_millis(100));
        let hung = rt
            .shutdown(Duration::from_millis(200))
            .expect_err("wedged handler must be reported");
        assert_eq!(hung, vec![w]);
        let text = std::fs::read_to_string(&dump).expect("hung shutdown leaves a dump");
        assert!(text.contains("shutdown.hung"));
        assert!(text.contains("wedged"));
        let _ = std::fs::remove_file(&dump);
        assert!(rt.shutdown(Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn finish_spans_surfaces_the_unclosed_ledger() {
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(21);
        *rt.events_mut() = EventSink::enabled();
        let _open = Observe::span_enter(&mut rt, "rt.read", &|| "leaked by test".to_string());
        let names = rt.finish_spans();
        assert_eq!(names, vec!["rt.read (leaked by test)".to_string()]);
        assert_eq!(rt.metrics.counter(telemetry::UNCLOSED_SPANS), 1);
        // Balanced instrumentation reports nothing.
        let mut clean: ThreadedRuntime<Msg> = ThreadedRuntime::new(22);
        *clean.events_mut() = EventSink::enabled();
        let span = Observe::span_enter(&mut clean, "rt.read", &|| String::new());
        Observe::span_exit(&mut clean, span);
        assert!(clean.finish_spans().is_empty());
        assert_eq!(clean.metrics.counter(telemetry::UNCLOSED_SPANS), 0);
    }

    #[test]
    fn dropped_worker_views_flush_into_the_hub() {
        let hub = TelemetryHub::new();
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(23);
        // A one-hour cadence: only the worker's very first publish (and
        // the drop-flush) can reach the hub.
        rt.attach_telemetry(hub.clone(), Duration::from_secs(3600));
        let c = rt.add_node("client");
        let s = rt.add_node("server");
        rt.install_service(s, Box::new(Inc { hits: 0 }));
        {
            let mut worker = rt.clone();
            for i in 0..3 {
                let reply =
                    Transport::rpc(&mut worker, c, s, Msg::Val(i), SimDuration::from_secs(5));
                assert!(reply.is_ok());
            }
            // The cadence gate let only the first rpc through.
            assert_eq!(hub.merged().counter("rpc.ok"), 1);
        } // worker dropped here — its final readings must survive it
        assert_eq!(hub.merged().counter("rpc.ok"), 3);
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn recorder_captures_the_boundary_crossings() {
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(11);
        rt.attach_recorder(Recorder::new(11));
        let c = rt.add_node("client");
        let s = rt.add_node("server");
        rt.install_service(s, Box::new(Inc { hits: 0 }));
        let ok = Transport::rpc(&mut rt, c, s, Msg::Val(1), SimDuration::from_secs(5));
        assert_eq!(ok, Ok(Msg::Val(2)));
        rt.set_reachable(c, s, false);
        let un = Transport::rpc(&mut rt, c, s, Msg::Val(1), SimDuration::from_secs(5));
        assert_eq!(un, Err(NetError::Unreachable { from: c, to: s }));
        rt.set_reachable(c, s, true);
        let token = Transport::send(&mut rt, c, s, Msg::Val(5));
        let deadline = Clock::now(&rt) + SimDuration::from_secs(5);
        assert_eq!(
            Transport::wait_any(&mut rt, &[token], deadline),
            Some(token)
        );
        let reply = Transport::try_take_reply(&mut rt, token).expect("completed");
        assert_eq!(reply, Ok(Msg::Val(6)));
        assert!(rt.shutdown(Duration::from_secs(2)).is_ok());

        let rec = rt.recorder().unwrap().finish();
        assert!(!rec.truncated);
        assert_eq!(rec.nodes, vec!["client".to_string(), "server".to_string()]);
        let evs: Vec<&RecEvent> = rec.entries.iter().map(|e| &e.ev).collect();
        // Same request payload → same recorded hash, success then failure.
        let rpc_hashes: Vec<(u64, bool)> = evs
            .iter()
            .filter_map(|e| match e {
                RecEvent::Rpc {
                    req_hash, outcome, ..
                } => Some((*req_hash, matches!(outcome, RecOutcome::Ok { .. }))),
                _ => None,
            })
            .collect();
        assert_eq!(rpc_hashes.len(), 2);
        assert_eq!(rpc_hashes[0].0, rpc_hashes[1].0);
        assert!(rpc_hashes[0].1 && !rpc_hashes[1].1);
        assert!(evs.iter().any(|e| matches!(
            e,
            RecEvent::SetReachable {
                a: 0,
                b: 1,
                ok: false
            }
        )));
        let sent_token = evs
            .iter()
            .find_map(|e| match e {
                RecEvent::Send { token, .. } => Some(*token),
                _ => None,
            })
            .expect("send recorded");
        assert!(evs
            .iter()
            .any(|e| matches!(e, RecEvent::WaitAny { winner: Some(w), .. } if *w == sent_token)));
        assert!(
            evs.iter()
                .any(|e| matches!(e, RecEvent::TookReply { token, .. } if *token == sent_token)),
            "collected reply recorded"
        );
        // The artifact form survives a round trip.
        assert_eq!(
            crate::record::Recording::from_ron(&rec.to_ron()).unwrap(),
            rec
        );
    }
}
