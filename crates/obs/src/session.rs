//! Well-known metric names for causal-session reads.
//!
//! A `ReadPolicy::CausalSession` membership read carries the client's
//! session token and may *wait* (for a laggard replica to apply the
//! session's dependencies) or *redirect* (union a different replica set
//! than it first contacted) before answering. Those detours are the
//! price of read-your-writes on leaderless deployments, so they get
//! their own instrumentation surface; the names live here (rather than
//! as string literals in `weakset-store`) so dashboards, snapshot
//! baselines, and tests agree on the spelling.

/// Counter: replica replies rejected because the replica had not yet
/// applied the session's dependencies (`SessionBehind`).
pub const READ_BEHIND: &str = "session.read.behind";

/// Counter: session reads that were answered by redirecting — merging
/// replies from replicas other than (or in addition to) the ones that
/// reported themselves behind.
pub const READ_REDIRECT: &str = "session.read.redirect";

/// Latency: simulated time a session read spent parked waiting for some
/// replica to catch up to the session floor, in microseconds.
pub const READ_WAIT_US: &str = "session.read.wait.us";

/// Counter: session reads that exhausted their deadline with every
/// reachable replica still behind the session floor.
pub const READ_GAVE_UP: &str = "session.read.gave_up";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn names_are_distinct_and_namespaced() {
        let all = [READ_BEHIND, READ_REDIRECT, READ_WAIT_US, READ_GAVE_UP];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("session."), "{a} must be namespaced");
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn usable_as_registry_keys() {
        let mut m = MetricsRegistry::new();
        m.incr(READ_BEHIND);
        m.observe(READ_WAIT_US, 125);
        assert_eq!(m.counter(READ_BEHIND), 1);
        assert!(m.latency(READ_WAIT_US).is_some());
    }
}
