//! Causal tracing: trace contexts, the happens-before DAG, and
//! deterministic critical-path analysis.
//!
//! The paper specifies each iterator semantics over *histories* —
//! which invocation yielded, suspended, or failed depends on what was
//! reachable when. A flat metric can say *that* a Figure 3 run failed;
//! only the causal structure can say *why* (which partition made which
//! member's home unreachable at which invocation). This module turns
//! the [`EventSink`](crate::EventSink) log into that structure:
//!
//! * [`TraceContext`] — a trace id plus parent span, carried on every
//!   simulated message so server-side work parents under the client
//!   span that caused it.
//! * [`CausalDag`] — the span forest reconstructed from begin/end
//!   edges, with point events attributed to their enclosing span.
//! * [`critical_path`] — a deterministic decomposition of each trace's
//!   wall-clock (simulated) latency into network / queue / quorum-wait
//!   / gossip segments.
//!
//! ## Critical-path definition
//!
//! Every span has a category derived from its kind prefix (`net.*` →
//! network, `gossip.*` → gossip, `store.read.quorum*` and
//! `store.read.batched*` → quorum-wait, everything else → queue). A
//! span's interval is charged as follows, recursively from each trace
//! root:
//!
//! 1. Time not covered by any child span is charged to the span's own
//!    category.
//! 2. Overlapping children are merged into maximal groups. In each
//!    group the *dominant* child — the last to finish, i.e. the one the
//!    parent was actually blocked on — is decomposed recursively; the
//!    rest of the group's union interval is charged to the parent's
//!    category.
//! 3. Quorum-category spans invert the choice for all but the first
//!    group: the first contact is real work (recursed), while every
//!    subsequent contact interval is, by definition, time spent waiting
//!    on replicas beyond the first — charged whole to quorum-wait.
//!
//! All inputs are simulated times and ordered collections, so the same
//! seed always produces the same decomposition, byte for byte.

use crate::sink::{ObsEvent, SpanId};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one trace: a computation-rooted tree of spans, possibly
/// crossing nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace#{}", self.0)
    }
}

/// The causal context carried across boundaries (sim messages, batch
/// envelopes, gossip exchanges): which trace we are in and which span
/// caused the work about to happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceContext {
    /// The trace this work belongs to.
    pub trace: TraceId,
    /// The span that caused this work; children open under it.
    pub span: SpanId,
}

/// One reconstructed span: a begin/end pair plus its place in the DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's id (shared by its begin and end edges).
    pub id: SpanId,
    /// The span it opened under, if any.
    pub parent: Option<SpanId>,
    /// The trace it belongs to, when recorded with one.
    pub trace: Option<TraceId>,
    /// Dotted span kind, e.g. `"net.rpc"` or `"iter.fig4.invocation"`.
    pub kind: String,
    /// Free-form detail from the begin edge.
    pub detail: String,
    /// Begin time, simulated microseconds.
    pub begin_us: u64,
    /// End time, simulated microseconds. Equals `begin_us` when the
    /// span was never closed (see `EventSink::finish`).
    pub end_us: u64,
    /// Child spans, in begin order.
    pub children: Vec<SpanId>,
}

impl SpanNode {
    /// The span's duration in simulated microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.begin_us)
    }
}

/// The happens-before DAG reconstructed from an event log: a forest of
/// span trees (one per trace root) plus the point events attributed to
/// them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CausalDag {
    spans: BTreeMap<SpanId, SpanNode>,
    roots: Vec<SpanId>,
    points: Vec<ObsEvent>,
}

impl CausalDag {
    /// Builds the DAG from a recorded event log (as drained by
    /// `EventSink::take_events`). Span-end edges close spans; spans
    /// with a missing or unknown parent become roots; point events are
    /// kept in recording order.
    pub fn from_events(events: &[ObsEvent]) -> Self {
        let mut spans: BTreeMap<SpanId, SpanNode> = BTreeMap::new();
        let mut begin_order: Vec<SpanId> = Vec::new();
        let mut points: Vec<ObsEvent> = Vec::new();
        for e in events {
            match e.span {
                None => points.push(e.clone()),
                Some(id) if e.kind == "span.end" || e.kind == "span.unclosed" => {
                    if let Some(node) = spans.get_mut(&id) {
                        node.end_us = e.at_us;
                    }
                }
                Some(id) => {
                    begin_order.push(id);
                    spans.insert(
                        id,
                        SpanNode {
                            id,
                            parent: e.parent,
                            trace: e.trace,
                            kind: e.kind.clone(),
                            detail: e.detail.clone(),
                            begin_us: e.at_us,
                            end_us: e.at_us,
                            children: Vec::new(),
                        },
                    );
                }
            }
        }
        let mut roots = Vec::new();
        for &id in &begin_order {
            let parent = spans.get(&id).and_then(|n| n.parent);
            match parent.filter(|p| spans.contains_key(p)) {
                Some(p) => spans.get_mut(&p).expect("parent checked").children.push(id),
                None => roots.push(id),
            }
        }
        CausalDag {
            spans,
            roots,
            points,
        }
    }

    /// The span with the given id, if present.
    pub fn span(&self, id: SpanId) -> Option<&SpanNode> {
        self.spans.get(&id)
    }

    /// Every span, in span-id order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanNode> {
        self.spans.values()
    }

    /// Root spans (no parent, or parent outside the log), in begin
    /// order.
    pub fn roots(&self) -> &[SpanId] {
        &self.roots
    }

    /// Point events (non-span-edge), in recording order.
    pub fn points(&self) -> &[ObsEvent] {
        &self.points
    }

    /// Number of reconstructed spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the log contained no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The chain of ancestors of `id`, nearest first (excluding `id`
    /// itself).
    pub fn ancestors(&self, id: SpanId) -> Vec<SpanId> {
        let mut out = Vec::new();
        let mut cur = self.spans.get(&id).and_then(|n| n.parent);
        while let Some(p) = cur {
            if out.contains(&p) {
                break; // defensive: a cyclic log must not hang us
            }
            out.push(p);
            cur = self.spans.get(&p).and_then(|n| n.parent);
        }
        out
    }

    /// `id` plus every span beneath it, preorder (parents before
    /// children, siblings in begin order).
    pub fn descendants(&self, id: SpanId) -> Vec<SpanId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(s) = stack.pop() {
            if !self.spans.contains_key(&s) || out.contains(&s) {
                continue;
            }
            out.push(s);
            if let Some(node) = self.spans.get(&s) {
                for &c in node.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Point events attributed (via their parent span) to `id` or any
    /// of its descendants, in recording order.
    pub fn points_under(&self, id: SpanId) -> Vec<&ObsEvent> {
        let under = self.descendants(id);
        self.points
            .iter()
            .filter(|e| e.parent.is_some_and(|p| under.contains(&p)))
            .collect()
    }
}

/// Where a slice of simulated time on the critical path was spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathCategory {
    /// In flight on the simulated network (`net.*` spans).
    Network,
    /// Client-side work and scheduling between network activity
    /// (the default for iterator/store spans).
    Queue,
    /// Waiting on replica replies beyond the first (`store.read.quorum*`
    /// and `store.read.batched*` spans).
    QuorumWait,
    /// Anti-entropy rounds and exchanges (`gossip.*` spans).
    Gossip,
}

/// The category a span's kind maps to.
pub fn category_of(kind: &str) -> PathCategory {
    if kind.starts_with("net.") {
        PathCategory::Network
    } else if kind.starts_with("gossip.") {
        PathCategory::Gossip
    } else if kind.starts_with("store.read.quorum") || kind.starts_with("store.read.batched") {
        PathCategory::QuorumWait
    } else {
        PathCategory::Queue
    }
}

/// A critical-path decomposition: simulated microseconds charged to
/// each category. Summed over trace roots by [`critical_path`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Time in flight on the network.
    pub network_us: u64,
    /// Client-side work and scheduling.
    pub queue_us: u64,
    /// Waiting on replicas beyond the first.
    pub quorum_wait_us: u64,
    /// Time inside gossip rounds and exchanges.
    pub gossip_us: u64,
}

impl CriticalPath {
    /// Total charged time across all categories.
    pub fn total_us(&self) -> u64 {
        self.network_us + self.queue_us + self.quorum_wait_us + self.gossip_us
    }

    fn charge(&mut self, cat: PathCategory, us: u64) {
        match cat {
            PathCategory::Network => self.network_us += us,
            PathCategory::Queue => self.queue_us += us,
            PathCategory::QuorumWait => self.quorum_wait_us += us,
            PathCategory::Gossip => self.gossip_us += us,
        }
    }

    /// Adds another decomposition into this one, category-wise.
    pub fn absorb(&mut self, other: &CriticalPath) {
        self.network_us += other.network_us;
        self.queue_us += other.queue_us;
        self.quorum_wait_us += other.quorum_wait_us;
        self.gossip_us += other.gossip_us;
    }
}

/// Critical-path decomposition of one root span's subtree.
pub fn critical_path_of(dag: &CausalDag, root: SpanId) -> CriticalPath {
    let mut cp = CriticalPath::default();
    if let Some(node) = dag.span(root) {
        decompose(dag, node, &mut cp);
    }
    cp
}

/// Critical-path decomposition summed over every trace root in the
/// DAG. Deterministic: same event log, same result.
pub fn critical_path(dag: &CausalDag) -> CriticalPath {
    let mut cp = CriticalPath::default();
    for &root in dag.roots() {
        cp.absorb(&critical_path_of(dag, root));
    }
    cp
}

fn decompose(dag: &CausalDag, node: &SpanNode, cp: &mut CriticalPath) {
    let cat = category_of(&node.kind);
    let quorum = cat == PathCategory::QuorumWait;
    // Children clamped to the parent interval, in begin order. Children
    // beginning after the parent ended are *continuations* — later
    // invocations of the same computation parented under its trace root
    // — and are decomposed as their own segments below: the computation's
    // path is the sum of its invocation windows, with the client's think
    // time between invocations charged to nothing.
    let (children, continuations): (Vec<&SpanNode>, Vec<&SpanNode>) = node
        .children
        .iter()
        .filter_map(|&c| dag.span(c))
        .partition(|c| c.begin_us < node.end_us || node.duration_us() == 0);
    for c in continuations {
        decompose(dag, c, cp);
    }

    let mut cursor = node.begin_us;
    let mut idx = 0;
    let mut group_no = 0;
    while idx < children.len() {
        // A maximal group of overlapping children.
        let group_begin = children[idx].begin_us.max(node.begin_us);
        let mut group_end = children[idx].end_us.min(node.end_us).max(group_begin);
        let mut dominant = idx;
        idx += 1;
        while idx < children.len() && children[idx].begin_us < group_end {
            let child_end = children[idx].end_us.min(node.end_us);
            let better = if quorum {
                // Fastest reply is the real work; the rest is waiting.
                child_end < children[dominant].end_us.min(node.end_us)
            } else {
                // The last child to finish is what blocked the parent.
                child_end > children[dominant].end_us.min(node.end_us)
            };
            if better {
                dominant = idx;
            }
            group_end = group_end.max(child_end);
            idx += 1;
        }

        // Gap before the group: the parent's own time.
        cp.charge(cat, group_begin.saturating_sub(cursor));

        if quorum && group_no > 0 {
            // Contacts after the first are pure quorum waiting.
            cp.charge(
                PathCategory::QuorumWait,
                group_end.saturating_sub(group_begin),
            );
        } else {
            let d = children[dominant];
            decompose(dag, d, cp);
            let covered = d.duration_us().min(group_end.saturating_sub(group_begin));
            cp.charge(
                cat,
                group_end
                    .saturating_sub(group_begin)
                    .saturating_sub(covered),
            );
        }
        cursor = cursor.max(group_end);
        group_no += 1;
    }
    cp.charge(cat, node.end_us.saturating_sub(cursor));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::EventSink;

    fn dag_of(build: impl FnOnce(&mut EventSink)) -> CausalDag {
        let mut s = EventSink::enabled();
        build(&mut s);
        assert!(s.finish(u64::MAX).is_empty(), "test left spans open");
        CausalDag::from_events(&s.take_events())
    }

    #[test]
    fn builds_forest_with_parents_and_points() {
        let dag = dag_of(|s| {
            let root = s.begin_span(0, "iter.fig4.invocation", "fig4", None);
            let rpc = s.begin_span(2, "net.rpc", "n0->n1", Some(root));
            s.event_in(4, "net.rpc.failed", "timeout", Some(rpc));
            s.end_span(6, rpc.span);
            s.end_span(10, root.span);
            let g = s.begin_span(20, "gossip.round", "", None);
            s.end_span(25, g.span);
        });
        assert_eq!(dag.roots().len(), 2);
        assert_eq!(dag.len(), 3);
        let root = dag.span(dag.roots()[0]).unwrap();
        assert_eq!(root.kind, "iter.fig4.invocation");
        assert_eq!(root.children.len(), 1);
        let rpc = dag.span(root.children[0]).unwrap();
        assert_eq!(rpc.duration_us(), 4);
        assert_eq!(dag.ancestors(rpc.id), vec![root.id]);
        assert_eq!(dag.descendants(root.id), vec![root.id, rpc.id]);
        let pts = dag.points_under(root.id);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].kind, "net.rpc.failed");
        // The two roots are distinct traces.
        assert_ne!(root.trace, dag.span(dag.roots()[1]).unwrap().trace);
    }

    #[test]
    fn critical_path_charges_gaps_to_parent_and_recurses_dominant() {
        let dag = dag_of(|s| {
            let root = s.begin_span(0, "iter.fig4.invocation", "", None);
            let a = s.begin_span(2, "net.rpc", "", Some(root));
            s.end_span(8, a.span);
            s.end_span(10, root.span);
        });
        let cp = critical_path(&dag);
        // 0..2 gap + 8..10 tail = 4us queue; 2..8 = 6us network.
        assert_eq!(cp.queue_us, 4);
        assert_eq!(cp.network_us, 6);
        assert_eq!(cp.total_us(), 10);
    }

    #[test]
    fn overlapping_children_charge_only_the_dominant() {
        let dag = dag_of(|s| {
            let root = s.begin_span(0, "iter.fig4.invocation", "", None);
            let a = s.begin_span(0, "net.rpc", "", Some(root));
            let b = s.begin_span(1, "net.rpc", "", Some(root));
            s.end_span(4, a.span);
            s.end_span(9, b.span);
            s.end_span(10, root.span);
        });
        let cp = critical_path(&dag);
        // Group 0..9: dominant is b (8us network); remainder 1us to
        // queue (parent); tail 9..10 queue.
        assert_eq!(cp.network_us, 8);
        assert_eq!(cp.queue_us, 2);
        assert_eq!(cp.total_us(), 10);
    }

    #[test]
    fn quorum_spans_charge_later_contacts_to_quorum_wait() {
        let dag = dag_of(|s| {
            let q = s.begin_span(0, "store.read.quorum", "", None);
            let a = s.begin_span(0, "net.rpc", "", Some(q));
            s.end_span(3, a.span);
            let b = s.begin_span(3, "net.rpc", "", Some(q));
            s.end_span(7, b.span);
            let c = s.begin_span(7, "net.rpc", "", Some(q));
            s.end_span(12, c.span);
            s.end_span(12, q.span);
        });
        let cp = critical_path(&dag);
        // First contact (3us) is network; contacts two and three
        // (4us + 5us) are quorum waiting.
        assert_eq!(cp.network_us, 3);
        assert_eq!(cp.quorum_wait_us, 9);
        assert_eq!(cp.total_us(), 12);
    }

    #[test]
    fn quorum_overlapping_group_recurses_fastest_reply() {
        let dag = dag_of(|s| {
            let q = s.begin_span(0, "store.read.batched", "", None);
            let a = s.begin_span(0, "net.rpc", "", Some(q));
            let b = s.begin_span(0, "net.rpc", "", Some(q));
            let c = s.begin_span(0, "net.rpc", "", Some(q));
            s.end_span(4, a.span);
            s.end_span(6, b.span);
            s.end_span(9, c.span);
            s.end_span(9, q.span);
        });
        let cp = critical_path(&dag);
        // One overlapping group 0..9: fastest reply a (4us) is network;
        // the remaining 5us of the group is quorum waiting.
        assert_eq!(cp.network_us, 4);
        assert_eq!(cp.quorum_wait_us, 5);
        assert_eq!(cp.total_us(), 9);
    }

    #[test]
    fn later_invocations_continue_the_roots_path() {
        let dag = dag_of(|s| {
            // First invocation roots the computation: 0..10 with a 6us rpc.
            let root = s.begin_span(0, "iter.fig4.invocation", "", None);
            let a = s.begin_span(2, "net.rpc", "", Some(root));
            s.end_span(8, a.span);
            s.end_span(10, root.span);
            // Second invocation begins after the root ended (client think
            // time 10..20 is charged to nothing): 20..30 with a 4us rpc.
            let inv2 = s.begin_span(20, "iter.fig4.invocation", "", Some(root));
            let b = s.begin_span(21, "net.rpc", "", Some(inv2));
            s.end_span(25, b.span);
            s.end_span(30, inv2.span);
        });
        let cp = critical_path(&dag);
        // Invocation 1: 4us queue + 6us network. Invocation 2: 6us queue
        // + 4us network. The 10us between invocations is uncharged.
        assert_eq!(cp.network_us, 10);
        assert_eq!(cp.queue_us, 10);
        assert_eq!(cp.total_us(), 20);
    }

    #[test]
    fn gossip_and_multiple_roots_sum() {
        let dag = dag_of(|s| {
            let g = s.begin_span(0, "gossip.round", "", None);
            let x = s.begin_span(1, "gossip.exchange", "n0->n1", Some(g));
            let r = s.begin_span(1, "net.rpc", "", Some(x));
            s.end_span(3, r.span);
            s.end_span(4, x.span);
            s.end_span(5, g.span);
            let lone = s.begin_span(10, "iter.fig5.invocation", "", None);
            s.end_span(12, lone.span);
        });
        let cp = critical_path(&dag);
        assert_eq!(cp.network_us, 2); // the rpc inside the exchange
        assert_eq!(cp.gossip_us, 3); // 0..1 + 3..4 + 4..5
        assert_eq!(cp.queue_us, 2); // the lone invocation
        assert_eq!(cp.total_us(), 7);
    }

    #[test]
    fn same_log_same_decomposition() {
        let build = |s: &mut EventSink| {
            let root = s.begin_span(0, "iter.fig6.invocation", "", None);
            let q = s.begin_span(1, "store.read.quorum", "", Some(root));
            let a = s.begin_span(1, "net.rpc", "", Some(q));
            s.end_span(5, a.span);
            let b = s.begin_span(5, "net.rpc", "", Some(q));
            s.end_span(11, b.span);
            s.end_span(11, q.span);
            s.end_span(12, root.span);
        };
        let (a, b) = (dag_of(build), dag_of(build));
        assert_eq!(a, b);
        assert_eq!(critical_path(&a), critical_path(&b));
    }
}
