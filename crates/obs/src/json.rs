//! A minimal JSON value, writer, and parser.
//!
//! The workspace vendors no serialization backend (serde is a no-op
//! shim), so snapshots carry their own canonical JSON: object keys keep
//! insertion order, integers are emitted without a decimal point, and
//! non-integral numbers are emitted with six fractional digits. The
//! parser accepts the full JSON grammar this writer produces (plus
//! arbitrary whitespace), which is all the `compare` tool and the
//! round-trip tests need.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so emission is
/// canonical: build them from sorted maps and two equal snapshots
/// serialize byte-identically.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integral values emit without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number from a `u64` (exact for values below 2^53).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:.6}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        out.push(char::from_u32(code).ok_or(format!("bad codepoint \\u{hex}"))?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::u64(0),
            Json::u64(12345),
            Json::Num(-2.5),
            Json::Str("hello \"world\"\n".into()),
        ] {
            let text = v.to_pretty();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("e1".into())),
            (
                "values".into(),
                Json::Arr(vec![Json::u64(1), Json::u64(2), Json::u64(3)]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("nested".into(), Json::Obj(vec![("x".into(), Json::Null)])),
        ]);
        let text = v.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Canonical: re-emitting the parse is byte-identical.
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::u64(42).to_pretty(), "42\n");
        assert_eq!(Json::Num(1.5).to_pretty(), "1.500000\n");
    }

    #[test]
    fn accessors() {
        let v = Json::Obj(vec![
            ("n".into(), Json::u64(7)),
            ("s".into(), Json::Str("x".into())),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(v.fields().map(<[_]>::len), Some(2));
        assert!(Json::Num(-1.0).as_u64().is_none());
        assert!(Json::Num(0.5).as_u64().is_none());
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse("  { \"a\" :\n [ 1 , 2 ] }  ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::u64(1), Json::u64(2)]))
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
        let control = Json::Str("\u{1}".into());
        assert_eq!(Json::parse(&control.to_pretty()).unwrap(), control);
    }
}
