//! A structured event sink keyed by simulated time.
//!
//! Disabled by default: a quiescent run records nothing and pays only a
//! branch per call. When enabled, layers push [`ObsEvent`]s (point
//! events) and open/close spans; spans are just paired events sharing a
//! [`SpanId`], so the sink never allocates per-span state.

use std::fmt;

/// Identifies one span across its `begin`/`end` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// One structured event, stamped with simulated microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulated time of the event, in microseconds since run start.
    pub at_us: u64,
    /// Dotted event kind, e.g. `"sim.fault.crash"` or `"span.begin"`.
    pub kind: String,
    /// Free-form detail (node id, figure key, …).
    pub detail: String,
    /// The span this event opens/closes, when it is a span edge.
    pub span: Option<SpanId>,
}

/// Collects [`ObsEvent`]s when enabled; a no-op otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventSink {
    enabled: bool,
    next_span: u64,
    events: Vec<ObsEvent>,
}

impl EventSink {
    /// A disabled sink (records nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// An enabled sink.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the sink is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a point event. No-op when disabled.
    pub fn event(&mut self, at_us: u64, kind: &str, detail: &str) {
        if !self.enabled {
            return;
        }
        self.events.push(ObsEvent {
            at_us,
            kind: kind.to_string(),
            detail: detail.to_string(),
            span: None,
        });
    }

    /// Opens a span and returns its id. Span ids are handed out even
    /// when disabled so call sites never need to branch.
    pub fn begin(&mut self, at_us: u64, kind: &str, detail: &str) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        if self.enabled {
            self.events.push(ObsEvent {
                at_us,
                kind: kind.to_string(),
                detail: detail.to_string(),
                span: Some(id),
            });
        }
        id
    }

    /// Closes a span previously opened with [`EventSink::begin`].
    pub fn end(&mut self, at_us: u64, id: SpanId) {
        if !self.enabled {
            return;
        }
        self.events.push(ObsEvent {
            at_us,
            kind: "span.end".to_string(),
            detail: String::new(),
            span: Some(id),
        });
    }

    /// All recorded events, in recording order (which is sim-time order
    /// when producers record as time advances).
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events whose kind matches `kind` exactly.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Drops every recorded event (keeps the enabled flag and span
    /// counter).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = EventSink::new();
        assert!(!s.is_enabled());
        s.event(10, "x", "y");
        let id = s.begin(20, "op", "a");
        s.end(30, id);
        assert!(s.is_empty());
    }

    #[test]
    fn enabled_sink_records_events_and_spans() {
        let mut s = EventSink::enabled();
        s.event(5, "sim.fault.crash", "node-2");
        let id = s.begin(10, "iter.fig4", "snapshot");
        s.end(40, id);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count_kind("sim.fault.crash"), 1);
        assert_eq!(s.count_kind("span.end"), 1);
        let edges: Vec<_> = s.events().iter().filter(|e| e.span == Some(id)).collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].at_us, 10);
        assert_eq!(edges[1].at_us, 40);
    }

    #[test]
    fn span_ids_are_unique_and_survive_toggling() {
        let mut s = EventSink::new();
        let a = s.begin(0, "op", "");
        s.set_enabled(true);
        let b = s.begin(1, "op", "");
        assert_ne!(a, b);
        assert_eq!(s.len(), 1, "only the enabled begin recorded");
        assert_eq!(b.to_string(), "span#1");
    }

    #[test]
    fn clear_keeps_configuration() {
        let mut s = EventSink::enabled();
        s.event(1, "k", "");
        s.clear();
        assert!(s.is_empty());
        assert!(s.is_enabled());
        s.event(2, "k", "");
        assert_eq!(s.len(), 1);
    }
}
