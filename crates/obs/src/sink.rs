//! A structured event sink keyed by simulated time.
//!
//! Disabled by default: a quiescent run records nothing and pays only a
//! branch per call. When enabled, layers push [`ObsEvent`]s (point
//! events) and open/close spans; spans are paired events sharing a
//! [`SpanId`]. Each span carries an optional parent span and trace id
//! (see [`TraceContext`]), which is what turns a flat event log into
//! the happens-before DAG consumed by [`crate::causal`].

use crate::causal::{TraceContext, TraceId};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies one span across its `begin`/`end` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// One structured event, stamped with simulated microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulated time of the event, in microseconds since run start.
    pub at_us: u64,
    /// Dotted event kind, e.g. `"sim.fault.crash"` or `"span.begin"`.
    pub kind: String,
    /// Free-form detail (node id, figure key, …).
    pub detail: String,
    /// The span this event opens/closes, when it is a span edge.
    pub span: Option<SpanId>,
    /// The parent span, for span-begin edges and attributed point
    /// events. `None` for trace roots and unattributed events.
    pub parent: Option<SpanId>,
    /// The trace this event belongs to, when it was recorded under a
    /// [`TraceContext`].
    pub trace: Option<TraceId>,
}

/// Collects [`ObsEvent`]s when enabled; a no-op otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventSink {
    enabled: bool,
    next_span: u64,
    next_trace: u64,
    /// Spans begun but not yet ended, so unbalanced instrumentation is
    /// caught instead of silently producing a broken DAG.
    open: BTreeSet<SpanId>,
    events: Vec<ObsEvent>,
}

impl EventSink {
    /// A disabled sink (records nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// An enabled sink.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the sink is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a point event. No-op when disabled.
    pub fn event(&mut self, at_us: u64, kind: &str, detail: &str) {
        self.event_in(at_us, kind, detail, None)
    }

    /// Records a point event attributed to a trace/parent span. No-op
    /// when disabled.
    pub fn event_in(&mut self, at_us: u64, kind: &str, detail: &str, ctx: Option<TraceContext>) {
        if !self.enabled {
            return;
        }
        self.events.push(ObsEvent {
            at_us,
            kind: kind.to_string(),
            detail: detail.to_string(),
            span: None,
            parent: ctx.map(|c| c.span),
            trace: ctx.map(|c| c.trace),
        });
    }

    /// Opens a span under `ctx` (or as a fresh trace root when `ctx` is
    /// `None`) and returns the context children of the span should
    /// inherit: the span's own id plus its trace id.
    ///
    /// Ids are handed out even when disabled so call sites never need
    /// to branch; only the event record itself is skipped.
    pub fn begin_span(
        &mut self,
        at_us: u64,
        kind: &str,
        detail: &str,
        ctx: Option<TraceContext>,
    ) -> TraceContext {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        let trace = match ctx {
            Some(c) => c.trace,
            None => {
                let t = TraceId(self.next_trace);
                self.next_trace += 1;
                t
            }
        };
        if self.enabled {
            self.open.insert(id);
            self.events.push(ObsEvent {
                at_us,
                kind: kind.to_string(),
                detail: detail.to_string(),
                span: Some(id),
                parent: ctx.map(|c| c.span),
                trace: Some(trace),
            });
        }
        TraceContext { trace, span: id }
    }

    /// Closes a span previously opened with [`EventSink::begin_span`].
    ///
    /// Debug builds assert the span is actually open (catching double
    /// closes and closes of never-opened ids); release builds record
    /// the end edge regardless so a mispaired span is still visible in
    /// the event log.
    pub fn end_span(&mut self, at_us: u64, id: SpanId) {
        if !self.enabled {
            return;
        }
        let was_open = self.open.remove(&id);
        debug_assert!(was_open, "end_span on span that is not open: {id}");
        self.events.push(ObsEvent {
            at_us,
            kind: "span.end".to_string(),
            detail: String::new(),
            span: Some(id),
            parent: None,
            trace: None,
        });
    }

    /// Opens a root span with no trace context. Prefer
    /// [`EventSink::begin_span`] when a parent context is available.
    pub fn begin(&mut self, at_us: u64, kind: &str, detail: &str) -> SpanId {
        self.begin_span(at_us, kind, detail, None).span
    }

    /// Closes a span previously opened with [`EventSink::begin`].
    pub fn end(&mut self, at_us: u64, id: SpanId) {
        self.end_span(at_us, id)
    }

    /// Closes every still-open span (recording a `span.unclosed` end
    /// edge for each) and returns their ids, ascending. An empty return
    /// means all instrumentation paired its spans; callers that care
    /// should assert on it.
    pub fn finish(&mut self, at_us: u64) -> Vec<SpanId> {
        let unclosed: Vec<SpanId> = std::mem::take(&mut self.open).into_iter().collect();
        if self.enabled {
            for &id in &unclosed {
                self.events.push(ObsEvent {
                    at_us,
                    kind: "span.unclosed".to_string(),
                    detail: String::new(),
                    span: Some(id),
                    parent: None,
                    trace: None,
                });
            }
        }
        unclosed
    }

    /// All recorded events, in recording order (which is sim-time order
    /// when producers record as time advances).
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Drains every recorded event, leaving the sink empty but
    /// configured (enabled flag and id counters are kept). Use this
    /// instead of cloning `events()` when snapshotting.
    pub fn take_events(&mut self) -> Vec<ObsEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events whose kind matches `kind` exactly.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Drops every recorded event (keeps the enabled flag and span
    /// counter). Also forgets open-span bookkeeping.
    pub fn clear(&mut self) {
        self.events.clear();
        self.open.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = EventSink::new();
        assert!(!s.is_enabled());
        s.event(10, "x", "y");
        let id = s.begin(20, "op", "a");
        s.end(30, id);
        assert!(s.is_empty());
    }

    #[test]
    fn enabled_sink_records_events_and_spans() {
        let mut s = EventSink::enabled();
        s.event(5, "sim.fault.crash", "node-2");
        let id = s.begin(10, "iter.fig4", "snapshot");
        s.end(40, id);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count_kind("sim.fault.crash"), 1);
        assert_eq!(s.count_kind("span.end"), 1);
        let edges: Vec<_> = s.events().iter().filter(|e| e.span == Some(id)).collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].at_us, 10);
        assert_eq!(edges[1].at_us, 40);
    }

    #[test]
    fn span_ids_are_unique_and_survive_toggling() {
        let mut s = EventSink::new();
        let a = s.begin(0, "op", "");
        s.set_enabled(true);
        let b = s.begin(1, "op", "");
        assert_ne!(a, b);
        assert_eq!(s.len(), 1, "only the enabled begin recorded");
        assert_eq!(b.to_string(), "span#1");
        s.end(2, b); // keep the open-span bookkeeping balanced
    }

    #[test]
    fn clear_keeps_configuration() {
        let mut s = EventSink::enabled();
        s.event(1, "k", "");
        s.clear();
        assert!(s.is_empty());
        assert!(s.is_enabled());
        s.event(2, "k", "");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn spans_carry_parent_and_trace() {
        let mut s = EventSink::enabled();
        let root = s.begin_span(0, "iter.fig4.invocation", "", None);
        let child = s.begin_span(5, "net.rpc", "n0->n1", Some(root));
        s.event_in(7, "net.rpc.failed", "timeout", Some(child));
        s.end_span(9, child.span);
        s.end_span(10, root.span);

        assert_eq!(child.trace, root.trace);
        let begin_child = &s.events()[1];
        assert_eq!(begin_child.parent, Some(root.span));
        assert_eq!(begin_child.trace, Some(root.trace));
        let point = &s.events()[2];
        assert_eq!(point.parent, Some(child.span));
        assert_eq!(point.trace, Some(child.trace));

        let other = s.begin_span(20, "gossip.round", "", None);
        assert_ne!(other.trace, root.trace, "new root means new trace");
        s.end_span(21, other.span);
        assert!(s.finish(22).is_empty());
    }

    #[test]
    fn finish_reports_and_closes_unclosed_spans() {
        let mut s = EventSink::enabled();
        let a = s.begin_span(0, "op.a", "", None);
        let b = s.begin_span(1, "op.b", "", Some(a));
        s.end_span(2, b.span);
        let unclosed = s.finish(5);
        assert_eq!(unclosed, vec![a.span]);
        assert_eq!(s.count_kind("span.unclosed"), 1);
        // A second finish has nothing left to report.
        assert!(s.finish(6).is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not open")]
    fn double_close_is_caught_in_debug_builds() {
        let mut s = EventSink::enabled();
        let a = s.begin_span(0, "op", "", None);
        s.end_span(1, a.span);
        s.end_span(2, a.span);
    }

    #[test]
    fn take_events_drains_without_losing_configuration() {
        let mut s = EventSink::enabled();
        let a = s.begin_span(0, "op", "", None);
        s.end_span(1, a.span);
        let drained = s.take_events();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
        assert!(s.is_enabled());
        let b = s.begin_span(2, "op", "", None);
        assert!(b.span > a.span, "span ids keep advancing after a drain");
        s.end_span(3, b.span);
    }
}
