//! Latency recording, generalized from the simulator's original
//! `metrics.rs`: a population of microsecond samples with nearest-rank
//! quantiles.
//!
//! The sort guard lives in exactly one place (`LatencyRecorder::sorted`):
//! every order-dependent query goes through it, so samples are re-sorted
//! at most once per batch of recordings no matter how many quantiles are
//! asked for.

use std::fmt;

/// Records a population of latencies (microseconds) and answers summary
/// queries.
///
/// ```
/// use weakset_obs::LatencyRecorder;
/// let mut r = LatencyRecorder::new();
/// for us in [30, 10, 20] {
///     r.record(us);
/// }
/// assert_eq!(r.p50(), Some(20));
/// assert_eq!(r.min(), Some(10));
/// assert_eq!(r.max(), Some(30));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    dirty: bool,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation, in microseconds.
    pub fn record(&mut self, us: u64) {
        self.samples.push(us);
        self.dirty = true;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The single sort guard: every order-dependent query funnels
    /// through here, so a batch of recordings costs at most one sort.
    fn sorted(&mut self) -> &[u64] {
        if self.dirty {
            self.samples.sort_unstable();
            self.dirty = false;
        }
        &self.samples
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) by nearest-rank, or `None` if
    /// empty. `q` is clamped: `quantile(0.0)` is the minimum,
    /// `quantile(1.0)` the maximum.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted()[rank.min(n - 1)])
    }

    /// Median, in microseconds.
    pub fn p50(&mut self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile, in microseconds.
    pub fn p99(&mut self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Smallest observation.
    pub fn min(&mut self) -> Option<u64> {
        self.sorted().first().copied()
    }

    /// Largest observation.
    pub fn max(&mut self) -> Option<u64> {
        self.sorted().last().copied()
    }

    /// Arithmetic mean (truncated), or `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Some((sum / self.samples.len() as u128) as u64)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.samples
            .iter()
            .fold(0u64, |acc, &s| acc.saturating_add(s))
    }

    /// Appends every sample of `other` (aggregation across runs).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.dirty = self.dirty || !other.samples.is_empty();
    }

    /// Freezes the population into a [`LatencySummary`].
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.len() as u64,
            min_us: self.min().unwrap_or(0),
            p50_us: self.p50().unwrap_or(0),
            p99_us: self.p99().unwrap_or(0),
            max_us: self.max().unwrap_or(0),
            mean_us: self.mean().unwrap_or(0),
        }
    }
}

/// A frozen summary of a latency population, in microseconds. All
/// fields are zero when `count` is zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation.
    pub min_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Largest observation.
    pub max_us: u64,
    /// Truncated arithmetic mean.
    pub mean_us: u64,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={}us p99={}us max={}us",
            self.count, self.p50_us, self.p99_us, self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_returns_none() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.p50(), None);
        assert_eq!(r.p99(), None);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.mean(), None);
        assert_eq!(r.sum(), 0);
        assert_eq!(r.summary(), LatencySummary::default());
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut r = LatencyRecorder::new();
        r.record(7);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(r.quantile(q), Some(7), "q={q}");
        }
        assert_eq!(r.min(), Some(7));
        assert_eq!(r.max(), Some(7));
        assert_eq!(r.mean(), Some(7));
    }

    #[test]
    fn extreme_quantiles_are_min_and_max() {
        let mut r = LatencyRecorder::new();
        for us in [50, 10, 40, 20, 30] {
            r.record(us);
        }
        assert_eq!(r.quantile(0.0), Some(10));
        assert_eq!(r.quantile(1.0), Some(50));
        // Out-of-range values clamp rather than panic.
        assert_eq!(r.quantile(-3.0), Some(10));
        assert_eq!(r.quantile(9.0), Some(50));
    }

    #[test]
    fn nearest_rank_matches_reference() {
        let mut r = LatencyRecorder::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.record(us);
        }
        assert_eq!(r.p50(), Some(50));
        assert_eq!(r.p99(), Some(100));
        assert_eq!(r.quantile(0.1), Some(10));
        assert_eq!(r.mean(), Some(55));
        assert_eq!(r.sum(), 550);
    }

    #[test]
    fn recording_after_query_resorts_once() {
        let mut r = LatencyRecorder::new();
        r.record(30);
        assert_eq!(r.max(), Some(30));
        r.record(10); // marks dirty again
        assert_eq!(r.min(), Some(10));
        assert_eq!(r.max(), Some(30));
    }

    #[test]
    fn merge_concatenates_populations() {
        let mut a = LatencyRecorder::new();
        a.record(10);
        let mut b = LatencyRecorder::new();
        b.record(30);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.p50(), Some(20));
        // Merging an empty recorder does not dirty a clean one.
        let empty = LatencyRecorder::new();
        a.merge(&empty);
        assert!(!a.dirty);
    }

    #[test]
    fn summary_freezes_everything() {
        let mut r = LatencyRecorder::new();
        for us in [10, 20, 30] {
            r.record(us);
        }
        let s = r.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min_us, 10);
        assert_eq!(s.p50_us, 20);
        assert_eq!(s.max_us, 30);
        assert_eq!(s.mean_us, 20);
        assert!(s.to_string().contains("n=3"));
    }

    #[test]
    fn sum_saturates() {
        let mut r = LatencyRecorder::new();
        r.record(u64::MAX);
        r.record(5);
        assert_eq!(r.sum(), u64::MAX);
    }
}
