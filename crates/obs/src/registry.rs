//! The workspace-wide metrics registry: named counters, high-water
//! gauges, and latency recorders, all in ordered maps so iteration and
//! serialization are deterministic.

use std::collections::BTreeMap;
use std::fmt;

use crate::latency::{LatencyRecorder, LatencySummary};
use crate::snapshot::ObsSnapshot;

/// Named counters, gauges, and latency recorders for one run.
///
/// Every layer of the stack records into a shared registry (the
/// simulator's `World` owns one). Names are dotted paths
/// (`"store.read.quorum.us"`); maps are `BTreeMap`s so display and
/// snapshot order is stable across runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    latencies: BTreeMap<String, LatencyRecorder>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (saturating).
    pub fn add(&mut self, name: &str, delta: u64) {
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sets the named gauge to `value` unconditionally.
    pub fn gauge_set(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raises the named gauge to `value` if it is higher than the
    /// current reading (high-water mark, e.g. peak queue depth).
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Current value of a gauge (zero if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records one latency observation, in microseconds.
    pub fn observe(&mut self, name: &str, us: u64) {
        self.latencies
            .entry(name.to_string())
            .or_default()
            .record(us);
    }

    /// Read access to a latency recorder, if it exists.
    pub fn latency(&self, name: &str) -> Option<&LatencyRecorder> {
        self.latencies.get(name)
    }

    /// The recorder for `name`, created on first use.
    pub fn latency_mut(&mut self, name: &str) -> &mut LatencyRecorder {
        self.latencies.entry(name.to_string()).or_default()
    }

    /// All latency recorders, in name order.
    pub fn latencies(&self) -> impl Iterator<Item = (&str, &LatencyRecorder)> {
        self.latencies.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.latencies.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the max, latency populations concatenate. Used to aggregate
    /// across DST iterations.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            self.add(name, *value);
        }
        for (name, value) in &other.gauges {
            self.gauge_max(name, *value);
        }
        for (name, rec) in &other.latencies {
            self.latencies.entry(name.clone()).or_default().merge(rec);
        }
    }

    /// Freezes the registry into an [`ObsSnapshot`] tagged with a
    /// scenario name and the seed that produced it. Latency populations
    /// are summarized; objectives start empty — attach them with
    /// [`ObsSnapshot::with_objective`].
    pub fn snapshot(&self, scenario: &str, seed: u64) -> ObsSnapshot {
        let latencies: BTreeMap<String, LatencySummary> = self
            .latencies
            .iter()
            .map(|(name, rec)| (name.clone(), rec.clone().summary()))
            .collect();
        ObsSnapshot {
            scenario: scenario.to_string(),
            seed,
            schema_version: ObsSnapshot::SCHEMA_VERSION,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            latencies,
            objectives: BTreeMap::new(),
        }
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name} = {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "{name} (gauge) = {value}")?;
        }
        for (name, rec) in &self.latencies {
            writeln!(f, "{name}: {}", rec.clone().summary())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
        m.add("x", u64::MAX);
        assert_eq!(m.counter("x"), u64::MAX, "saturates");
    }

    #[test]
    fn gauges_track_high_water_and_set() {
        let mut m = MetricsRegistry::new();
        m.gauge_max("depth", 3);
        m.gauge_max("depth", 1);
        assert_eq!(m.gauge("depth"), 3);
        m.gauge_set("depth", 1);
        assert_eq!(m.gauge("depth"), 1);
    }

    #[test]
    fn latencies_record_and_summarize() {
        let mut m = MetricsRegistry::new();
        m.observe("rpc", 30);
        m.observe("rpc", 10);
        assert_eq!(m.latency_mut("rpc").p50(), Some(10));
        assert_eq!(m.latency("rpc").map(LatencyRecorder::len), Some(2));
        assert!(m.latency("missing").is_none());
    }

    #[test]
    fn merge_combines_all_three_kinds() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.gauge_max("g", 5);
        a.observe("l", 10);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.gauge_max("g", 3);
        b.observe("l", 20);
        b.observe("only_b", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), 5);
        assert_eq!(a.latency_mut("l").max(), Some(20));
        assert_eq!(a.latency_mut("only_b").len(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = MetricsRegistry::new();
        m.incr("b");
        m.incr("a");
        m.incr("c");
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn snapshot_freezes_registry() {
        let mut m = MetricsRegistry::new();
        m.add("ops", 9);
        m.gauge_max("peak", 4);
        m.observe("lat", 100);
        let snap = m.snapshot("demo", 7);
        assert_eq!(snap.scenario, "demo");
        assert_eq!(snap.seed, 7);
        assert_eq!(snap.counters.get("ops"), Some(&9));
        assert_eq!(snap.gauges.get("peak"), Some(&4));
        assert_eq!(snap.latencies.get("lat").map(|s| s.count), Some(1));
        assert!(snap.objectives.is_empty());
    }

    #[test]
    fn display_lists_everything() {
        let mut m = MetricsRegistry::new();
        m.incr("hits");
        m.gauge_set("depth", 2);
        m.observe("lat", 5);
        let text = m.to_string();
        assert!(text.contains("hits = 1"));
        assert!(text.contains("depth (gauge) = 2"));
        assert!(text.contains("lat: n=1"));
    }
}
