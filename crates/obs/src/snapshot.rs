//! Frozen, machine-readable benchmark snapshots.
//!
//! An [`ObsSnapshot`] is what `weakset-bench --bin snapshot` writes to
//! `BENCH_<scenario>.json` and what `--bin compare` diffs against the
//! checked-in baselines. Serialization is canonical (sorted keys,
//! integer microseconds, fixed-precision objective values), so two runs
//! with the same seed produce byte-identical files.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;
use crate::latency::LatencySummary;

/// Whether a smaller or larger objective value is an improvement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, bytes on the wire, retries).
    LowerIsBetter,
    /// Larger is better (throughput, cache hits, yields).
    HigherIsBetter,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower_is_better",
            Direction::HigherIsBetter => "higher_is_better",
        }
    }

    fn parse(s: &str) -> Option<Direction> {
        match s {
            "lower_is_better" => Some(Direction::LowerIsBetter),
            "higher_is_better" => Some(Direction::HigherIsBetter),
            _ => None,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A named performance objective: the headline numbers the CI
/// regression gate actually compares (raw counters are context, not
/// gated).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective {
    /// The measured value.
    pub value: f64,
    /// Which way improvement points.
    pub direction: Direction,
}

impl Objective {
    /// Relative regression of `current` vs this baseline objective, as
    /// a fraction (`0.25` = 25% worse). Zero or negative means no
    /// regression. A zero baseline regresses only if `current` moves
    /// the wrong way at all.
    pub fn regression(&self, current: f64) -> f64 {
        let delta = match self.direction {
            Direction::LowerIsBetter => current - self.value,
            Direction::HigherIsBetter => self.value - current,
        };
        if delta <= 0.0 {
            0.0
        } else if self.value.abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            delta / self.value.abs()
        }
    }
}

/// A frozen, serializable view of one scenario's metrics plus named
/// perf objectives.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsSnapshot {
    /// Scenario id (`"e1"`..`"e10"`, `"fuzz"`).
    pub scenario: String,
    /// The seed that produced this run.
    pub seed: u64,
    /// Schema version; bumped when the JSON layout changes.
    pub schema_version: u32,
    /// All counters at end of run.
    pub counters: BTreeMap<String, u64>,
    /// All gauges (high-water marks) at end of run.
    pub gauges: BTreeMap<String, u64>,
    /// Latency summaries, in microseconds.
    pub latencies: BTreeMap<String, LatencySummary>,
    /// The gated headline numbers.
    pub objectives: BTreeMap<String, Objective>,
}

impl ObsSnapshot {
    /// Current snapshot schema version.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Attaches (or replaces) a named objective; builder-style.
    pub fn with_objective(mut self, name: &str, value: f64, direction: Direction) -> Self {
        self.objectives
            .insert(name.to_string(), Objective { value, direction });
        self
    }

    /// The canonical file name for this snapshot:
    /// `BENCH_<scenario>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario)
    }

    /// Serializes to canonical pretty JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::u64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::u64(*v)))
                .collect(),
        );
        let latencies = Json::Obj(
            self.latencies
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::u64(s.count)),
                            ("min_us".into(), Json::u64(s.min_us)),
                            ("p50_us".into(), Json::u64(s.p50_us)),
                            ("p99_us".into(), Json::u64(s.p99_us)),
                            ("max_us".into(), Json::u64(s.max_us)),
                            ("mean_us".into(), Json::u64(s.mean_us)),
                        ]),
                    )
                })
                .collect(),
        );
        let objectives = Json::Obj(
            self.objectives
                .iter()
                .map(|(k, o)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("value".into(), Json::Num(o.value)),
                            ("direction".into(), Json::Str(o.direction.as_str().into())),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("seed".into(), Json::u64(self.seed)),
            (
                "schema_version".into(),
                Json::u64(self.schema_version as u64),
            ),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("latencies".into(), latencies),
            ("objectives".into(), objectives),
        ])
        .to_pretty()
    }

    /// Parses a snapshot previously produced by [`ObsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// A descriptive message on malformed JSON, a missing field, or an
    /// unknown schema version.
    pub fn from_json(input: &str) -> Result<ObsSnapshot, String> {
        let root = Json::parse(input)?;
        let scenario = root
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("missing field: scenario")?
            .to_string();
        let seed = root
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("missing field: seed")?;
        let schema_version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing field: schema_version")?;
        let schema_version = u32::try_from(schema_version)
            .map_err(|_| format!("schema_version {schema_version} out of range for u32"))?;
        if schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "unknown schema_version {schema_version} (expected {})",
                Self::SCHEMA_VERSION
            ));
        }
        let counters = u64_map(&root, "counters")?;
        let gauges = u64_map(&root, "gauges")?;

        let mut latencies = BTreeMap::new();
        for (name, value) in obj_fields(&root, "latencies")? {
            let field = |f: &str| -> Result<u64, String> {
                value
                    .get(f)
                    .and_then(Json::as_u64)
                    .ok_or(format!("latency {name:?}: missing field {f}"))
            };
            latencies.insert(
                name.clone(),
                LatencySummary {
                    count: field("count")?,
                    min_us: field("min_us")?,
                    p50_us: field("p50_us")?,
                    p99_us: field("p99_us")?,
                    max_us: field("max_us")?,
                    mean_us: field("mean_us")?,
                },
            );
        }

        let mut objectives = BTreeMap::new();
        for (name, value) in obj_fields(&root, "objectives")? {
            let raw = value
                .get("value")
                .and_then(Json::as_f64)
                .ok_or(format!("objective {name:?}: missing value"))?;
            let direction = value
                .get("direction")
                .and_then(Json::as_str)
                .and_then(Direction::parse)
                .ok_or(format!("objective {name:?}: bad direction"))?;
            objectives.insert(
                name.clone(),
                Objective {
                    value: raw,
                    direction,
                },
            );
        }

        Ok(ObsSnapshot {
            scenario,
            seed,
            schema_version,
            counters,
            gauges,
            latencies,
            objectives,
        })
    }
}

fn obj_fields<'a>(root: &'a Json, key: &str) -> Result<&'a [(String, Json)], String> {
    root.get(key)
        .and_then(Json::fields)
        .ok_or(format!("missing object field: {key}"))
}

fn u64_map(root: &Json, key: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (name, value) in obj_fields(root, key)? {
        let v = value
            .as_u64()
            .ok_or(format!("{key}.{name}: expected unsigned integer"))?;
        out.insert(name.clone(), v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample() -> ObsSnapshot {
        let mut m = MetricsRegistry::new();
        m.add("rpc.sent", 12);
        m.add("rpc.ok", 11);
        m.gauge_max("sim.queue.depth.max", 9);
        for us in [100, 250, 900] {
            m.observe("rpc.latency", us);
        }
        m.snapshot("e1", 42)
            .with_objective("p50_rpc_us", 250.0, Direction::LowerIsBetter)
            .with_objective("yield_rate", 0.9167, Direction::HigherIsBetter)
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let snap = sample();
        let json = snap.to_json();
        let back = ObsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn same_registry_serializes_identically() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn file_name_embeds_scenario() {
        assert_eq!(sample().file_name(), "BENCH_e1.json");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsRegistry::new().snapshot("empty", 0);
        let back = ObsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn regression_math() {
        let lower = Objective {
            value: 100.0,
            direction: Direction::LowerIsBetter,
        };
        assert_eq!(lower.regression(100.0), 0.0);
        assert_eq!(lower.regression(80.0), 0.0, "improvement is not regression");
        assert!((lower.regression(130.0) - 0.30).abs() < 1e-9);

        let higher = Objective {
            value: 100.0,
            direction: Direction::HigherIsBetter,
        };
        assert_eq!(higher.regression(120.0), 0.0);
        assert!((higher.regression(70.0) - 0.30).abs() < 1e-9);

        let zero = Objective {
            value: 0.0,
            direction: Direction::LowerIsBetter,
        };
        assert_eq!(zero.regression(0.0), 0.0);
        assert_eq!(zero.regression(1.0), f64::INFINITY);
    }

    #[test]
    fn from_json_rejects_bad_input() {
        assert!(ObsSnapshot::from_json("not json").is_err());
        assert!(ObsSnapshot::from_json("{}").is_err());
        let wrong_version = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(ObsSnapshot::from_json(&wrong_version).is_err());
    }

    #[test]
    fn from_json_rejects_non_u32_schema_versions() {
        // Out of u32 range: must be a parse error, not a silent
        // truncation to some in-range value.
        let too_big = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 4294967297");
        let err = ObsSnapshot::from_json(&too_big).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // Fractional and negative versions are not unsigned integers.
        for bad in ["1.5", "-1"] {
            let text = sample().to_json().replace(
                "\"schema_version\": 1",
                &format!("\"schema_version\": {bad}"),
            );
            assert!(ObsSnapshot::from_json(&text).is_err(), "{bad}");
        }
    }

    #[test]
    fn directions_parse_and_display() {
        for d in [Direction::LowerIsBetter, Direction::HigherIsBetter] {
            assert_eq!(Direction::parse(&d.to_string()), Some(d));
        }
        assert_eq!(Direction::parse("sideways"), None);
    }
}
