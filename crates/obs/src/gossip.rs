//! Well-known metric names for anti-entropy gossip.
//!
//! `weakset-gossip`'s engine charges every exchange to these counters,
//! and the bench compare gate regresses on several of them — so the
//! spellings live here (rather than as string literals in the engine)
//! where dashboards, snapshot baselines, and tests agree on them.
//!
//! The byte counters are *honest*: they charge the compact encoded size
//! defined by `weakset_store::wire` (varints, per-replica dot-list
//! dedup), for both the classic `DigestMode::Full` exchange and the
//! Merkle-range descent, so the two modes are comparable on one axis.

/// Counter: anti-entropy rounds fired by the schedule.
pub const ROUNDS: &str = "gossip.rounds";

/// Counter: anti-entropy exchanges initiated (one per origin/peer pair
/// per round, any mode).
pub const EXCHANGES: &str = "gossip.exchanges";

/// Counter: novel dotted entries shipped in deltas and delta batches.
pub const NOVEL_SHIPPED: &str = "gossip.novel_shipped";

/// Counter: push legs skipped because the peer's digest proved it needed
/// nothing.
pub const PUSH_SKIPPED: &str = "gossip.push_skipped";

/// Counter: exchanges that failed — RPC errors, and replies of an
/// unexpected type (a peer that does not speak the protocol).
pub const FAILURES: &str = "gossip.failures";

/// Counter: encoded bytes of digest/summary metadata shipped — version
/// vectors in `Full` mode, range summaries and range replies (minus the
/// leaf entry payloads) in `MerkleRange` mode.
pub const DIGEST_BYTES: &str = "gossip.digest_bytes";

/// Counter: encoded bytes of delta payloads shipped — `MembershipDelta`s
/// in `Full` mode, leaf entries and `DeltaBatch`es in `MerkleRange`
/// mode.
pub const DELTA_BYTES: &str = "gossip.delta_bytes";

/// Counter: round trips spent descending Merkle ranges (excludes the
/// final delta-batch exchange).
pub const RANGE_RPCS: &str = "gossip.range_rpcs";

/// Counter: rounds in which some replica's digest was still dominated by
/// the join of every replica's digest (staleness × rounds integral).
pub const REPLICA_STALE_ROUNDS: &str = "gossip.replica_stale_rounds";

/// Gauge (max): most replicas simultaneously stale in any round.
pub const STALE_REPLICAS_MAX: &str = "gossip.stale_replicas.max";

/// Gauge (max): dots held *only* by currently-crashed replicas — state
/// that would be lost if they never recovered, and the reason
/// [`CONVERGED`] alone cannot certify durability.
pub const UNREPLICATED_DOTS: &str = "gossip.unreplicated_dots";

/// Gauge: 1 when every live replica's digest equals the all-replica
/// join, else 0 (set each round by the convergence probe).
pub const CONVERGED: &str = "gossip.converged";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn names_are_distinct_and_namespaced() {
        let all = [
            ROUNDS,
            EXCHANGES,
            NOVEL_SHIPPED,
            PUSH_SKIPPED,
            FAILURES,
            DIGEST_BYTES,
            DELTA_BYTES,
            RANGE_RPCS,
            REPLICA_STALE_ROUNDS,
            STALE_REPLICAS_MAX,
            UNREPLICATED_DOTS,
            CONVERGED,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("gossip."), "{a} must be namespaced");
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn usable_as_registry_keys() {
        let mut m = MetricsRegistry::new();
        m.incr(ROUNDS);
        m.add(DIGEST_BYTES, 64);
        m.gauge_set(CONVERGED, 1);
        assert_eq!(m.counter(ROUNDS), 1);
        assert_eq!(m.counter(DIGEST_BYTES), 64);
    }
}
