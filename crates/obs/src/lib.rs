//! # weakset-obs
//!
//! The workspace-wide observability layer for the weak-sets
//! reproduction: a zero-dependency metrics registry, a structured event
//! sink keyed by simulated time, and machine-readable benchmark
//! snapshots.
//!
//! The paper's iterator semantics are defined by *observable* run
//! behaviour — which elements are yielded, when an invocation returns,
//! suspends, or fails, and what was reachable at each step. This crate
//! makes that behaviour (and the cost of producing it) first-class
//! data instead of ad-hoc prints:
//!
//! * [`MetricsRegistry`] — named counters, high-water gauges, and
//!   latency recorders. Every layer of the stack (simulator, store,
//!   gossip, iterators, DST) records here; the simulator's `World`
//!   carries one per run.
//! * [`EventSink`] — structured events and spans keyed by simulated
//!   microseconds, disabled by default so quiescent runs pay nothing.
//! * [`ObsSnapshot`] — a frozen, serializable view of a registry plus
//!   named perf *objectives* (each tagged lower- or higher-is-better),
//!   written to `BENCH_<scenario>.json` by `weakset-bench --bin
//!   snapshot` and diffed against checked-in baselines by `--bin
//!   compare`.
//!
//! Everything here is deterministic given deterministic inputs: maps
//! are ordered, serialization is canonical, and no wall-clock time is
//! ever recorded — two runs with the same seed produce byte-identical
//! snapshots. The one deliberate exception is [`telemetry`], the live
//! plane for the threaded (wall-clock) runtime: a scrape-able
//! [`TelemetryHub`], Prometheus text exposition, a [`FlightRecorder`]
//! black box, and a slow-op [`Watchdog`]. The simulator never
//! constructs those types, so simulated runs stay byte-identical.
//!
//! ## Example
//!
//! ```
//! use weakset_obs::{Direction, MetricsRegistry};
//!
//! let mut m = MetricsRegistry::new();
//! m.incr("rpc.sent");
//! m.observe("rpc.latency", 1_500);
//! m.gauge_max("queue.depth", 7);
//!
//! let snap = m
//!     .snapshot("demo", 42)
//!     .with_objective("p50_rpc_us", 1_500.0, Direction::LowerIsBetter);
//! let json = snap.to_json();
//! let back = weakset_obs::ObsSnapshot::from_json(&json).unwrap();
//! assert_eq!(back.to_json(), json);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod causal;
pub mod export;
pub mod gossip;
pub mod json;
pub mod latency;
pub mod registry;
pub mod replay;
pub mod session;
pub mod shard;
pub mod sink;
pub mod snapshot;
pub mod telemetry;

pub use causal::{
    category_of, critical_path, critical_path_of, CausalDag, CriticalPath, PathCategory, SpanNode,
    TraceContext, TraceId,
};
pub use export::chrome_trace;
pub use json::Json;
pub use latency::{LatencyRecorder, LatencySummary};
pub use registry::MetricsRegistry;
pub use shard::{per_shard_stats, shard_key, ShardStats};
pub use sink::{EventSink, ObsEvent, SpanId};
pub use snapshot::{Direction, Objective, ObsSnapshot};
pub use telemetry::{
    http_get, parse_prometheus, prometheus_text, FlightRecorder, HubPublisher, TelemetryHub,
    TelemetryServer, Watchdog, WatchdogGuard,
};

/// One-stop imports for observability users.
pub mod prelude {
    pub use crate::causal::{
        category_of, critical_path, critical_path_of, CausalDag, CriticalPath, PathCategory,
        SpanNode, TraceContext, TraceId,
    };
    pub use crate::export::chrome_trace;
    pub use crate::json::Json;
    pub use crate::latency::{LatencyRecorder, LatencySummary};
    pub use crate::registry::MetricsRegistry;
    pub use crate::shard::{per_shard_stats, shard_key, ShardStats};
    pub use crate::sink::{EventSink, ObsEvent, SpanId};
    pub use crate::snapshot::{Direction, Objective, ObsSnapshot};
    pub use crate::telemetry::{
        http_get, parse_prometheus, prometheus_text, FlightRecorder, HubPublisher, TelemetryHub,
        TelemetryServer, Watchdog, WatchdogGuard,
    };
}
