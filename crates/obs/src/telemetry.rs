//! The live telemetry plane: a scrape-able view of a *running* system.
//!
//! Everything else in this crate is post-hoc — registries are merged at
//! shutdown, snapshots are frozen at end of run, traces are exported
//! after the fact. This module is the exception: it exists so the
//! threaded runtime (real OS threads, wall clock) can be watched *while
//! it runs*, which is what the paper's degraded-but-usable systems need
//! in production. Four pieces:
//!
//! * [`TelemetryHub`] — a shared board that every runtime view
//!   publishes its [`MetricsRegistry`] into on a cadence. Publishing
//!   *replaces* the view's slot (never adds), so the merged reading is
//!   exact up to one cadence of staleness per view and views stay
//!   contention-free between publishes — bounded staleness instead of
//!   per-op locking.
//! * [`prometheus_text`] — renders a snapshot in the Prometheus text
//!   exposition format (version 0.0.4): counters, gauges, and latency
//!   summaries with `quantile` labels.
//! * [`FlightRecorder`] — a fixed-size ring of the most recent
//!   boundary events (rpc outcomes, sends, timer fires, fault
//!   transitions). On trouble — watchdog trip, oracle failure, hung
//!   shutdown — it is dumped as a Perfetto-loadable Chrome-trace file,
//!   so the last moments before the incident are on disk.
//! * [`Watchdog`] — a scanner thread over an in-flight-operation
//!   table. Operations registered via [`Watchdog::guard`] that outlive
//!   the deadline are flagged (`watchdog.slow_op`), recorded into the
//!   flight ring, and trigger one flight-recorder dump.
//!
//! [`TelemetryServer`] ties them together: a `std::net::TcpListener`
//! serving `GET /metrics` (Prometheus text) and `GET /snapshot.json`
//! (the canonical [`ObsSnapshot`] JSON) from a hub, live, mid-run.
//!
//! Unlike the rest of the crate, this module reads the wall clock
//! (`Instant`) — it is only ever wired into the threaded backend; the
//! simulator never constructs these types, so simulator determinism is
//! untouched.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::registry::MetricsRegistry;
use crate::snapshot::ObsSnapshot;

// ---------------------------------------------------------------------
// Well-known metric names
// ---------------------------------------------------------------------

/// Counter: operations flagged by the slow-op watchdog (an operation is
/// flagged at most once).
pub const WATCHDOG_SLOW_OP: &str = "watchdog.slow_op";

/// Counter: watchdog scan passes over the in-flight table.
pub const WATCHDOG_SCANS: &str = "watchdog.scans";

/// Counter: rpcs that failed because no route existed to a live peer —
/// a partition, not a slow peer.
pub const RPC_FAILED_UNREACHABLE: &str = "rpc.failed.unreachable";

/// Counter: rpcs that failed by exhausting the caller's timeout — a
/// slow or wedged peer, not a partition.
pub const RPC_FAILED_TIMEOUT: &str = "rpc.failed.timeout";

/// Counter: rpcs that failed because the node (local or remote) was
/// down or its mailbox closed.
pub const RPC_FAILED_CLOSED: &str = "rpc.failed.closed";

/// Counter: spans still open when a threaded run's event ledger was
/// finished — unbalanced instrumentation, surfaced instead of dropped.
pub const UNCLOSED_SPANS: &str = "trace.unclosed_spans";

/// Counter: HTTP requests answered by the scrape endpoint.
pub const SCRAPES: &str = "telemetry.scrapes";

/// Counter: registry publications into the hub (all views).
pub const PUBLISHES: &str = "telemetry.publishes";

/// Gauge name for a node's mailbox backlog: envelopes posted but not
/// yet picked up by the node thread.
pub fn mailbox_backlog(node: &str) -> String {
    format!("rt.node.{node}.mailbox.backlog")
}

/// Gauge name for a node's queue depth: envelopes accepted but not yet
/// replied to (backlog plus the request currently in the handler).
pub fn queue_depth(node: &str) -> String {
    format!("rt.node.{node}.queue.depth")
}

/// Gauge name for the high-water mark of [`mailbox_backlog`].
pub fn mailbox_backlog_max(node: &str) -> String {
    format!("rt.node.{node}.mailbox.backlog.max")
}

/// Gauge name for the high-water mark of [`queue_depth`].
pub fn queue_depth_max(node: &str) -> String {
    format!("rt.node.{node}.queue.depth.max")
}

/// Store-layer health counter spellings, centralized so dashboards and
/// the store client agree (the store records these on both backends).
pub mod store_health {
    /// Counter: object fetches that returned the record.
    pub const FETCH_OK: &str = "store.fetch.ok";
    /// Counter: object fetches that failed on every candidate.
    pub const FETCH_ERR: &str = "store.fetch.err";
    /// Counter: writes acknowledged by the home node.
    pub const WRITE_OK: &str = "store.write.ok";
    /// Counter: writes that failed.
    pub const WRITE_ERR: &str = "store.write.err";
    /// Counter: best-effort replica sync messages launched.
    pub const REPLICA_SYNC_SENT: &str = "store.replica_sync.sent";
    /// Counter: replica sync messages that could not be launched.
    pub const REPLICA_SYNC_FAILED: &str = "store.replica_sync.failed";
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

/// Maps a dotted metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed `weakset_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("weakset_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a frozen snapshot in the Prometheus text exposition format
/// (version 0.0.4). Counters and gauges map directly; latency
/// populations become summaries with `quantile="0.5"` / `"0.99"`
/// sample lines plus `_count` and `_sum` (the sum is reconstructed as
/// `mean × count` — the summary does not retain the exact total).
pub fn prometheus_text(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let p = prometheus_name(name);
        out.push_str(&format!("# HELP {p} weakset counter {name}\n"));
        out.push_str(&format!("# TYPE {p} counter\n"));
        out.push_str(&format!("{p} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let p = prometheus_name(name);
        out.push_str(&format!("# HELP {p} weakset gauge {name}\n"));
        out.push_str(&format!("# TYPE {p} gauge\n"));
        out.push_str(&format!("{p} {value}\n"));
    }
    for (name, s) in &snap.latencies {
        let p = prometheus_name(name);
        out.push_str(&format!(
            "# HELP {p} weakset latency {name} (microseconds)\n"
        ));
        out.push_str(&format!("# TYPE {p} summary\n"));
        out.push_str(&format!("{p}{{quantile=\"0.5\"}} {}\n", s.p50_us));
        out.push_str(&format!("{p}{{quantile=\"0.99\"}} {}\n", s.p99_us));
        out.push_str(&format!("{p}_sum {}\n", s.mean_us.saturating_mul(s.count)));
        out.push_str(&format!("{p}_count {}\n", s.count));
    }
    out
}

/// Validates Prometheus text exposition and returns the samples as
/// `(name-with-labels, value)` pairs. Used by the CI smoke test to
/// assert the endpoint's output actually parses; strict about the line
/// grammar so a formatting regression fails loudly.
///
/// # Errors
///
/// The offending line and why it does not parse.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample line without a value: {line:?}"))?;
        let bare = name.split('{').next().unwrap_or(name);
        let mut chars = bare.chars();
        let head_ok = chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
        if !head_ok || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(format!("invalid metric name {bare:?} in line {line:?}"));
        }
        if name.contains('{') && !name.ends_with('}') {
            return Err(format!("unterminated label set in line {line:?}"));
        }
        let v: f64 = value
            .parse()
            .map_err(|_| format!("unparseable value {value:?} in line {line:?}"))?;
        out.push((name.to_string(), v));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------

#[derive(Default)]
struct HubInner {
    next_id: AtomicU64,
    /// Last full registry published by each live view, by publisher id.
    slots: Mutex<BTreeMap<u64, MetricsRegistry>>,
    /// Counters owned by the plane itself (watchdog flags, scrape
    /// counts) rather than any one view.
    shared: Mutex<MetricsRegistry>,
    /// Gauges sampled at merge time — atomic cells owned by the
    /// runtime (mailbox backlogs, queue depths), read without any
    /// publish round-trip.
    live: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

/// The shared board runtime views publish their metrics into.
///
/// Cloning is cheap (an `Arc`); all clones see the same board. Each
/// view holds a [`HubPublisher`] and republishes its whole registry at
/// its cadence — so [`TelemetryHub::merged`] is exact up to one
/// cadence of staleness per view, and a crashed view's last publish
/// remains visible instead of vanishing.
#[derive(Clone, Default)]
pub struct TelemetryHub {
    inner: Arc<HubInner>,
}

impl TelemetryHub {
    /// A hub with no publishers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new publisher slot (one per runtime view).
    pub fn register(&self, cadence: Duration) -> HubPublisher {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        HubPublisher {
            hub: self.clone(),
            id,
            cadence,
            last: None,
        }
    }

    /// Mutates the plane-owned shared registry (watchdog and server
    /// counters live here).
    pub fn with_shared(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        f(&mut lock(&self.inner.shared));
    }

    /// Registers a gauge cell sampled at merge time. Re-registering a
    /// name replaces the cell.
    pub fn register_live_gauge(&self, name: &str, cell: Arc<AtomicU64>) {
        lock(&self.inner.live).insert(name.to_string(), cell);
    }

    /// Number of publisher slots handed out so far.
    pub fn publishers(&self) -> u64 {
        self.inner.next_id.load(Ordering::SeqCst)
    }

    /// Folds every published slot, the shared registry, and a sample of
    /// every live gauge into one registry. This is what the scrape
    /// endpoint freezes and serves.
    pub fn merged(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for reg in lock(&self.inner.slots).values() {
            out.merge(reg);
        }
        out.merge(&lock(&self.inner.shared));
        for (name, cell) in lock(&self.inner.live).iter() {
            out.gauge_set(name, cell.load(Ordering::Relaxed));
        }
        out
    }

    /// [`TelemetryHub::merged`] frozen into a snapshot.
    pub fn snapshot(&self, scenario: &str, seed: u64) -> ObsSnapshot {
        self.merged().snapshot(scenario, seed)
    }

    fn publish(&self, id: u64, m: &MetricsRegistry) {
        lock(&self.inner.slots).insert(id, m.clone());
        lock(&self.inner.shared).incr(PUBLISHES);
    }
}

/// One view's handle into the hub. Not `Clone`: every view must own its
/// own slot, or two views would overwrite each other's readings.
pub struct HubPublisher {
    hub: TelemetryHub,
    id: u64,
    cadence: Duration,
    last: Option<Instant>,
}

impl HubPublisher {
    /// Publishes unconditionally, replacing this view's slot.
    pub fn publish(&mut self, m: &MetricsRegistry) {
        self.last = Some(Instant::now());
        self.hub.publish(self.id, m);
    }

    /// Publishes only when at least one cadence has elapsed since the
    /// last publish (a fresh publisher publishes immediately). Returns
    /// whether it published — the per-call cost on the hot path is one
    /// `Instant::now` and a comparison.
    pub fn maybe_publish(&mut self, m: &MetricsRegistry) -> bool {
        let due = match self.last {
            None => true,
            Some(last) => last.elapsed() >= self.cadence,
        };
        if due {
            self.publish(m);
        }
        due
    }

    /// The hub this publisher feeds.
    pub fn hub(&self) -> &TelemetryHub {
        &self.hub
    }

    /// The publish cadence (the staleness bound this view adds).
    pub fn cadence(&self) -> Duration {
        self.cadence
    }
}

// ---------------------------------------------------------------------
// The flight recorder
// ---------------------------------------------------------------------

/// One entry in the flight ring: a boundary event with wall time (in
/// microseconds since the runtime started) and the node or route it
/// concerns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Microseconds since the runtime started.
    pub at_us: u64,
    /// The node, route (`"client->s0"`), or subsystem concerned.
    pub node: String,
    /// Dotted event kind (`"rpc"`, `"fault"`, `"watchdog.slow_op"`…).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

struct FlightInner {
    cap: usize,
    dropped: u64,
    ring: VecDeque<FlightEntry>,
    dump_path: Option<PathBuf>,
    dumped: bool,
}

/// A fixed-size ring buffer of recent boundary events, shared by every
/// view of a runtime (clones share the ring). When something goes
/// wrong, [`FlightRecorder::dump`] writes the ring as a
/// Perfetto-loadable Chrome-trace file — the black box that survives
/// the crash.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl FlightRecorder {
    /// A ring holding at most `capacity` entries; older entries are
    /// evicted (and counted) as new ones arrive.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                cap: capacity.max(1),
                dropped: 0,
                ring: VecDeque::new(),
                dump_path: None,
                dumped: false,
            })),
        }
    }

    /// Configures where [`FlightRecorder::dump`] writes; builder-style.
    pub fn with_dump_path(self, path: impl Into<PathBuf>) -> Self {
        lock(&self.inner).dump_path = Some(path.into());
        self
    }

    /// Appends one entry, evicting the oldest when full.
    pub fn record(&self, at_us: u64, node: &str, kind: &str, detail: &str) {
        let mut g = lock(&self.inner);
        if g.ring.len() == g.cap {
            g.ring.pop_front();
            g.dropped += 1;
        }
        g.ring.push_back(FlightEntry {
            at_us,
            node: node.to_string(),
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Entries currently in the ring, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        lock(&self.inner).ring.iter().cloned().collect()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        lock(&self.inner).ring.len()
    }

    /// True when the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).ring.is_empty()
    }

    /// Entries evicted so far (how much history the ring has forgotten).
    pub fn dropped(&self) -> u64 {
        lock(&self.inner).dropped
    }

    /// Renders the ring as Chrome-trace JSON (Perfetto-loadable):
    /// every entry is an instant event, tracks (`tid`) are one per node
    /// name with `thread_name` metadata, all under `pid` 0.
    pub fn to_chrome_trace(&self) -> String {
        let g = lock(&self.inner);
        // Stable track per node name, in order of first appearance.
        let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
        for e in &g.ring {
            let next = tids.len() as u64;
            tids.entry(e.node.as_str()).or_insert(next);
        }
        let mut events: Vec<Json> = tids
            .iter()
            .map(|(node, tid)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str("thread_name".into())),
                    ("ph".into(), Json::Str("M".into())),
                    ("pid".into(), Json::u64(0)),
                    ("tid".into(), Json::u64(*tid)),
                    (
                        "args".into(),
                        Json::Obj(vec![("name".into(), Json::Str((*node).into()))]),
                    ),
                ])
            })
            .collect();
        for e in &g.ring {
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str(e.kind.clone())),
                ("cat".into(), Json::Str("flight".into())),
                ("ph".into(), Json::Str("i".into())),
                ("ts".into(), Json::u64(e.at_us)),
                ("s".into(), Json::Str("t".into())),
                ("pid".into(), Json::u64(0)),
                ("tid".into(), Json::u64(tids[e.node.as_str()])),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("detail".into(), Json::Str(e.detail.clone())),
                        ("node".into(), Json::Str(e.node.clone())),
                    ]),
                ),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
        .to_pretty()
    }

    /// Writes the ring to `path` (parent directories created).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_trace())
    }

    /// Writes the ring to the configured dump path and returns it.
    /// Subsequent calls overwrite (the latest state wins).
    ///
    /// # Errors
    ///
    /// `NotFound` when no dump path was configured, otherwise
    /// filesystem failures.
    pub fn dump(&self) -> io::Result<PathBuf> {
        let path = lock(&self.inner).dump_path.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "no flight-recorder dump path set")
        })?;
        self.dump_to(&path)?;
        lock(&self.inner).dumped = true;
        Ok(path)
    }

    /// Whether [`FlightRecorder::dump`] has succeeded at least once.
    pub fn has_dumped(&self) -> bool {
        lock(&self.inner).dumped
    }
}

// ---------------------------------------------------------------------
// The slow-op watchdog
// ---------------------------------------------------------------------

struct InflightOp {
    label: String,
    node: String,
    started: Instant,
    flagged: bool,
}

struct WatchdogInner {
    deadline: Duration,
    next_id: AtomicU64,
    inflight: Mutex<BTreeMap<u64, InflightOp>>,
    hub: TelemetryHub,
    flight: Option<FlightRecorder>,
    stop: AtomicBool,
    slow_ops: AtomicU64,
    join: Mutex<Option<JoinHandle<()>>>,
}

/// A scanner thread watching registered in-flight operations.
///
/// Wrap an operation in [`Watchdog::guard`]; if it is still running
/// when the scanner finds it past the deadline, the op is flagged
/// exactly once: `watchdog.slow_op` is bumped on the hub, the flag is
/// recorded into the flight ring, and the flight recorder dumps (first
/// trip only — later trips overwrite nothing that matters, the ring
/// keeps rolling). Cloning shares the same watchdog.
#[derive(Clone)]
pub struct Watchdog {
    inner: Arc<WatchdogInner>,
}

impl Watchdog {
    /// Starts the scanner thread. `scan_every` bounds detection latency
    /// (a slow op is flagged within one scan after its deadline).
    pub fn spawn(
        deadline: Duration,
        scan_every: Duration,
        hub: TelemetryHub,
        flight: Option<FlightRecorder>,
    ) -> Watchdog {
        let inner = Arc::new(WatchdogInner {
            deadline,
            next_id: AtomicU64::new(0),
            inflight: Mutex::new(BTreeMap::new()),
            hub,
            flight,
            stop: AtomicBool::new(false),
            slow_ops: AtomicU64::new(0),
            join: Mutex::new(None),
        });
        let scanner = Arc::clone(&inner);
        let join = thread::Builder::new()
            .name("weakset-watchdog".into())
            .spawn(move || {
                while !scanner.stop.load(Ordering::Relaxed) {
                    Watchdog::scan(&scanner);
                    thread::sleep(scan_every);
                }
            })
            .expect("spawn watchdog thread");
        *lock(&inner.join) = Some(join);
        Watchdog { inner }
    }

    fn scan(inner: &WatchdogInner) {
        inner.hub.with_shared(|m| m.incr(WATCHDOG_SCANS));
        let mut newly_slow: Vec<(String, String, Duration)> = Vec::new();
        {
            let mut inflight = lock(&inner.inflight);
            for op in inflight.values_mut() {
                let elapsed = op.started.elapsed();
                if !op.flagged && elapsed > inner.deadline {
                    op.flagged = true;
                    newly_slow.push((op.label.clone(), op.node.clone(), elapsed));
                }
            }
        }
        if newly_slow.is_empty() {
            return;
        }
        inner
            .slow_ops
            .fetch_add(newly_slow.len() as u64, Ordering::SeqCst);
        inner
            .hub
            .with_shared(|m| m.add(WATCHDOG_SLOW_OP, newly_slow.len() as u64));
        let first_trip = inner.slow_ops.load(Ordering::SeqCst) == newly_slow.len() as u64;
        if let Some(flight) = &inner.flight {
            for (label, node, elapsed) in &newly_slow {
                flight.record(
                    elapsed.as_micros() as u64,
                    node,
                    "watchdog.slow_op",
                    &format!("{label} in flight for {}us", elapsed.as_micros()),
                );
            }
            if first_trip {
                if let Err(e) = flight.dump() {
                    eprintln!("watchdog: flight-recorder dump failed: {e}");
                }
            }
        }
    }

    /// Registers an operation; dropping the guard deregisters it. An op
    /// that outlives the deadline while registered is flagged.
    pub fn guard(&self, node: &str, label: &str) -> WatchdogGuard {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        lock(&self.inner.inflight).insert(
            id,
            InflightOp {
                label: label.to_string(),
                node: node.to_string(),
                started: Instant::now(),
                flagged: false,
            },
        );
        WatchdogGuard {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// Operations flagged so far.
    pub fn slow_ops(&self) -> u64 {
        self.inner.slow_ops.load(Ordering::SeqCst)
    }

    /// The configured deadline.
    pub fn deadline(&self) -> Duration {
        self.inner.deadline
    }

    /// Stops and joins the scanner thread (idempotent; clones of this
    /// watchdog keep answering [`Watchdog::slow_ops`] afterwards).
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(join) = lock(&self.inner.join).take() {
            let _ = join.join();
        }
    }
}

impl Drop for WatchdogInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = lock(&self.join).take() {
            let _ = join.join();
        }
    }
}

/// RAII registration of one in-flight operation (see
/// [`Watchdog::guard`]).
pub struct WatchdogGuard {
    inner: Arc<WatchdogInner>,
    id: u64,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        lock(&self.inner.inflight).remove(&self.id);
    }
}

// ---------------------------------------------------------------------
// The scrape server
// ---------------------------------------------------------------------

/// A minimal HTTP/1.1 endpoint over `std::net::TcpListener` serving a
/// [`TelemetryHub`] live:
///
/// * `GET /metrics` — Prometheus text exposition (version 0.0.4),
/// * `GET /snapshot.json` — the canonical [`ObsSnapshot`] JSON,
///
/// each frozen from [`TelemetryHub::merged`] at request time. Dropping
/// the server stops the accept thread.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept thread. `scenario`/`seed` tag the served
    /// snapshots.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve(
        addr: impl ToSocketAddrs,
        hub: TelemetryHub,
        scenario: &str,
        seed: u64,
    ) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scenario = scenario.to_string();
        let join = thread::Builder::new()
            .name("weakset-telemetry".into())
            .spawn({
                let stop = Arc::clone(&stop);
                move || loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            hub.with_shared(|m| m.incr(SCRAPES));
                            if let Err(e) = handle_request(stream, &hub, &scenario, seed) {
                                eprintln!("telemetry: request failed: {e}");
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        Err(e) => {
                            eprintln!("telemetry: accept failed, stopping: {e}");
                            return;
                        }
                    }
                }
            })?;
        Ok(TelemetryServer {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread (also happens on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_request(
    mut stream: TcpStream,
    hub: &TelemetryHub,
    scenario: &str,
    seed: u64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (we never accept bodies).
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            String::from("GET only\n"),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus_text(&hub.snapshot(scenario, seed)),
            ),
            "/snapshot.json" => (
                "200 OK",
                "application/json; charset=utf-8",
                hub.snapshot(scenario, seed).to_json(),
            ),
            _ => (
                "404 Not Found",
                "text/plain",
                String::from("try /metrics or /snapshot.json\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// A tiny blocking HTTP GET against a telemetry endpoint — what the
/// examples, the rt bench, and the CI smoke test use to scrape without
/// needing `curl` in-process. Returns `(status_code, body)`.
///
/// # Errors
///
/// Connection/read failures, or a response without an HTTP status line.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_names_fit_the_grammar() {
        assert_eq!(prometheus_name("rpc.sent"), "weakset_rpc_sent");
        assert_eq!(
            prometheus_name("rt.node.s0.queue.depth"),
            "weakset_rt_node_s0_queue_depth"
        );
        assert_eq!(prometheus_name("a-b c"), "weakset_a_b_c");
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let mut m = MetricsRegistry::new();
        m.add("rpc.sent", 12);
        m.gauge_set("rt.node.s0.queue.depth", 3);
        for us in [100, 200, 900] {
            m.observe("rpc.latency", us);
        }
        let text = prometheus_text(&m.snapshot("t", 1));
        let samples = parse_prometheus(&text).expect("own output parses");
        assert!(samples
            .iter()
            .any(|(n, v)| n == "weakset_rpc_sent" && *v == 12.0));
        assert!(samples
            .iter()
            .any(|(n, v)| n == "weakset_rpc_latency{quantile=\"0.5\"}" && *v == 200.0));
        assert!(samples
            .iter()
            .any(|(n, v)| n == "weakset_rpc_latency_count" && *v == 3.0));
        assert!(text.contains("# TYPE weakset_rpc_latency summary"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("weakset_ok 1\n").is_ok());
        assert!(parse_prometheus("9starts_with_digit 1\n").is_err());
        assert!(parse_prometheus("no_value\n").is_err());
        assert!(parse_prometheus("name not-a-number\n").is_err());
        assert!(parse_prometheus("bad{quantile=\"0.5\" 7\n").is_err());
    }

    #[test]
    fn hub_publishes_replace_not_add() {
        let hub = TelemetryHub::new();
        let mut p = hub.register(Duration::ZERO);
        let mut m = MetricsRegistry::new();
        m.add("ops", 5);
        p.publish(&m);
        m.add("ops", 5);
        p.publish(&m); // re-publish of the same view must not double-count
        assert_eq!(hub.merged().counter("ops"), 10);

        let mut p2 = hub.register(Duration::ZERO);
        let mut m2 = MetricsRegistry::new();
        m2.add("ops", 1);
        p2.publish(&m2);
        assert_eq!(hub.merged().counter("ops"), 11, "views merge");
        assert_eq!(hub.publishers(), 2);
    }

    #[test]
    fn hub_cadence_bounds_publish_rate() {
        let hub = TelemetryHub::new();
        let mut p = hub.register(Duration::from_secs(3600));
        let m = MetricsRegistry::new();
        assert!(p.maybe_publish(&m), "first publish is immediate");
        assert!(!p.maybe_publish(&m), "second inside the cadence is skipped");
        assert_eq!(hub.merged().counter(PUBLISHES), 1);
    }

    #[test]
    fn hub_samples_live_gauges_at_merge_time() {
        let hub = TelemetryHub::new();
        let cell = Arc::new(AtomicU64::new(0));
        hub.register_live_gauge(&queue_depth("s0"), Arc::clone(&cell));
        cell.store(7, Ordering::SeqCst);
        assert_eq!(hub.merged().gauge("rt.node.s0.queue.depth"), 7);
        cell.store(2, Ordering::SeqCst);
        assert_eq!(hub.merged().gauge("rt.node.s0.queue.depth"), 2);
    }

    #[test]
    fn flight_ring_evicts_oldest_and_exports_perfetto() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(i, "client->s0", "rpc", &format!("call {i}"));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let entries = fr.entries();
        assert_eq!(entries[0].at_us, 2, "oldest two evicted");
        let json = fr.to_chrome_trace();
        let parsed = Json::parse(&json).expect("perfetto dump parses");
        let events = match parsed.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            _ => panic!("missing traceEvents"),
        };
        // One thread_name metadata record plus three instants.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("i"));
    }

    #[test]
    fn flight_dump_requires_a_path_then_writes_it() {
        let fr = FlightRecorder::new(8);
        fr.record(1, "n", "k", "d");
        assert_eq!(fr.dump().unwrap_err().kind(), io::ErrorKind::NotFound);
        assert!(!fr.has_dumped());
        let path = std::env::temp_dir().join("weakset-flight-test/flight.json");
        let fr = fr.with_dump_path(&path);
        let written = fr.dump().expect("dump with a configured path");
        assert_eq!(written, path);
        assert!(fr.has_dumped());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn watchdog_flags_slow_ops_once_and_dumps_the_flight_ring() {
        let hub = TelemetryHub::new();
        let path =
            std::env::temp_dir().join(format!("weakset-watchdog-test-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fr = FlightRecorder::new(32).with_dump_path(&path);
        let wd = Watchdog::spawn(
            Duration::from_millis(20),
            Duration::from_millis(5),
            hub.clone(),
            Some(fr.clone()),
        );
        {
            let _slow = wd.guard("client", "net.rpc client->s0");
            let fast = wd.guard("client", "net.rpc client->s1");
            drop(fast);
            thread::sleep(Duration::from_millis(120));
        }
        wd.stop();
        assert_eq!(wd.slow_ops(), 1, "only the op that outlived the deadline");
        assert_eq!(hub.merged().counter(WATCHDOG_SLOW_OP), 1);
        assert!(hub.merged().counter(WATCHDOG_SCANS) >= 1);
        assert!(fr.has_dumped(), "first trip dumps the ring");
        let text = std::fs::read_to_string(&path).expect("dump exists on disk");
        assert!(text.contains("watchdog.slow_op"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn server_serves_metrics_and_snapshot_live() {
        let hub = TelemetryHub::new();
        let mut p = hub.register(Duration::ZERO);
        let mut m = MetricsRegistry::new();
        m.add("rpc.sent", 3);
        m.observe("rpc.latency", 150);
        p.publish(&m);
        let server =
            TelemetryServer::serve("127.0.0.1:0", hub.clone(), "live", 9).expect("bind ephemeral");
        let addr = server.addr();

        let (status, body) =
            http_get(addr, "/metrics", Duration::from_secs(2)).expect("scrape /metrics");
        assert_eq!(status, 200);
        let samples = parse_prometheus(&body).expect("exposition parses");
        assert!(samples
            .iter()
            .any(|(n, v)| n == "weakset_rpc_sent" && *v == 3.0));

        // The endpoint is live: publish more, scrape again.
        m.add("rpc.sent", 2);
        p.publish(&m);
        let (_, body) = http_get(addr, "/metrics", Duration::from_secs(2)).unwrap();
        assert!(parse_prometheus(&body)
            .unwrap()
            .iter()
            .any(|(n, v)| n == "weakset_rpc_sent" && *v == 5.0));

        let (status, body) =
            http_get(addr, "/snapshot.json", Duration::from_secs(2)).expect("scrape snapshot");
        assert_eq!(status, 200);
        let snap = ObsSnapshot::from_json(&body).expect("snapshot parses");
        assert_eq!(snap.scenario, "live");
        assert_eq!(snap.counters.get("rpc.sent"), Some(&5));
        assert!(snap.counters.get(SCRAPES).copied().unwrap_or(0) >= 2);

        let (status, _) = http_get(addr, "/nope", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn rpc_failure_names_are_distinct_and_namespaced() {
        let all = [
            RPC_FAILED_UNREACHABLE,
            RPC_FAILED_TIMEOUT,
            RPC_FAILED_CLOSED,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("rpc.failed."), "{a} must extend rpc.failed");
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(WATCHDOG_SLOW_OP.starts_with("watchdog."));
        assert!(UNCLOSED_SPANS.starts_with("trace."));
        assert_eq!(mailbox_backlog("s0"), "rt.node.s0.mailbox.backlog");
        assert_eq!(queue_depth_max("s1"), "rt.node.s1.queue.depth.max");
    }
}
