//! Canonical Chrome-trace-event export.
//!
//! Converts a recorded event log into the Chrome trace-event JSON
//! format (the `traceEvents` array form), loadable in Perfetto and
//! `chrome://tracing`. Spans become complete (`"ph": "X"`) events and
//! point events become instants (`"ph": "i"`). The writer is the
//! crate's canonical [`Json`] emitter over deterministically ordered
//! input, so two same-seed runs export byte-identical files.
//!
//! Mapping choices:
//!
//! * `pid` is the trace id — Perfetto groups each computation (trace)
//!   as one "process", which is exactly the cross-node span tree.
//! * `tid` is the span id, so every span gets its own track; parent
//!   links are preserved in `args.parent` for tooling.
//! * Timestamps are simulated microseconds, the native unit of the
//!   trace-event format.

use crate::causal::CausalDag;
use crate::json::Json;
use crate::sink::ObsEvent;

/// Renders an event log as canonical Chrome-trace JSON. Events with no
/// trace context fall into `pid` 0.
pub fn chrome_trace(events: &[ObsEvent]) -> String {
    let dag = CausalDag::from_events(events);
    let mut out: Vec<Json> = Vec::new();
    for e in events {
        match e.span {
            Some(id) if e.kind != "span.end" && e.kind != "span.unclosed" => {
                // A span-begin edge: emit one complete event using the
                // end time reconstructed by the DAG.
                let node = match dag.span(id) {
                    Some(n) => n,
                    None => continue,
                };
                let mut args = vec![("detail".to_string(), Json::Str(node.detail.clone()))];
                if let Some(p) = node.parent {
                    args.push(("parent".to_string(), Json::u64(p.0)));
                }
                out.push(Json::Obj(vec![
                    ("name".to_string(), Json::Str(node.kind.clone())),
                    ("cat".to_string(), Json::Str("weakset".to_string())),
                    ("ph".to_string(), Json::Str("X".to_string())),
                    ("ts".to_string(), Json::u64(node.begin_us)),
                    ("dur".to_string(), Json::u64(node.duration_us())),
                    (
                        "pid".to_string(),
                        Json::u64(node.trace.map(|t| t.0).unwrap_or(0)),
                    ),
                    ("tid".to_string(), Json::u64(id.0)),
                    ("args".to_string(), Json::Obj(args)),
                ]));
            }
            Some(_) => {} // end edges are folded into the X event
            None => {
                let mut args = vec![("detail".to_string(), Json::Str(e.detail.clone()))];
                if let Some(p) = e.parent {
                    args.push(("parent".to_string(), Json::u64(p.0)));
                }
                out.push(Json::Obj(vec![
                    ("name".to_string(), Json::Str(e.kind.clone())),
                    ("cat".to_string(), Json::Str("weakset".to_string())),
                    ("ph".to_string(), Json::Str("i".to_string())),
                    ("ts".to_string(), Json::u64(e.at_us)),
                    ("s".to_string(), Json::Str("g".to_string())),
                    (
                        "pid".to_string(),
                        Json::u64(e.trace.map(|t| t.0).unwrap_or(0)),
                    ),
                    (
                        "tid".to_string(),
                        Json::u64(e.parent.map(|p| p.0).unwrap_or(0)),
                    ),
                    ("args".to_string(), Json::Obj(args)),
                ]));
            }
        }
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(out)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::EventSink;

    fn sample_log() -> Vec<ObsEvent> {
        let mut s = EventSink::enabled();
        let root = s.begin_span(0, "iter.fig4.invocation", "fig4", None);
        let rpc = s.begin_span(2, "net.rpc", "n0->n1", Some(root));
        s.event_in(3, "net.rpc.failed", "timeout", Some(rpc));
        s.end_span(6, rpc.span);
        s.end_span(8, root.span);
        s.finish(9);
        s.take_events()
    }

    #[test]
    fn exports_spans_as_complete_events() {
        let json = chrome_trace(&sample_log());
        let parsed = Json::parse(&json).expect("exporter output parses");
        let events = match parsed.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            _ => panic!("missing traceEvents array"),
        };
        // Two spans (X) and one instant (i).
        assert_eq!(events.len(), 3);
        let root = &events[0];
        assert_eq!(root.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(root.get("dur").and_then(Json::as_u64), Some(8));
        let rpc = &events[1];
        assert_eq!(rpc.get("dur").and_then(Json::as_u64), Some(4));
        assert_eq!(
            rpc.get("pid").and_then(Json::as_u64),
            root.get("pid").and_then(Json::as_u64),
            "same trace, same pid"
        );
        let inst = &events[2];
        assert_eq!(inst.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            inst.get("name").and_then(Json::as_str),
            Some("net.rpc.failed")
        );
    }

    #[test]
    fn export_is_byte_identical_for_identical_logs() {
        assert_eq!(chrome_trace(&sample_log()), chrome_trace(&sample_log()));
    }

    #[test]
    fn empty_log_exports_an_empty_array() {
        let json = chrome_trace(&[]);
        let parsed = Json::parse(&json).unwrap();
        match parsed.get("traceEvents") {
            Some(Json::Arr(a)) => assert!(a.is_empty()),
            _ => panic!("missing traceEvents"),
        }
    }
}
