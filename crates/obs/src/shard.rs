//! Per-shard metric naming and roll-up.
//!
//! Sharded deployments record one metric family per shard under the
//! `shard.<index>.` prefix (read latency, read outcomes, envelope queue
//! depth). This module owns the naming convention — so producers and
//! dashboards cannot drift apart — and folds a registry's per-shard
//! families back into [`ShardStats`] rows for reports and objectives.

use crate::latency::LatencyRecorder;
use crate::registry::MetricsRegistry;

/// The canonical metric name for `name` scoped to one shard:
/// `shard.<index>.<name>`.
pub fn shard_key(shard: usize, name: &str) -> String {
    format!("shard.{shard}.{name}")
}

/// Splits a `shard.<index>.<rest>` metric name back into its shard
/// index and unscoped name. Returns `None` for names outside the
/// per-shard namespace.
pub fn parse_shard_key(key: &str) -> Option<(usize, &str)> {
    let rest = key.strip_prefix("shard.")?;
    let (idx, name) = rest.split_once('.')?;
    // Reject non-canonical indices ("007") so parse∘format is identity.
    let shard: usize = idx.parse().ok()?;
    if shard_key(shard, name) != key {
        return None;
    }
    Some((shard, name))
}

/// One shard's read-path health, rolled up from a registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Successful membership reads (`shard.<i>.read.ok`).
    pub reads_ok: u64,
    /// Failed membership reads (`shard.<i>.read.err`).
    pub reads_err: u64,
    /// Median read latency in microseconds (`shard.<i>.read.us`), if
    /// any reads were observed.
    pub read_p50_us: Option<u64>,
    /// Peak number of this shard's requests queued in one batch
    /// envelope flush (`shard.<i>.queue.depth.max`).
    pub queue_depth_max: u64,
}

/// Rolls a registry's `shard.*` families up into one [`ShardStats`] per
/// shard index, in index order. Shards that recorded nothing are
/// absent.
pub fn per_shard_stats(m: &MetricsRegistry) -> Vec<ShardStats> {
    let mut out: Vec<ShardStats> = Vec::new();
    let slot = |out: &mut Vec<ShardStats>, shard: usize| -> usize {
        match out.binary_search_by_key(&shard, |s| s.shard) {
            Ok(i) => i,
            Err(i) => {
                out.insert(
                    i,
                    ShardStats {
                        shard,
                        ..ShardStats::default()
                    },
                );
                i
            }
        }
    };
    for (key, value) in m.counters() {
        if let Some((shard, name)) = parse_shard_key(key) {
            let i = slot(&mut out, shard);
            match name {
                "read.ok" => out[i].reads_ok = value,
                "read.err" => out[i].reads_err = value,
                _ => {}
            }
        }
    }
    for (key, value) in m.gauges() {
        if let Some((shard, "queue.depth.max")) = parse_shard_key(key) {
            let i = slot(&mut out, shard);
            out[i].queue_depth_max = value;
        }
    }
    for (key, rec) in m.latencies() {
        if let Some((shard, "read.us")) = parse_shard_key(key) {
            let i = slot(&mut out, shard);
            out[i].read_p50_us = rec.clone().p50();
        }
    }
    out
}

/// Total latency observations across every shard's `read.us` family —
/// a cheap "how many sharded reads happened" roll-up.
pub fn total_shard_reads(m: &MetricsRegistry) -> u64 {
    m.latencies()
        .filter(|(key, _)| matches!(parse_shard_key(key), Some((_, "read.us"))))
        .map(|(_, rec)| LatencyRecorder::len(rec) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_format_round_trips() {
        assert_eq!(shard_key(3, "read.us"), "shard.3.read.us");
        assert_eq!(parse_shard_key("shard.3.read.us"), Some((3, "read.us")));
        assert_eq!(
            parse_shard_key("shard.12.queue.depth.max"),
            Some((12, "queue.depth.max"))
        );
        assert_eq!(parse_shard_key("store.read.us"), None);
        assert_eq!(parse_shard_key("shard.x.read.us"), None);
        assert_eq!(
            parse_shard_key("shard.007.read.us"),
            None,
            "non-canonical index"
        );
        assert_eq!(parse_shard_key("shard.3"), None, "no trailing name");
    }

    #[test]
    fn stats_roll_up_per_shard_families() {
        let mut m = MetricsRegistry::new();
        m.add(&shard_key(0, "read.ok"), 5);
        m.add(&shard_key(0, "read.err"), 1);
        m.observe(&shard_key(0, "read.us"), 200);
        m.observe(&shard_key(0, "read.us"), 400);
        m.gauge_max(&shard_key(0, "queue.depth.max"), 7);
        m.add(&shard_key(2, "read.ok"), 3);
        // Unrelated metrics must not leak in.
        m.add("store.read.quorum.contacts", 99);
        m.gauge_max("sim.queue.depth.max", 50);

        let stats = per_shard_stats(&m);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].shard, 0);
        assert_eq!(stats[0].reads_ok, 5);
        assert_eq!(stats[0].reads_err, 1);
        assert_eq!(stats[0].read_p50_us, Some(200));
        assert_eq!(stats[0].queue_depth_max, 7);
        assert_eq!(stats[1].shard, 2);
        assert_eq!(stats[1].reads_ok, 3);
        assert_eq!(stats[1].read_p50_us, None);
        assert_eq!(total_shard_reads(&m), 2);
    }
}
