//! Well-known metric names for the record/replay bridge.
//!
//! A replayed run drives the simulator from a recording of a real
//! (threaded) run, so it has its own instrumentation surface: how many
//! log entries were consumed, substituted, or re-executed — and, most
//! importantly, whether the simulated run ever *diverged* from the log.
//! The names live here (rather than as string literals in
//! `weakset-dst`) so dashboards, snapshot baselines, and tests agree on
//! the spelling, matching how the rest of the workspace treats metric
//! names as a shared contract.
//!
//! Divergence is a first-class signal, never an ignored soft error:
//! replay bumps [`DIVERGENCE`] once per mismatch and records the detail
//! alongside, so a zero counter *is* the determinism claim.

/// Counter: log/sim mismatches detected during replay (payload hash
/// differs, pinned winner unavailable, alignment marker missing…). Any
/// non-zero value means the replay is not a faithful reproduction.
pub const DIVERGENCE: &str = "replay.divergence";

/// Counter: recorded rpcs re-executed against the simulated services.
pub const RPC_REPLAYED: &str = "replay.rpc.replayed";

/// Counter: recorded rpc *failures* substituted from the log instead of
/// re-executed (the sim network is healthy; the failure is injected).
pub const RPC_SUBSTITUTED: &str = "replay.rpc.substituted";

/// Counter: `wait_any` completions pinned to the recorded winner.
pub const WAIT_PINNED: &str = "replay.wait.pinned";

/// Counter: recorded fault-table transitions applied to the simulated
/// topology (reachability cuts/heals, node down/up).
pub const FAULT_APPLIED: &str = "replay.fault.applied";

/// Counter: log entries consumed (all kinds, including informational).
pub const ENTRIES_CONSUMED: &str = "replay.entries.consumed";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn names_are_distinct_and_namespaced() {
        let all = [
            DIVERGENCE,
            RPC_REPLAYED,
            RPC_SUBSTITUTED,
            WAIT_PINNED,
            FAULT_APPLIED,
            ENTRIES_CONSUMED,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("replay."), "{a} must be namespaced");
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn usable_as_registry_keys() {
        let mut m = MetricsRegistry::new();
        m.incr(DIVERGENCE);
        m.add(ENTRIES_CONSUMED, 10);
        assert_eq!(m.counter(DIVERGENCE), 1);
        assert_eq!(m.counter(ENTRIES_CONSUMED), 10);
    }
}
