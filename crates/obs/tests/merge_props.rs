//! Property tests for registry and latency merging.
//!
//! The live telemetry hub folds per-view registries in whatever order
//! the views happened to publish, and re-folds on every scrape. That is
//! only sound if `MetricsRegistry::merge` behaves like a commutative,
//! associative fold: counters are sums, gauges are maxima, and latency
//! populations are multiset unions whose quantiles do not depend on
//! concatenation order. These tests pin exactly that.
//!
//! Equality is asserted on snapshots, not raw registries: a
//! `LatencyRecorder` stores its population as an insertion-ordered
//! `Vec`, so two recorders holding the same multiset in different
//! orders are `!=` even though every quantile agrees. The snapshot
//! (sorted summaries, ordered maps) is the canonical observable form —
//! and the form the scrape endpoint actually serves.

use proptest::prelude::*;
use weakset_obs::{LatencyRecorder, MetricsRegistry};

/// One registry mutation: `kind % 3` picks counter-add / gauge-max /
/// latency-observe. Names are drawn from a pool of four so distinct
/// registries collide on names often (the interesting case for merge).
type Op = (u8, u8, u64);

const NAMES: [&str; 4] = ["rpc.sent", "rt.read.us", "queue.depth", "gossip.rounds"];

fn registry_of(ops: &[Op]) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    for &(kind, name, value) in ops {
        let name = NAMES[(name % 4) as usize];
        match kind % 3 {
            0 => m.add(name, value),
            1 => m.gauge_max(name, value),
            _ => m.observe(name, value),
        }
    }
    m
}

fn merged(regs: &[MetricsRegistry]) -> MetricsRegistry {
    let mut out = MetricsRegistry::new();
    for r in regs {
        out.merge(r);
    }
    out
}

fn canon(m: &MetricsRegistry) -> String {
    m.snapshot("merge-props", 0).to_json()
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), 0u64..10_000), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) and merge(b, a) serve identical snapshots.
    #[test]
    fn registry_merge_is_commutative(oa in ops(), ob in ops()) {
        let a = registry_of(&oa);
        let b = registry_of(&ob);
        prop_assert_eq!(canon(&merged(&[a.clone(), b.clone()])), canon(&merged(&[b, a])));
    }

    /// (a ⊔ b) ⊔ c and a ⊔ (b ⊔ c) serve identical snapshots.
    #[test]
    fn registry_merge_is_associative(oa in ops(), ob in ops(), oc in ops()) {
        let a = registry_of(&oa);
        let b = registry_of(&ob);
        let c = registry_of(&oc);
        let mut left = MetricsRegistry::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        let mut bc = MetricsRegistry::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut right = MetricsRegistry::new();
        right.merge(&a);
        right.merge(&bc);
        prop_assert_eq!(canon(&left), canon(&right));
    }

    /// Merging an empty registry changes nothing (identity element).
    #[test]
    fn empty_registry_is_the_merge_identity(oa in ops()) {
        let a = registry_of(&oa);
        let mut with_empty = a.clone();
        with_empty.merge(&MetricsRegistry::new());
        prop_assert_eq!(canon(&with_empty), canon(&a));
    }

    /// Many views merged in arbitrary order — the hub's exact situation
    /// — always serve the same quantiles. The permutation is derived
    /// from a seed via repeated rotation+swap so proptest shrinks it.
    #[test]
    fn quantiles_are_stable_under_any_merge_order(
        all in proptest::collection::vec(ops(), 2..6),
        perm_seed in any::<u64>(),
    ) {
        let regs: Vec<MetricsRegistry> = all.iter().map(|o| registry_of(o)).collect();
        let baseline = canon(&merged(&regs));
        let mut shuffled = regs;
        let mut s = perm_seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        prop_assert_eq!(canon(&merged(&shuffled)), baseline);
    }

    /// LatencyRecorder::merge is a multiset union: count, sum, and
    /// every quantile agree regardless of merge direction, and merging
    /// equals recording the combined population directly.
    #[test]
    fn latency_merge_is_a_multiset_union(
        xs in proptest::collection::vec(0u64..100_000, 0..32),
        ys in proptest::collection::vec(0u64..100_000, 0..32),
    ) {
        let rec = |samples: &[u64]| {
            let mut r = LatencyRecorder::new();
            for &s in samples {
                r.record(s);
            }
            r
        };
        let mut ab = rec(&xs);
        ab.merge(&rec(&ys));
        let mut ba = rec(&ys);
        ba.merge(&rec(&xs));
        let combined: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        let mut direct = rec(&combined);
        prop_assert_eq!(ab.summary(), ba.summary());
        prop_assert_eq!(ab.summary(), direct.summary());
        prop_assert_eq!(ab.sum(), direct.sum());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ab.quantile(q), ba.quantile(q));
        }
    }
}
