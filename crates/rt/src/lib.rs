//! # weakset-rt
//!
//! A thread-based runtime for weak sets: the same iterator semantics as
//! the simulator-backed crate, but over real OS threads, a crossbeam
//! message channel, and a wall-clock scheduler.
//!
//! The simulator gives determinism; this crate gives *adversarial
//! nondeterminism*. Mutator threads and a reachability fault injector
//! race the iterator, and every recorded run is checked against the
//! paper's specifications — conformance must hold for whatever
//! interleaving the OS produces, which is exactly the property the
//! paper's `constraint`/`ensures` style is supposed to deliver.
//!
//! * [`server::SetServer`] — one thread owning the set, serving a
//!   channel protocol with injected delays, exposing a ground-truth
//!   version log.
//! * [`titer::ThreadedElements`] — snapshot / grow-only / optimistic
//!   iterators with a [`titer::ThreadObserver`] for conformance.
//! * [`stress`] — scripted scenarios mixing mutators and fault flips.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod proto;
pub mod server;
pub mod stress;
pub mod titer;

/// One-stop imports for threaded-runtime users.
pub mod prelude {
    pub use crate::proto::{Client, Disconnected, Elem, Request, Response, VersionedSet};
    pub use crate::server::{ServerConfig, SetServer};
    pub use crate::stress::{run_scenario, MutatorProfile, Scenario, StressResult};
    pub use crate::titer::{RtSemantics, RtStep, ThreadObserver, ThreadedElements};
}
