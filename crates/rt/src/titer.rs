//! Threaded `elements` iterators and their conformance observer.
//!
//! The same three weak semantics as the simulator crate, but over real OS
//! threads: mutators and fault injectors run concurrently on other
//! threads while the iterator works. Conformance must hold for *every*
//! interleaving the scheduler produces — that is the point of this crate.

use crate::proto::{Client, Disconnected, Elem, VersionedSet};
use crate::server::{SharedLog, SharedReach};
use std::collections::BTreeSet;
use std::time::Duration;
use weakset_spec::prelude::{Computation, Outcome, Recorder, SetValue, State};
use weakset_spec::value::ElemId;

/// Which semantics a [`ThreadedElements`] provides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtSemantics {
    /// Snapshot at first invocation; pessimistic failures (Figures 1/3/4).
    Snapshot,
    /// Current membership each invocation; pessimistic (Figure 5).
    GrowOnly,
    /// Current membership each invocation; never fails, blocks (Figure 6).
    Optimistic,
}

/// One invocation's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtStep {
    /// An element was yielded.
    Yielded(Elem),
    /// Normal termination.
    Done,
    /// The failure exception (never for [`RtSemantics::Optimistic`]).
    Failed,
    /// No progress possible now; resume later (optimistic only).
    Blocked,
}

impl RtStep {
    fn outcome(self) -> Outcome {
        match self {
            RtStep::Yielded(e) => Outcome::Yielded(ElemId(e)),
            RtStep::Done => Outcome::Returned,
            RtStep::Failed => Outcome::Failed,
            RtStep::Blocked => Outcome::Blocked,
        }
    }
}

/// Conformance observer over the threaded server's shared log — the
/// thread-world twin of `weakset::conformance::RunObserver`, with the
/// same linearization rules (first-invocation anchoring, window-floor
/// clamping, evidence-merged accessibility).
#[derive(Debug)]
pub struct ThreadObserver {
    recorder: Option<Recorder>,
    log: SharedLog,
    unreachable: SharedReach,
    seen: u64,
    floor: u64,
    initialized: bool,
}

impl ThreadObserver {
    /// Creates an observer over a server's log and fault table.
    pub fn new(log: SharedLog, unreachable: SharedReach) -> Self {
        ThreadObserver {
            recorder: None,
            log,
            unreachable,
            seen: 0,
            floor: 0,
            initialized: false,
        }
    }

    fn latest(&self) -> u64 {
        self.log.lock().last().map_or(0, |v| v.version)
    }

    fn members_at(&self, version: u64) -> BTreeSet<Elem> {
        self.log
            .lock()
            .iter()
            .find(|v| v.version == version)
            .map(|v| v.members.clone())
            .unwrap_or_default()
    }

    fn universe(&self) -> BTreeSet<Elem> {
        let mut u = BTreeSet::new();
        for v in self.log.lock().iter() {
            u.extend(v.members.iter().copied());
        }
        u
    }

    fn sample_accessible(&self, reach: &[Elem], unreach: &[Elem]) -> SetValue {
        let down = self.unreachable.lock().clone();
        let mut acc: SetValue = self
            .universe()
            .into_iter()
            .filter(|e| !down.contains(e))
            .map(ElemId)
            .collect();
        for &e in reach {
            acc.insert(ElemId(e));
        }
        for &e in unreach {
            acc.remove(ElemId(e));
        }
        acc
    }

    fn to_set(members: &BTreeSet<Elem>) -> SetValue {
        members.iter().copied().map(ElemId).collect()
    }

    /// Marks the start of an invocation (raises the linearization floor).
    pub fn mark_start(&mut self) {
        let latest = self.latest();
        if latest > self.floor {
            self.floor = latest;
        }
    }

    /// Records a completed invocation.
    pub fn record(
        &mut self,
        step: RtStep,
        claimed_version: u64,
        confirmed_reachable: &[Elem],
        confirmed_unreachable: &[Elem],
    ) {
        let version = claimed_version.max(self.floor);
        if !self.initialized {
            self.seen = version;
            self.initialized = true;
        }
        // Feed intervening log states as mutation states.
        if version > self.seen {
            for v in (self.seen + 1)..=version {
                let members = Self::to_set(&self.members_at(v));
                let st = State {
                    accessible: self.sample_accessible(&[], &[]),
                    members,
                };
                if let Some(r) = &mut self.recorder {
                    r.observe_state(st);
                }
            }
            self.seen = version;
        }
        let pre = State {
            members: Self::to_set(&self.members_at(version)),
            accessible: self.sample_accessible(confirmed_reachable, confirmed_unreachable),
        };
        let rec = match &mut self.recorder {
            Some(r) => r,
            None => {
                self.recorder = Some(Recorder::new(pre.clone()));
                self.recorder.as_mut().expect("just installed")
            }
        };
        if !rec.run_open() {
            rec.observe_state(pre.clone());
            rec.begin_run();
        } else {
            rec.observe_state(pre.clone());
        }
        rec.record_invocation(pre, step.outcome());
        self.floor = self.latest();
    }

    /// Finishes observation, returning the computation.
    pub fn finish(mut self) -> Computation {
        let latest = self.latest();
        if self.initialized && latest > self.seen {
            for v in (self.seen + 1)..=latest {
                let members = Self::to_set(&self.members_at(v));
                let st = State {
                    accessible: self.sample_accessible(&[], &[]),
                    members,
                };
                if let Some(r) = &mut self.recorder {
                    r.observe_state(st);
                }
            }
        }
        match self.recorder {
            Some(r) => r.finish(),
            None => Computation::default(),
        }
    }
}

/// A threaded `elements` iterator.
#[derive(Debug)]
pub struct ThreadedElements {
    client: Client,
    semantics: RtSemantics,
    snapshot: Option<VersionedSet>,
    yielded: BTreeSet<Elem>,
    terminated: bool,
    observer: Option<ThreadObserver>,
    computation: Option<Computation>,
    /// Optimistic: rounds before reporting [`RtStep::Blocked`].
    pub block_attempts: usize,
    /// Optimistic: real-time pause between rounds.
    pub retry_interval: Duration,
}

impl ThreadedElements {
    /// Creates an iterator over the server behind `client`.
    pub fn new(client: Client, semantics: RtSemantics) -> Self {
        ThreadedElements {
            client,
            semantics,
            snapshot: None,
            yielded: BTreeSet::new(),
            terminated: false,
            observer: None,
            computation: None,
            block_attempts: 3,
            retry_interval: Duration::from_micros(200),
        }
    }

    /// Attaches a conformance observer.
    pub fn observe(&mut self, observer: ThreadObserver) {
        self.observer = Some(observer);
    }

    /// Returns the recorded computation (after the run ends or on
    /// demand).
    pub fn take_computation(&mut self) -> Option<Computation> {
        if let Some(obs) = self.observer.take() {
            self.computation = Some(obs.finish());
        }
        self.computation.take()
    }

    /// Elements yielded so far.
    pub fn yielded(&self) -> &BTreeSet<Elem> {
        &self.yielded
    }

    fn record(&mut self, step: RtStep, version: u64, reach: &[Elem], unreach: &[Elem]) -> RtStep {
        if let Some(obs) = &mut self.observer {
            obs.record(step, version, reach, unreach);
        }
        if matches!(step, RtStep::Done | RtStep::Failed) {
            if let Some(obs) = self.observer.take() {
                self.computation = Some(obs.finish());
            }
        }
        step
    }

    fn membership(&mut self) -> Result<VersionedSet, Disconnected> {
        match self.semantics {
            RtSemantics::Snapshot => {
                if self.snapshot.is_none() {
                    self.snapshot = Some(self.client.snapshot()?);
                }
                Ok(self.snapshot.clone().expect("snapshot just taken"))
            }
            RtSemantics::GrowOnly | RtSemantics::Optimistic => self.client.snapshot(),
        }
    }

    /// One invocation.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server shut down mid-run.
    #[allow(clippy::should_implement_trait)] // fallible: returns Result, not Option
    pub fn next(&mut self) -> Result<RtStep, Disconnected> {
        if self.terminated {
            return Ok(RtStep::Done);
        }
        if let Some(obs) = &mut self.observer {
            obs.mark_start();
        }
        let rounds = if self.semantics == RtSemantics::Optimistic {
            self.block_attempts.max(1)
        } else {
            1
        };
        let mut last_version = 0;
        let mut last_unreach: Vec<Elem> = Vec::new();
        for round in 0..rounds {
            if round > 0 {
                std::thread::sleep(self.retry_interval);
            }
            let snap = self.membership()?;
            last_version = snap.version;
            let candidates: Vec<Elem> = snap
                .members
                .iter()
                .copied()
                .filter(|e| !self.yielded.contains(e))
                .collect();
            if candidates.is_empty() {
                self.terminated = true;
                return Ok(self.record(RtStep::Done, snap.version, &[], &[]));
            }
            let mut unreach = Vec::new();
            for e in candidates {
                if self.client.fetch(e)? {
                    self.yielded.insert(e);
                    return Ok(self.record(RtStep::Yielded(e), snap.version, &[e], &unreach));
                }
                unreach.push(e);
            }
            last_unreach = unreach;
        }
        match self.semantics {
            RtSemantics::Optimistic => {
                Ok(self.record(RtStep::Blocked, last_version, &[], &last_unreach))
            }
            _ => {
                self.terminated = true;
                Ok(self.record(RtStep::Failed, last_version, &[], &last_unreach))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, SetServer};
    use weakset_spec::checker::{check_computation, Figure};

    fn server() -> SetServer {
        SetServer::spawn(ServerConfig {
            seed: 5,
            max_delay_us: 0,
        })
    }

    #[test]
    fn snapshot_drains_and_conforms() {
        let srv = server();
        let c = srv.client();
        c.add(1).unwrap();
        c.add(2).unwrap();
        let mut it = ThreadedElements::new(srv.client(), RtSemantics::Snapshot);
        it.observe(ThreadObserver::new(srv.log(), srv.unreachable_table()));
        let mut got = Vec::new();
        loop {
            match it.next().unwrap() {
                RtStep::Yielded(e) => got.push(e),
                RtStep::Done => break,
                other => panic!("{other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        let comp = it.take_computation().unwrap();
        check_computation(Figure::Fig4, &comp).assert_ok();
        srv.shutdown();
    }

    #[test]
    fn snapshot_misses_mid_run_addition() {
        let srv = server();
        let c = srv.client();
        c.add(1).unwrap();
        let mut it = ThreadedElements::new(srv.client(), RtSemantics::Snapshot);
        it.observe(ThreadObserver::new(srv.log(), srv.unreachable_table()));
        assert_eq!(it.next().unwrap(), RtStep::Yielded(1));
        c.add(2).unwrap();
        assert_eq!(it.next().unwrap(), RtStep::Done);
        let comp = it.take_computation().unwrap();
        check_computation(Figure::Fig4, &comp).assert_ok();
        assert!(!check_computation(Figure::Fig5, &comp).is_ok());
        srv.shutdown();
    }

    #[test]
    fn grow_only_picks_up_additions_and_fails_on_unreachable() {
        let srv = server();
        let c = srv.client();
        c.add(1).unwrap();
        let mut it = ThreadedElements::new(srv.client(), RtSemantics::GrowOnly);
        it.observe(ThreadObserver::new(srv.log(), srv.unreachable_table()));
        assert_eq!(it.next().unwrap(), RtStep::Yielded(1));
        c.add(2).unwrap();
        c.set_reachable(2, false).unwrap();
        assert_eq!(it.next().unwrap(), RtStep::Failed);
        let comp = it.take_computation().unwrap();
        check_computation(Figure::Fig5, &comp).assert_ok();
        srv.shutdown();
    }

    #[test]
    fn optimistic_blocks_then_resumes() {
        let srv = server();
        let c = srv.client();
        c.add(1).unwrap();
        c.set_reachable(1, false).unwrap();
        let mut it = ThreadedElements::new(srv.client(), RtSemantics::Optimistic);
        it.observe(ThreadObserver::new(srv.log(), srv.unreachable_table()));
        it.block_attempts = 2;
        it.retry_interval = Duration::from_micros(10);
        assert_eq!(it.next().unwrap(), RtStep::Blocked);
        c.set_reachable(1, true).unwrap();
        assert_eq!(it.next().unwrap(), RtStep::Yielded(1));
        assert_eq!(it.next().unwrap(), RtStep::Done);
        let comp = it.take_computation().unwrap();
        check_computation(Figure::Fig6, &comp).assert_ok();
        srv.shutdown();
    }

    #[test]
    fn fused_after_done() {
        let srv = server();
        let mut it = ThreadedElements::new(srv.client(), RtSemantics::GrowOnly);
        assert_eq!(it.next().unwrap(), RtStep::Done);
        assert_eq!(it.next().unwrap(), RtStep::Done);
        srv.shutdown();
    }
}
