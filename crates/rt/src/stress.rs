//! Concurrency stress scenarios: mutators and fault injectors on real
//! threads racing an observed iterator.
//!
//! Every scenario returns the recorded computation so tests can assert
//! conformance for whatever interleaving the OS scheduler produced.

use crate::proto::Elem;
use crate::server::{ServerConfig, SetServer};
use crate::titer::{RtSemantics, RtStep, ThreadObserver, ThreadedElements};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::time::Duration;
use weakset_spec::prelude::Computation;

/// What the mutator threads are allowed to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutatorProfile {
    /// No mutations (immutable environment — Figures 1/3).
    Quiescent,
    /// Additions only (Figure 5's constraint).
    GrowOnly,
    /// Additions and removals (Figures 4/6).
    Churn,
}

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Iterator semantics under test.
    pub semantics: RtSemantics,
    /// Mutator behaviour.
    pub profile: MutatorProfile,
    /// Concurrent mutator threads.
    pub mutators: usize,
    /// Mutations attempted per mutator.
    pub ops_per_mutator: usize,
    /// Elements preloaded before the run.
    pub initial_elems: usize,
    /// Whether a fault-injector thread flips reachability during the run.
    pub inject_faults: bool,
    /// RNG seed (thread interleaving still varies; this fixes the op
    /// streams).
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            semantics: RtSemantics::Optimistic,
            profile: MutatorProfile::Churn,
            mutators: 2,
            ops_per_mutator: 30,
            initial_elems: 10,
            inject_faults: false,
            seed: 0,
        }
    }
}

/// The outcome of a stress run.
#[derive(Debug)]
pub struct StressResult {
    /// Elements yielded, in order.
    pub yields: Vec<Elem>,
    /// The terminal (or final observed) step.
    pub final_step: RtStep,
    /// The recorded computation for conformance checking.
    pub computation: Computation,
}

/// Runs one scenario to completion.
pub fn run_scenario(s: &Scenario) -> StressResult {
    let server = SetServer::spawn(ServerConfig {
        seed: s.seed,
        max_delay_us: 20,
    });
    let setup = server.client();
    for e in 0..s.initial_elems as Elem {
        setup.add(e).expect("setup add");
    }

    let mut mutator_handles = Vec::new();
    for m in 0..s.mutators {
        let c = server.client();
        let profile = s.profile;
        let ops = s.ops_per_mutator;
        let initial = s.initial_elems as Elem;
        let seed = s.seed.wrapping_add(m as u64 + 1);
        mutator_handles.push(std::thread::spawn(move || {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut next_new = initial + 1000 * (m as Elem + 1);
            for _ in 0..ops {
                match profile {
                    MutatorProfile::Quiescent => break,
                    MutatorProfile::GrowOnly => {
                        let _ = c.add(next_new);
                        next_new += 1;
                    }
                    MutatorProfile::Churn => {
                        if rng.gen_bool(0.6) {
                            let _ = c.add(next_new);
                            next_new += 1;
                        } else {
                            // Remove something that might exist.
                            let victim = if rng.gen_bool(0.5) && next_new > initial {
                                next_new.saturating_sub(1)
                            } else {
                                rng.gen_range(0..initial.max(1))
                            };
                            let _ = c.remove(victim);
                        }
                    }
                }
                std::thread::sleep(Duration::from_micros(rng.gen_range(0..100)));
            }
        }));
    }

    let fault_handle = if s.inject_faults {
        let c = server.client();
        let seed = s.seed.wrapping_add(777);
        let initial = s.initial_elems as Elem;
        Some(std::thread::spawn(move || {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            for _ in 0..40 {
                let e = rng.gen_range(0..initial.max(1));
                let _ = c.set_reachable(e, false);
                std::thread::sleep(Duration::from_micros(rng.gen_range(20..120)));
                let _ = c.set_reachable(e, true);
            }
        }))
    } else {
        None
    };

    let mut it = ThreadedElements::new(server.client(), s.semantics);
    it.observe(ThreadObserver::new(
        server.log(),
        server.unreachable_table(),
    ));
    it.block_attempts = 3;
    it.retry_interval = Duration::from_micros(100);

    let mut yields = Vec::new();
    let mut consecutive_blocks = 0;
    let mut final_step = RtStep::Done;
    // Bound the run: grow-only iterators may never terminate while
    // producers outpace them, and optimistic ones may block forever if a
    // fault sticks; 10_000 invocations is far past every scenario here.
    for _ in 0..10_000 {
        match it.next().expect("server alive") {
            RtStep::Yielded(e) => {
                consecutive_blocks = 0;
                yields.push(e);
            }
            RtStep::Blocked => {
                consecutive_blocks += 1;
                final_step = RtStep::Blocked;
                if consecutive_blocks > 20 {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            step @ (RtStep::Done | RtStep::Failed) => {
                final_step = step;
                break;
            }
        }
    }

    for h in mutator_handles {
        h.join().expect("mutator thread");
    }
    if let Some(h) = fault_handle {
        h.join().expect("fault thread");
    }
    let computation = it.take_computation().expect("observer attached");
    server.shutdown();
    StressResult {
        yields,
        final_step,
        computation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_spec::checker::{check_computation, Figure};
    use weakset_spec::specs::fig6;

    #[test]
    fn quiescent_snapshot_conforms_to_fig1_and_fig3() {
        let r = run_scenario(&Scenario {
            semantics: RtSemantics::Snapshot,
            profile: MutatorProfile::Quiescent,
            mutators: 0,
            initial_elems: 20,
            inject_faults: false,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(r.final_step, RtStep::Done);
        assert_eq!(r.yields.len(), 20);
        check_computation(Figure::Fig1, &r.computation).assert_ok();
        check_computation(Figure::Fig3, &r.computation).assert_ok();
    }

    #[test]
    fn churning_snapshot_conforms_to_fig4() {
        for seed in 0..4 {
            let r = run_scenario(&Scenario {
                semantics: RtSemantics::Snapshot,
                profile: MutatorProfile::Churn,
                seed,
                ..Default::default()
            });
            assert_eq!(r.final_step, RtStep::Done);
            check_computation(Figure::Fig4, &r.computation).assert_ok();
        }
    }

    #[test]
    fn growing_set_conforms_to_fig5() {
        for seed in 0..4 {
            let r = run_scenario(&Scenario {
                semantics: RtSemantics::GrowOnly,
                profile: MutatorProfile::GrowOnly,
                mutators: 2,
                ops_per_mutator: 15,
                seed,
                ..Default::default()
            });
            assert_eq!(r.final_step, RtStep::Done);
            check_computation(Figure::Fig5, &r.computation).assert_ok();
            // Everything the mutators added must eventually be yielded.
            assert!(r.yields.len() >= 10 + 30);
        }
    }

    #[test]
    fn churn_with_faults_conforms_to_fig6() {
        for seed in 0..4 {
            let r = run_scenario(&Scenario {
                semantics: RtSemantics::Optimistic,
                profile: MutatorProfile::Churn,
                inject_faults: true,
                seed,
                ..Default::default()
            });
            let conf = check_computation(Figure::Fig6, &r.computation);
            conf.assert_ok();
            for run in &r.computation.runs {
                assert!(fig6::yields_were_members(&r.computation, run));
            }
            // Optimistic runs never fail.
            assert_ne!(r.final_step, RtStep::Failed);
        }
    }

    #[test]
    fn optimistic_under_faults_without_churn_still_terminates_or_blocks() {
        let r = run_scenario(&Scenario {
            semantics: RtSemantics::Optimistic,
            profile: MutatorProfile::Quiescent,
            mutators: 0,
            initial_elems: 15,
            inject_faults: true,
            seed: 9,
            ..Default::default()
        });
        check_computation(Figure::Fig6, &r.computation).assert_ok();
        assert!(matches!(r.final_step, RtStep::Done | RtStep::Blocked));
    }
}
