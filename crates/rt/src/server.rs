//! The threaded set server: one OS thread owning the set, serving
//! requests from a crossbeam channel with injected random delays.

use crate::proto::{Client, Elem, Envelope, Request, Response, VersionedSet};
use crossbeam_channel::unbounded;
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Seed for the delay-injection RNG.
    pub seed: u64,
    /// Maximum random delay injected before serving each request
    /// (microseconds). 0 disables delays.
    pub max_delay_us: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            seed: 0,
            max_delay_us: 50,
        }
    }
}

/// The omniscient ground-truth log shared with conformance observers:
/// every membership version in order.
pub type SharedLog = Arc<Mutex<Vec<VersionedSet>>>;

/// The shared reachability table (fault injection), readable by
/// observers.
pub type SharedReach = Arc<Mutex<BTreeSet<Elem>>>;

/// A running threaded set server.
pub struct SetServer {
    client: Client,
    log: SharedLog,
    unreachable: SharedReach,
    handle: Option<JoinHandle<()>>,
}

impl SetServer {
    /// Spawns the server thread.
    pub fn spawn(config: ServerConfig) -> SetServer {
        let (tx, rx) = unbounded::<Envelope>();
        let log: SharedLog = Arc::new(Mutex::new(vec![VersionedSet {
            version: 0,
            members: BTreeSet::new(),
        }]));
        let unreachable: SharedReach = Arc::new(Mutex::new(BTreeSet::new()));
        let thread_log = Arc::clone(&log);
        let thread_unreachable = Arc::clone(&unreachable);
        let handle = std::thread::spawn(move || {
            let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
            let mut members: BTreeSet<Elem> = BTreeSet::new();
            let mut version = 0u64;
            let mut lock_holders: BTreeSet<u64> = BTreeSet::new();
            while let Ok(Envelope { req, reply }) = rx.recv() {
                if config.max_delay_us > 0 {
                    let us = rng.gen_range(0..=config.max_delay_us);
                    std::thread::sleep(Duration::from_micros(us));
                }
                let resp = match req {
                    Request::Add(e) => {
                        if !lock_holders.is_empty() {
                            let _ = reply.send(Response::Locked);
                            continue;
                        }
                        if members.insert(e) {
                            version += 1;
                            thread_log.lock().push(VersionedSet {
                                version,
                                members: members.clone(),
                            });
                        }
                        Response::Version(version)
                    }
                    Request::Remove(e) => {
                        if !lock_holders.is_empty() {
                            let _ = reply.send(Response::Locked);
                            continue;
                        }
                        if members.remove(&e) {
                            version += 1;
                            thread_log.lock().push(VersionedSet {
                                version,
                                members: members.clone(),
                            });
                        }
                        Response::Version(version)
                    }
                    Request::Snapshot => Response::Snapshot(VersionedSet {
                        version,
                        members: members.clone(),
                    }),
                    Request::Fetch(e) => {
                        if thread_unreachable.lock().contains(&e) {
                            Response::Unreachable(e)
                        } else {
                            Response::Fetched(e)
                        }
                    }
                    Request::SetReachable(e, reachable) => {
                        let mut u = thread_unreachable.lock();
                        if reachable {
                            u.remove(&e);
                        } else {
                            u.insert(e);
                        }
                        Response::Ok
                    }
                    Request::AcquireLock(token) => {
                        lock_holders.insert(token);
                        Response::Ok
                    }
                    Request::ReleaseLock(token) => {
                        lock_holders.remove(&token);
                        Response::Ok
                    }
                    Request::Shutdown => {
                        let _ = reply.send(Response::Ok);
                        break;
                    }
                };
                // A client that gave up is fine; keep serving.
                let _ = reply.send(resp);
            }
        });
        SetServer {
            client: Client { tx },
            log,
            unreachable,
            handle: Some(handle),
        }
    }

    /// A new client handle.
    pub fn client(&self) -> Client {
        self.client.clone()
    }

    /// The ground-truth version log (observer access).
    pub fn log(&self) -> SharedLog {
        Arc::clone(&self.log)
    }

    /// The reachability fault table (observer access).
    pub fn unreachable_table(&self) -> SharedReach {
        Arc::clone(&self.unreachable)
    }

    /// Shuts the server down and joins its thread.
    pub fn shutdown(mut self) {
        let _ = self.client.call(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SetServer {
    fn drop(&mut self) {
        // Non-blocking teardown: closing the channel ends the loop; the
        // thread is detached rather than joined (C-DTOR-BLOCK). Prefer
        // calling `shutdown` explicitly.
        let _ = self.client.tx.send(Envelope {
            req: Request::Shutdown,
            reply: crossbeam_channel::bounded(1).0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_snapshot_round_trip() {
        let server = SetServer::spawn(ServerConfig {
            seed: 1,
            max_delay_us: 0,
        });
        let c = server.client();
        assert_eq!(c.add(1).unwrap(), 1);
        assert_eq!(c.add(1).unwrap(), 1); // duplicate: no version bump
        assert_eq!(c.add(2).unwrap(), 2);
        let s = c.snapshot().unwrap();
        assert_eq!(s.version, 2);
        assert_eq!(s.members.len(), 2);
        assert_eq!(c.remove(1).unwrap(), 3);
        assert_eq!(c.remove(1).unwrap(), 3);
        server.shutdown();
    }

    #[test]
    fn log_records_every_version() {
        let server = SetServer::spawn(ServerConfig {
            seed: 2,
            max_delay_us: 0,
        });
        let c = server.client();
        c.add(5).unwrap();
        c.remove(5).unwrap();
        let log = server.log();
        let log = log.lock();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].version, 0);
        assert!(log[1].members.contains(&5));
        assert!(log[2].members.is_empty());
        drop(log);
        server.shutdown();
    }

    #[test]
    fn reachability_faults_apply() {
        let server = SetServer::spawn(ServerConfig::default());
        let c = server.client();
        c.add(7).unwrap();
        assert!(c.fetch(7).unwrap());
        c.set_reachable(7, false).unwrap();
        assert!(!c.fetch(7).unwrap());
        c.set_reachable(7, true).unwrap();
        assert!(c.fetch(7).unwrap());
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_serialize_at_server() {
        let server = SetServer::spawn(ServerConfig {
            seed: 3,
            max_delay_us: 10,
        });
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = server.client();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    c.add(t * 100 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let c = server.client();
        let snap = c.snapshot().unwrap();
        assert_eq!(snap.members.len(), 100);
        assert_eq!(snap.version, 100);
        // Log versions are strictly increasing and gap-free.
        let log = server.log();
        let log = log.lock();
        for (i, v) in log.iter().enumerate() {
            assert_eq!(v.version, i as u64);
        }
        drop(log);
        server.shutdown();
    }

    #[test]
    fn calls_after_shutdown_disconnect() {
        let server = SetServer::spawn(ServerConfig::default());
        let c = server.client();
        server.shutdown();
        assert!(c.add(1).is_err());
    }
}
