//! The request/reply protocol between threaded clients and the set
//! server.

use crossbeam_channel::{bounded, Receiver, Sender};
use std::collections::BTreeSet;

/// Element identity in the threaded runtime (matches
/// `weakset_spec::value::ElemId`'s raw representation).
pub type Elem = u64;

/// A versioned membership snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedSet {
    /// Monotonic version (0 = initial empty set).
    pub version: u64,
    /// Membership at that version.
    pub members: BTreeSet<Elem>,
}

/// Requests a client can send.
#[derive(Debug)]
pub enum Request {
    /// Add an element; replies [`Response::Version`].
    Add(Elem),
    /// Remove an element; replies [`Response::Version`].
    Remove(Elem),
    /// Read the membership atomically; replies [`Response::Snapshot`].
    Snapshot,
    /// Fetch an element's object; replies [`Response::Fetched`] or
    /// [`Response::Unreachable`].
    Fetch(Elem),
    /// Fault injection: mark an element (un)reachable; replies
    /// [`Response::Ok`].
    SetReachable(Elem, bool),
    /// Block mutations while held (strong baseline); replies
    /// [`Response::Ok`].
    AcquireLock(u64),
    /// Release a read lock; replies [`Response::Ok`].
    ReleaseLock(u64),
    /// Stop the server; replies [`Response::Ok`].
    Shutdown,
}

/// Replies from the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Mutation applied (or was a no-op); the resulting version.
    Version(u64),
    /// The atomic membership snapshot.
    Snapshot(VersionedSet),
    /// The fetch succeeded.
    Fetched(Elem),
    /// The element is currently unreachable.
    Unreachable(Elem),
    /// Generic acknowledgement.
    Ok,
    /// The set is read-locked; the mutation was refused.
    Locked,
}

/// One in-flight request envelope.
pub(crate) struct Envelope {
    pub req: Request,
    pub reply: Sender<Response>,
}

/// A client handle: a cloneable sender into the server's queue.
#[derive(Clone, Debug)]
pub struct Client {
    pub(crate) tx: Sender<Envelope>,
}

/// The server went away (shut down) while a request was outstanding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("set server disconnected")
    }
}

impl std::error::Error for Disconnected {}

impl Client {
    /// Sends one request and waits for its reply.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn call(&self, req: Request) -> Result<Response, Disconnected> {
        let (tx, rx): (Sender<Response>, Receiver<Response>) = bounded(1);
        self.tx
            .send(Envelope { req, reply: tx })
            .map_err(|_| Disconnected)?;
        rx.recv().map_err(|_| Disconnected)
    }

    /// Adds an element, returning the new version.
    ///
    /// Use [`Client::try_add`] when a reader may hold the lock.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    ///
    /// # Panics
    ///
    /// Panics if the mutation is refused by a read lock.
    pub fn add(&self, e: Elem) -> Result<u64, Disconnected> {
        match self.call(Request::Add(e))? {
            Response::Version(v) => Ok(v),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Adds an element; `Ok(None)` means a read lock refused it.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn try_add(&self, e: Elem) -> Result<Option<u64>, Disconnected> {
        match self.call(Request::Add(e))? {
            Response::Version(v) => Ok(Some(v)),
            Response::Locked => Ok(None),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Removes an element, returning the new version.
    ///
    /// Use [`Client::try_remove`] when a reader may hold the lock.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    ///
    /// # Panics
    ///
    /// Panics if the mutation is refused by a read lock.
    pub fn remove(&self, e: Elem) -> Result<u64, Disconnected> {
        match self.call(Request::Remove(e))? {
            Response::Version(v) => Ok(v),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Removes an element; `Ok(None)` means a read lock refused it.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn try_remove(&self, e: Elem) -> Result<Option<u64>, Disconnected> {
        match self.call(Request::Remove(e))? {
            Response::Version(v) => Ok(Some(v)),
            Response::Locked => Ok(None),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Acquires the read lock (strong baseline).
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn acquire_lock(&self, token: u64) -> Result<(), Disconnected> {
        match self.call(Request::AcquireLock(token))? {
            Response::Ok => Ok(()),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Releases the read lock.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn release_lock(&self, token: u64) -> Result<(), Disconnected> {
        match self.call(Request::ReleaseLock(token))? {
            Response::Ok => Ok(()),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Atomic membership snapshot.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn snapshot(&self) -> Result<VersionedSet, Disconnected> {
        match self.call(Request::Snapshot)? {
            Response::Snapshot(s) => Ok(s),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Fetches an element; `Ok(true)` = fetched, `Ok(false)` =
    /// unreachable.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn fetch(&self, e: Elem) -> Result<bool, Disconnected> {
        match self.call(Request::Fetch(e))? {
            Response::Fetched(_) => Ok(true),
            Response::Unreachable(_) => Ok(false),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Marks an element (un)reachable.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the server has shut down.
    pub fn set_reachable(&self, e: Elem, reachable: bool) -> Result<(), Disconnected> {
        match self.call(Request::SetReachable(e, reachable))? {
            Response::Ok => Ok(()),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }
}
