//! The strong baseline under real threads: a read-locked iteration
//! stalls concurrent writers for its whole duration (§3.1's cost,
//! observed on the OS scheduler rather than the simulator).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use weakset_rt::prelude::*;
use weakset_spec::checker::{Checker, Figure};
use weakset_spec::constraint::ConstraintKind;

#[test]
fn locked_iteration_stalls_concurrent_writers() {
    let server = SetServer::spawn(ServerConfig {
        seed: 42,
        max_delay_us: 20,
    });
    let setup = server.client();
    for e in 0..20u64 {
        setup.add(e).unwrap();
    }

    // Writer threads hammer try_add until told to stop, counting
    // refusals and successes.
    let stop = Arc::new(AtomicBool::new(false));
    let stalled = Arc::new(AtomicU64::new(0));
    let succeeded = Arc::new(AtomicU64::new(0));
    let mut writers = Vec::new();
    for w in 0..3u64 {
        let c = server.client();
        let stop = Arc::clone(&stop);
        let stalled = Arc::clone(&stalled);
        let succeeded = Arc::clone(&succeeded);
        writers.push(std::thread::spawn(move || {
            let mut next = 1_000 * (w + 1);
            while !stop.load(Ordering::Relaxed) {
                match c.try_add(next).expect("server alive") {
                    Some(_) => {
                        succeeded.fetch_add(1, Ordering::Relaxed);
                        next += 1;
                    }
                    None => {
                        stalled.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }));
    }

    // The locked "iteration": acquire, snapshot, fetch each member,
    // release. Writers are refused throughout.
    let reader = server.client();
    reader.acquire_lock(7).unwrap();
    let snap = reader.snapshot().unwrap();
    let version_at_lock = snap.version;
    let mut obs = ThreadObserver::new(server.log(), server.unreachable_table());
    obs.mark_start();
    let mut yielded = Vec::new();
    for &e in &snap.members {
        assert!(reader.fetch(e).unwrap());
        obs.record(RtStep::Yielded(e), snap.version, &[e], &[]);
        yielded.push(e);
        std::thread::sleep(Duration::from_micros(100));
    }
    obs.record(RtStep::Done, snap.version, &[], &[]);
    // Membership cannot have moved while the lock was held.
    assert_eq!(reader.snapshot().unwrap().version, version_at_lock);
    reader.release_lock(7).unwrap();

    // Let the writers land a few successes after release, then stop.
    std::thread::sleep(Duration::from_millis(5));
    stop.store(true, Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }

    // Writers may have squeezed a few adds in before the lock landed.
    assert!(yielded.len() >= 20);
    assert_eq!(yielded.len(), snap.members.len());
    assert!(
        stalled.load(Ordering::Relaxed) > 0,
        "some writer must have been refused during the lock window"
    );
    assert!(
        succeeded.load(Ordering::Relaxed) > 0,
        "writers must make progress after release"
    );

    // The locked run conforms to Figure 3 under the relaxed per-run
    // immutability constraint (mutations resumed only after the run).
    let comp = obs.finish();
    Checker::new(Figure::Fig3)
        .with_constraint(ConstraintKind::ImmutableDuringRuns)
        .check(&comp)
        .assert_ok();
    server.shutdown();
}

#[test]
fn lock_is_reentrant_per_token_set() {
    let server = SetServer::spawn(ServerConfig {
        seed: 1,
        max_delay_us: 0,
    });
    let c = server.client();
    c.acquire_lock(1).unwrap();
    c.acquire_lock(2).unwrap();
    assert_eq!(c.try_add(9).unwrap(), None);
    c.release_lock(1).unwrap();
    assert_eq!(c.try_add(9).unwrap(), None, "second holder still blocks");
    c.release_lock(2).unwrap();
    assert_eq!(c.try_add(9).unwrap(), Some(1));
    server.shutdown();
}
