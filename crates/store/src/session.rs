//! Causal session tokens: the client-side dependency vector behind
//! [`crate::client::ReadPolicy::CausalSession`].
//!
//! A [`SessionToken`] records, per collection, the highest primary
//! *version* and (for gossip deployments) the dot-level *version vector*
//! this session has observed — through its own mutations and through
//! earlier reads. A replica serving a session read compares its state
//! against the token and answers [`crate::msg::StoreMsg::SessionBehind`]
//! instead of serving stale data, which is what turns the token into
//! read-your-writes and monotonic-reads guarantees (Mostéfaoui, Perrin &
//! Raynal: causal consistency for any object with a sequential
//! specification).
//!
//! Plain [`crate::server::StoreServer`] replicas gate on the scalar
//! version: mutations are serialized at the primary and replica sync
//! ships full snapshots, so `replica.version >= floor` implies the
//! replica has applied every mutation the session depends on. Gossip
//! replicas cannot use totals (two replicas can cover *disjoint* dots
//! with equal totals), so they gate on version-vector dominance and
//! stamp their replies with their digest
//! ([`crate::msg::StoreMsg::SessionStamped`]) to teach the client
//! dot-level clocks.

use crate::dotted::VersionVector;
use crate::object::CollectionId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A per-client causal dependency vector, carried on session reads and
/// mutations via [`crate::msg::StoreMsg::WithSession`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionToken {
    /// Per-collection scalar version floors (primary-serialized stores).
    floors: BTreeMap<CollectionId, u64>,
    /// Per-collection dot-level clocks (gossip/CRDT stores).
    clocks: BTreeMap<CollectionId, VersionVector>,
}

impl SessionToken {
    /// A fresh session with no dependencies.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scalar version floor for a collection (0 when never observed).
    pub fn floor(&self, coll: CollectionId) -> u64 {
        self.floors.get(&coll).copied().unwrap_or(0)
    }

    /// The dot-level clock for a collection, if any gossip replica has
    /// stamped one into the session.
    pub fn clock(&self, coll: CollectionId) -> Option<&VersionVector> {
        self.clocks.get(&coll)
    }

    /// Raises the scalar floor for a collection (floors never move down).
    pub fn observe_version(&mut self, coll: CollectionId, version: u64) {
        let floor = self.floors.entry(coll).or_insert(0);
        *floor = (*floor).max(version);
    }

    /// Joins a replica's digest into the session clock for a collection.
    pub fn observe_clock(&mut self, coll: CollectionId, clock: &VersionVector) {
        self.clocks.entry(coll).or_default().join(clock);
    }

    /// True when the session has observed nothing yet — every replica
    /// trivially satisfies it.
    pub fn is_empty(&self) -> bool {
        self.floors.is_empty() && self.clocks.is_empty()
    }

    /// Number of collections with recorded dependencies.
    pub fn len(&self) -> usize {
        let mut colls: std::collections::BTreeSet<CollectionId> =
            self.floors.keys().copied().collect();
        colls.extend(self.clocks.keys().copied());
        colls.len()
    }

    /// Approximate wire size of the token in bytes.
    pub fn wire_size(&self) -> usize {
        self.floors.len() * 16
            + self
                .clocks
                .values()
                .map(|c| 8 + c.len() * 16)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::node::NodeId;

    #[test]
    fn floors_are_monotone() {
        let mut t = SessionToken::new();
        let c = CollectionId(1);
        assert_eq!(t.floor(c), 0);
        assert!(t.is_empty());
        t.observe_version(c, 5);
        t.observe_version(c, 3); // must not regress
        assert_eq!(t.floor(c), 5);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clocks_join() {
        let mut t = SessionToken::new();
        let c = CollectionId(2);
        let mut a = VersionVector::new();
        a.advance(NodeId(1));
        let mut b = VersionVector::new();
        b.advance(NodeId(2));
        b.advance(NodeId(2));
        t.observe_clock(c, &a);
        t.observe_clock(c, &b);
        let clock = t.clock(c).unwrap();
        assert!(clock.dominates(&a));
        assert!(clock.dominates(&b));
        assert_eq!(clock.total(), 3);
        assert!(t.wire_size() > 0);
    }
}
