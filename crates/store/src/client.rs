//! The repository client: typed operations over the message protocol.

use crate::collection::MemberEntry;
use crate::dotted::VersionVector;
use crate::msg::StoreMsg;
use crate::object::{CollectionId, ObjectId, ObjectRecord};
use crate::query::Query;
use crate::session::SessionToken;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};
use weakset_obs::session as session_names;
use weakset_obs::telemetry::store_health;
use weakset_runtime::prelude::*;
use weakset_sim::net::{BatchBuffer, BatchEnvelope, NetError};
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_sim::world::{ReplyToken, World};

/// The world type every store deployment runs in.
pub type StoreWorld = World<StoreMsg>;

/// The execution environment every store client runs against: either
/// the simulator ([`StoreWorld`] coerces to it) or the threaded
/// backend (`weakset_runtime::threaded::ThreadedRuntime<StoreMsg>`).
pub type StoreRt = dyn Runtime<StoreMsg>;

/// Why a store operation failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreError {
    /// The network-level failure exception.
    Net(NetError),
    /// The collection is read-locked and the mutation was refused.
    Locked,
    /// The object does not exist where it was expected.
    NotFound(ObjectId),
    /// The collection does not exist on the contacted node.
    NoSuchCollection(CollectionId),
    /// Too few replicas answered to form a quorum.
    NoQuorum {
        /// Replies received.
        got: usize,
        /// Replies needed.
        need: usize,
    },
    /// The server answered with something the protocol does not allow
    /// here.
    Protocol,
    /// Every reachable replica is behind the session's dependency floor
    /// ([`ReadPolicy::CausalSession`]) and the wait deadline expired.
    SessionBehind {
        /// The best version any contacted replica had.
        have: u64,
        /// The session's required floor.
        need: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Net(e) => write!(f, "network failure: {e}"),
            StoreError::Locked => write!(f, "collection is read-locked"),
            StoreError::NotFound(id) => write!(f, "object {id} not found"),
            StoreError::NoSuchCollection(c) => write!(f, "collection {c} not found"),
            StoreError::NoQuorum { got, need } => {
                write!(f, "quorum not reached: {got} of {need} replies")
            }
            StoreError::Protocol => write!(f, "unexpected protocol reply"),
            StoreError::SessionBehind { have, need } => {
                write!(f, "replicas behind session floor: have {have}, need {need}")
            }
        }
    }
}

impl Error for StoreError {}

impl From<NetError> for StoreError {
    fn from(e: NetError) -> Self {
        StoreError::Net(e)
    }
}

impl StoreError {
    /// True when the error is the paper's "failure" exception (a
    /// communication failure), as opposed to a logical error.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            StoreError::Net(_) | StoreError::NoQuorum { .. } | StoreError::SessionBehind { .. }
        )
    }
}

/// Where a collection lives: its primary (home) node and any secondary
/// replicas.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionRef {
    /// The collection's id.
    pub id: CollectionId,
    /// Primary replica: mutations are serialized here.
    pub home: NodeId,
    /// Secondary replicas, updated best-effort after each mutation.
    pub replicas: Vec<NodeId>,
}

impl CollectionRef {
    /// A collection with no secondary replicas.
    pub fn unreplicated(id: CollectionId, home: NodeId) -> Self {
        CollectionRef {
            id,
            home,
            replicas: Vec::new(),
        }
    }

    /// Every node hosting a replica (home first).
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.replicas.len());
        v.push(self.home);
        v.extend(self.replicas.iter().copied());
        v
    }
}

/// How membership reads pick replicas — the paper's pessimistic/optimistic
/// split applied to the membership list itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReadPolicy {
    /// Read the primary only; fail if it is unreachable (pessimistic).
    #[default]
    Primary,
    /// Read the closest reachable replica; data may be stale (optimistic).
    Any,
    /// Read a majority and take the newest version (pessimistic but
    /// partition-tolerant up to minority loss).
    Quorum,
    /// Leaderless: read every reachable replica and take the *union* of
    /// their memberships (newest version wins for the version number).
    /// One reachable replica suffices — no primary, no majority. Designed
    /// for deployments whose replicas converge by anti-entropy gossip
    /// (`weakset-gossip`): membership is then a join-semilattice, so the
    /// union of replica states is itself a valid weak-set read.
    Leaderless,
    /// Leaderless union reads with *session guarantees*: every request
    /// carries the client's [`SessionToken`] dependency vector, and a
    /// replica that has not yet applied the session's dependencies
    /// answers [`StoreMsg::SessionBehind`] instead of serving stale
    /// data. The client redirects to other replicas and waits for
    /// laggards, giving read-your-writes and monotonic reads even
    /// without a primary. Requires a client built with
    /// [`StoreClient::with_session`].
    CausalSession,
}

impl ReadPolicy {
    /// Stable lowercase label, used as the metric-name segment for
    /// per-policy instrumentation (`store.read.<label>.us`).
    pub fn label(self) -> &'static str {
        match self {
            ReadPolicy::Primary => "primary",
            ReadPolicy::Any => "any",
            ReadPolicy::Quorum => "quorum",
            ReadPolicy::Leaderless => "leaderless",
            ReadPolicy::CausalSession => "causal_session",
        }
    }
}

/// A versioned membership read.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MembershipRead {
    /// Version of the replica that answered (highest version for quorum).
    pub version: u64,
    /// The membership.
    pub entries: Vec<MemberEntry>,
}

/// A client of the distributed object repository, bound to the node it
/// runs on.
#[derive(Clone, Debug)]
pub struct StoreClient {
    node: NodeId,
    timeout: SimDuration,
    lock_token: u64,
    retries: usize,
    // Shared across clones: the iterator stack clones the client per
    // run, and all clones must extend the same session.
    session: Option<Arc<Mutex<SessionToken>>>,
}

impl StoreClient {
    /// A client on `node` with the given RPC timeout.
    pub fn new(node: NodeId, timeout: SimDuration) -> Self {
        StoreClient {
            node,
            timeout,
            lock_token: node.0 as u64 + 1,
            retries: 0,
            session: None,
        }
    }

    /// Attaches a fresh causal session to this client: mutations and
    /// [`ReadPolicy::CausalSession`] reads record their observed
    /// versions in a shared [`SessionToken`], and session reads refuse
    /// replies from replicas behind that token. Clones of the client
    /// share the session.
    #[must_use]
    pub fn with_session(mut self) -> Self {
        self.session = Some(Arc::new(Mutex::new(SessionToken::new())));
        self
    }

    /// A copy of the current session token, if a session is attached.
    pub fn session_token(&self) -> Option<SessionToken> {
        self.session
            .as_ref()
            .map(|s| s.lock().expect("session lock poisoned").clone())
    }

    /// Folds an observed reply (scalar version and, for gossip replies,
    /// a dot-level clock) into the session token, if any.
    fn session_observe(&self, coll: CollectionId, version: u64, clock: Option<&VersionVector>) {
        if let Some(session) = &self.session {
            let mut tok = session.lock().expect("session lock poisoned");
            tok.observe_version(coll, version);
            if let Some(clock) = clock {
                tok.observe_clock(coll, clock);
            }
        }
    }

    /// Retries each RPC up to `n` extra times on network failure. Safe
    /// because every store request is idempotent (set semantics: repeated
    /// adds/removes/puts/locks converge); useful on lossy links where
    /// individual messages vanish.
    #[must_use]
    pub fn with_retries(mut self, n: usize) -> Self {
        self.retries = n;
        self
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The client's RPC timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    fn call(&self, world: &mut StoreRt, to: NodeId, msg: StoreMsg) -> Result<StoreMsg, StoreError> {
        let mut attempt = 0;
        loop {
            match world.rpc(self.node, to, msg.clone(), self.timeout) {
                Ok(reply) => return Ok(reply),
                Err(e) if attempt >= self.retries => return Err(e.into()),
                Err(_) => attempt += 1,
            }
        }
    }

    /// Stores an object on a node.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure.
    pub fn put_object(
        &self,
        world: &mut StoreRt,
        home: NodeId,
        rec: ObjectRecord,
    ) -> Result<(), StoreError> {
        match self.call(world, home, StoreMsg::PutObject(rec))? {
            StoreMsg::Ack => Ok(()),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Fetches an object from its home node.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure;
    /// [`StoreError::NotFound`] when the node does not hold the object.
    pub fn fetch_object(
        &self,
        world: &mut StoreRt,
        home: NodeId,
        id: ObjectId,
    ) -> Result<ObjectRecord, StoreError> {
        let started = world.now();
        // Network errors return before the metrics below: the store
        // fetch never happened, so only the causal stream records it
        // (`store.fetch.us`/`.err` stay store-level signals).
        let reply = self
            .call(world, home, StoreMsg::GetObject(id))
            .inspect_err(|e| {
                let msg = e.to_string();
                world.trace_event("store.fetch.failed", &|| {
                    format!("object={id} home={home}: {msg}")
                });
            })?;
        let result = match reply {
            StoreMsg::Object(rec) => Ok(rec),
            StoreMsg::NotFound(id) => Err(StoreError::NotFound(id)),
            _ => Err(StoreError::Protocol),
        };
        let elapsed = world.now().saturating_since(started).as_micros();
        let m = world.metrics_mut();
        m.observe("store.fetch.us", elapsed);
        m.incr(if result.is_ok() {
            store_health::FETCH_OK
        } else {
            store_health::FETCH_ERR
        });
        result
    }

    /// Deletes an object from a node.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure.
    pub fn delete_object(
        &self,
        world: &mut StoreRt,
        home: NodeId,
        id: ObjectId,
    ) -> Result<(), StoreError> {
        match self.call(world, home, StoreMsg::DeleteObject(id))? {
            StoreMsg::Ack => Ok(()),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Runs a query against one node's local objects.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure.
    pub fn query_node(
        &self,
        world: &mut StoreRt,
        node: NodeId,
        query: &Query,
    ) -> Result<Vec<ObjectId>, StoreError> {
        match self.call(world, node, StoreMsg::QueryLocal(query.clone()))? {
            StoreMsg::Matches(ids) => Ok(ids),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Creates the collection on its home node and every replica.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] if any replica cannot be created.
    pub fn create_collection(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
    ) -> Result<(), StoreError> {
        for node in cref.all_nodes() {
            match self.call(world, node, StoreMsg::CreateCollection(cref.id))? {
                StoreMsg::Ack => {}
                _ => return Err(StoreError::Protocol),
            }
        }
        Ok(())
    }

    /// Adds a member: serialized at the primary, then pushed best-effort to
    /// every reachable secondary replica (unreachable replicas go stale).
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] when the *primary* is unreachable;
    /// [`StoreError::Locked`] when a reader holds the lock.
    pub fn add_member(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
        entry: MemberEntry,
    ) -> Result<u64, StoreError> {
        let msg = StoreMsg::AddMember {
            coll: cref.id,
            entry,
        };
        self.mutate_primary_then_sync(world, cref, msg)
    }

    /// Removes a member (primary-first, best-effort replica sync).
    ///
    /// # Errors
    ///
    /// As for [`StoreClient::add_member`].
    pub fn remove_member(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
        elem: ObjectId,
    ) -> Result<u64, StoreError> {
        let msg = StoreMsg::RemoveMember {
            coll: cref.id,
            elem,
        };
        self.mutate_primary_then_sync(world, cref, msg)
    }

    fn mutate_primary_then_sync(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
        msg: StoreMsg,
    ) -> Result<u64, StoreError> {
        let started = world.now();
        // With a session attached, the mutation rides in a WithSession
        // wrapper so gossip replicas stamp the reply with their
        // post-mutation digest — the dot this session must later see.
        let msg = match self.session_token() {
            Some(session) => StoreMsg::WithSession {
                session,
                inner: Box::new(msg),
            },
            None => msg,
        };
        let primary = self.call(world, cref.home, msg);
        let elapsed = world.now().saturating_since(started).as_micros();
        let m = world.metrics_mut();
        m.observe("store.write.us", elapsed);
        m.incr(if primary.is_ok() {
            store_health::WRITE_OK
        } else {
            store_health::WRITE_ERR
        });
        let mut clock = None;
        let reply = match primary? {
            StoreMsg::SessionStamped { clock: c, inner } => {
                clock = Some(c);
                *inner
            }
            other => other,
        };
        let (version, entries) = match reply {
            StoreMsg::Members { version, entries } => (version, entries),
            StoreMsg::Locked => return Err(StoreError::Locked),
            StoreMsg::NoSuchCollection(c) => return Err(StoreError::NoSuchCollection(c)),
            _ => return Err(StoreError::Protocol),
        };
        self.session_observe(cref.id, version, clock.as_ref());
        for &replica in &cref.replicas {
            // Best effort: a stale replica is the paper's "one node may
            // have more up-to-date information than another".
            let synced = self.call(
                world,
                replica,
                StoreMsg::SyncMembers {
                    coll: cref.id,
                    version,
                    members: entries.clone(),
                },
            );
            world.metrics_mut().incr(if synced.is_ok() {
                store_health::REPLICA_SYNC_SENT
            } else {
                store_health::REPLICA_SYNC_FAILED
            });
        }
        Ok(version)
    }

    /// Reads the collection's membership under a read policy.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] when the required replicas are unreachable;
    /// [`StoreError::NoQuorum`] when [`ReadPolicy::Quorum`] cannot gather a
    /// majority.
    pub fn read_members(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
        policy: ReadPolicy,
    ) -> Result<MembershipRead, StoreError> {
        let started = world.now();
        let span_kind = match policy {
            ReadPolicy::Primary => "store.read.primary",
            ReadPolicy::Any => "store.read.any",
            ReadPolicy::Quorum => "store.read.quorum",
            ReadPolicy::Leaderless => "store.read.leaderless",
            ReadPolicy::CausalSession => "store.read.causal_session",
        };
        let span = world.span_enter(span_kind, &|| cref.id.to_string());
        let result = self.read_members_inner(world, cref, policy);
        if let Err(e) = &result {
            let msg = e.to_string();
            world.trace_event("store.read.failed", &|| {
                format!("{} {}: {}", policy.label(), cref.id, msg)
            });
        }
        world.span_exit(span);
        let elapsed = world.now().saturating_since(started).as_micros();
        let m = world.metrics_mut();
        m.observe(&format!("store.read.{}.us", policy.label()), elapsed);
        m.incr(&format!(
            "store.read.{}.{}",
            policy.label(),
            if result.is_ok() { "ok" } else { "err" }
        ));
        result
    }

    fn read_members_inner(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
        policy: ReadPolicy,
    ) -> Result<MembershipRead, StoreError> {
        match policy {
            ReadPolicy::Primary => self.list_one(world, cref.home, cref.id),
            ReadPolicy::Any => {
                // Closest-first: rank replicas by estimated latency.
                let mut nodes = cref.all_nodes();
                nodes.sort_by_key(|&n| world.estimate_latency(self.node, n));
                let mut last_err = StoreError::Net(NetError::Timeout);
                for node in nodes {
                    match self.list_one(world, node, cref.id) {
                        Ok(read) => return Ok(read),
                        Err(e) => last_err = e,
                    }
                }
                Err(last_err)
            }
            ReadPolicy::Quorum => {
                let nodes = cref.all_nodes();
                let need = nodes.len() / 2 + 1;
                let mut best: Option<MembershipRead> = None;
                let mut got = 0;
                for node in nodes {
                    world.metrics_mut().incr("store.read.quorum.contacts");
                    if let Ok(read) = self.list_one(world, node, cref.id) {
                        got += 1;
                        if best.as_ref().is_none_or(|b| read.version > b.version) {
                            best = Some(read);
                        }
                    }
                }
                if got >= need {
                    Ok(best.expect("quorum reached but no reads recorded"))
                } else {
                    Err(StoreError::NoQuorum { got, need })
                }
            }
            ReadPolicy::Leaderless => {
                // Closest-first so the common case touches nearby replicas
                // before paying wide-area latencies.
                let mut nodes = cref.all_nodes();
                nodes.sort_by_key(|&n| world.estimate_latency(self.node, n));
                let mut merged: Option<MembershipRead> = None;
                let mut last_err = StoreError::Net(NetError::Timeout);
                for node in nodes {
                    match self.list_one(world, node, cref.id) {
                        Ok(read) => match &mut merged {
                            Some(m) => {
                                m.version = m.version.max(read.version);
                                m.entries.extend(read.entries);
                            }
                            None => merged = Some(read),
                        },
                        Err(e) => last_err = e,
                    }
                }
                match merged {
                    Some(mut m) => {
                        m.entries.sort_unstable();
                        m.entries.dedup();
                        Ok(m)
                    }
                    None => Err(last_err),
                }
            }
            ReadPolicy::CausalSession => self.read_causal_session(world, cref),
        }
    }

    /// The [`ReadPolicy::CausalSession`] read loop: leaderless union
    /// reads over every replica, but each request carries the session
    /// token and replicas behind the session's dependency floor answer
    /// [`StoreMsg::SessionBehind`]. Any satisfying replica suffices
    /// (redirect); if *every* reachable replica is behind, the client
    /// waits and retries until its timeout, then surfaces
    /// [`StoreError::SessionBehind`] — blocking beats silently violating
    /// read-your-writes.
    fn read_causal_session(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
    ) -> Result<MembershipRead, StoreError> {
        /// Delay between rounds while waiting for laggards to catch up.
        const WAIT_STEP: SimDuration = SimDuration::from_millis(5);
        let deadline = world.now() + self.timeout;
        let started = world.now();
        let mut nodes = cref.all_nodes();
        nodes.sort_by_key(|&n| world.estimate_latency(self.node, n));
        let mut waited = false;
        loop {
            let mut merged: Option<MembershipRead> = None;
            let mut last_err = StoreError::Net(NetError::Timeout);
            let mut behind: Option<(u64, u64)> = None;
            for &node in &nodes {
                match self.list_one_session(world, node, cref.id) {
                    Ok(read) => match &mut merged {
                        Some(m) => {
                            m.version = m.version.max(read.version);
                            m.entries.extend(read.entries);
                        }
                        None => merged = Some(read),
                    },
                    Err(StoreError::SessionBehind { have, need }) => {
                        world.metrics_mut().incr(session_names::READ_BEHIND);
                        behind = Some(match behind {
                            Some((h, n)) => (h.max(have), n.max(need)),
                            None => (have, need),
                        });
                    }
                    Err(e) => last_err = e,
                }
            }
            if let Some(mut m) = merged {
                m.entries.sort_unstable();
                m.entries.dedup();
                if behind.is_some() {
                    // Some replica was behind, but another satisfied the
                    // session: the read was redirected, not blocked.
                    world.metrics_mut().incr(session_names::READ_REDIRECT);
                }
                if waited {
                    let us = world.now().saturating_since(started).as_micros();
                    world.metrics_mut().observe(session_names::READ_WAIT_US, us);
                }
                return Ok(m);
            }
            let Some((have, need)) = behind else {
                // Nothing was behind — the read failed for ordinary
                // reasons (unreachable replicas, missing collection).
                return Err(last_err);
            };
            if world.now() + WAIT_STEP > deadline {
                let us = world.now().saturating_since(started).as_micros();
                let m = world.metrics_mut();
                m.observe(session_names::READ_WAIT_US, us);
                m.incr(session_names::READ_GAVE_UP);
                return Err(StoreError::SessionBehind { have, need });
            }
            // Every reachable replica is behind: wait for replication or
            // anti-entropy to catch up, then retry the whole ring.
            waited = true;
            world.sleep(WAIT_STEP);
        }
    }

    /// Reads the memberships of several co-located collections (shard
    /// sub-collections) in one round of batched traffic: ONE envelope
    /// per replica node carries the `ListMembers` for every shard
    /// hosted there, and all envelopes are in flight concurrently.
    /// Results come back per shard, in input order, each aggregated
    /// under `policy` exactly as [`StoreClient::read_members`] would.
    ///
    /// Against the sequential path (one round-trip per shard per
    /// replica), the whole read costs one round-trip per *node* —
    /// this is the batched-quorum fast path that sharded weak sets
    /// ride. Retries are not applied here; a lost envelope surfaces
    /// as a per-shard failure and the caller decides.
    pub fn read_members_batched(
        &self,
        world: &mut StoreRt,
        shards: &[CollectionRef],
        policy: ReadPolicy,
    ) -> Vec<Result<MembershipRead, StoreError>> {
        let started = world.now();
        let n_shards = shards.len();
        let span = world.span_enter("store.read.batched", &|| {
            format!("{} shards, {}", n_shards, policy.label())
        });
        // Which nodes each shard contacts under this policy.
        let contacts: Vec<Vec<NodeId>> = shards
            .iter()
            .map(|s| match policy {
                ReadPolicy::Primary => vec![s.home],
                _ => s.all_nodes(),
            })
            .collect();
        // Group the per-shard requests by destination; remember which
        // shard index each envelope slot belongs to (reply order ==
        // request order within an envelope).
        let mut buf = BatchBuffer::new(self.node);
        let mut slots: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, shard) in shards.iter().enumerate() {
            for &node in &contacts[i] {
                slots.entry(node).or_default().push(i);
                let part = StoreMsg::ListMembers(shard.id);
                // Session reads gate every part individually: a stale
                // replica answers SessionBehind for exactly the shards
                // it lags on.
                let part = if policy == ReadPolicy::CausalSession {
                    StoreMsg::WithSession {
                        session: self.session_token().unwrap_or_default(),
                        inner: Box::new(part),
                    }
                } else {
                    part
                };
                buf.push(node, part);
            }
        }
        world
            .metrics_mut()
            .add("store.read.batched.contacts", buf.pending_parts() as u64);
        let launched: Vec<(NodeId, ReplyToken, usize)> = buf
            .drain()
            .into_iter()
            .map(|(to, parts)| {
                let n = parts.len();
                let token = world.send_batch(self.node, to, parts);
                (to, token, n)
            })
            .collect();
        let deadline = world.now() + self.timeout;
        let mut outstanding: Vec<ReplyToken> = launched.iter().map(|&(_, t, _)| t).collect();
        while !outstanding.is_empty() {
            match world.wait_any(&outstanding, deadline) {
                Some(done) => outstanding.retain(|&t| t != done),
                None => break,
            }
        }
        // Slice each node's reply envelope back into per-shard reads.
        let mut reads: Vec<Vec<(NodeId, Result<MembershipRead, StoreError>)>> =
            vec![Vec::new(); shards.len()];
        for (node, token, parts) in launched {
            let outcome = match world.try_take_reply(token) {
                Some(Ok(msg)) => match msg.unwrap_batch() {
                    Ok(replies) if replies.len() == parts => Ok(replies),
                    _ => Err(StoreError::Protocol),
                },
                Some(Err(e)) => Err(StoreError::Net(e)),
                None => Err(StoreError::Net(NetError::Timeout)),
            };
            let idxs = &slots[&node];
            match outcome {
                Ok(replies) => {
                    for (&i, part) in idxs.iter().zip(replies) {
                        let mut clock = None;
                        let part = match part {
                            StoreMsg::SessionStamped { clock: c, inner } => {
                                clock = Some(c);
                                *inner
                            }
                            other => other,
                        };
                        let read = match part {
                            StoreMsg::Members { version, entries } => {
                                self.session_observe(shards[i].id, version, clock.as_ref());
                                Ok(MembershipRead { version, entries })
                            }
                            StoreMsg::SessionBehind { have, need, .. } => {
                                world.metrics_mut().incr(session_names::READ_BEHIND);
                                Err(StoreError::SessionBehind { have, need })
                            }
                            StoreMsg::NoSuchCollection(c) => Err(StoreError::NoSuchCollection(c)),
                            _ => Err(StoreError::Protocol),
                        };
                        reads[i].push((node, read));
                    }
                }
                Err(e) => {
                    for &i in idxs {
                        reads[i].push((node, Err(e.clone())));
                    }
                }
            }
        }
        let mut results: Vec<Result<MembershipRead, StoreError>> = reads
            .into_iter()
            .map(|per_node| Self::aggregate_reads(world, self.node, policy, per_node))
            .collect();
        // Session reads do not give up after one round: a shard whose
        // replicas were all behind falls back to the sequential
        // wait/redirect loop, which retries until the timeout.
        if policy == ReadPolicy::CausalSession {
            for (shard, r) in shards.iter().zip(results.iter_mut()) {
                if matches!(r, Err(StoreError::SessionBehind { .. })) {
                    *r = self.read_causal_session(world, shard);
                }
            }
        }
        for (shard, r) in shards.iter().zip(&results) {
            if let Err(e) = r {
                let msg = e.to_string();
                world.trace_event("store.read.failed", &|| {
                    format!("batched {} {}: {}", policy.label(), shard.id, msg)
                });
            }
        }
        world.span_exit(span);
        let elapsed = world.now().saturating_since(started).as_micros();
        let m = world.metrics_mut();
        m.observe(
            &format!("store.read.batched.{}.us", policy.label()),
            elapsed,
        );
        for r in &results {
            m.incr(&format!(
                "store.read.batched.{}.{}",
                policy.label(),
                if r.is_ok() { "ok" } else { "err" }
            ));
        }
        results
    }

    /// Folds one shard's per-replica reads into a single result under
    /// `policy`, mirroring the aggregation in `read_members_inner`.
    fn aggregate_reads(
        world: &StoreRt,
        client: NodeId,
        policy: ReadPolicy,
        mut per_node: Vec<(NodeId, Result<MembershipRead, StoreError>)>,
    ) -> Result<MembershipRead, StoreError> {
        match policy {
            ReadPolicy::Primary => per_node
                .pop()
                .map_or(Err(StoreError::Net(NetError::Timeout)), |(_, r)| r),
            ReadPolicy::Any => {
                // Closest-first, as in the sequential path.
                per_node.sort_by_key(|&(n, _)| world.estimate_latency(client, n));
                let mut last_err = StoreError::Net(NetError::Timeout);
                for (_, r) in per_node {
                    match r {
                        Ok(read) => return Ok(read),
                        Err(e) => last_err = e,
                    }
                }
                Err(last_err)
            }
            ReadPolicy::Quorum => {
                let need = per_node.len() / 2 + 1;
                let mut best: Option<MembershipRead> = None;
                let mut got = 0;
                for (_, r) in per_node {
                    if let Ok(read) = r {
                        got += 1;
                        if best.as_ref().is_none_or(|b| read.version > b.version) {
                            best = Some(read);
                        }
                    }
                }
                if got >= need {
                    Ok(best.expect("quorum reached but no reads recorded"))
                } else {
                    Err(StoreError::NoQuorum { got, need })
                }
            }
            ReadPolicy::Leaderless | ReadPolicy::CausalSession => {
                let mut merged: Option<MembershipRead> = None;
                let mut last_err = StoreError::Net(NetError::Timeout);
                let mut behind: Option<(u64, u64)> = None;
                for (_, r) in per_node {
                    match r {
                        Ok(read) => match &mut merged {
                            Some(m) => {
                                m.version = m.version.max(read.version);
                                m.entries.extend(read.entries);
                            }
                            None => merged = Some(read),
                        },
                        Err(StoreError::SessionBehind { have, need }) => {
                            behind = Some(match behind {
                                Some((h, n)) => (h.max(have), n.max(need)),
                                None => (have, need),
                            });
                        }
                        Err(e) => last_err = e,
                    }
                }
                match merged {
                    Some(mut m) => {
                        m.entries.sort_unstable();
                        m.entries.dedup();
                        Ok(m)
                    }
                    // Every replica behind beats a generic error: the
                    // caller can wait and retry on SessionBehind.
                    None => match behind {
                        Some((have, need)) => Err(StoreError::SessionBehind { have, need }),
                        None => Err(last_err),
                    },
                }
            }
        }
    }

    fn list_one(
        &self,
        world: &mut StoreRt,
        node: NodeId,
        coll: CollectionId,
    ) -> Result<MembershipRead, StoreError> {
        match self.call(world, node, StoreMsg::ListMembers(coll))? {
            StoreMsg::Members { version, entries } => Ok(MembershipRead { version, entries }),
            StoreMsg::NoSuchCollection(c) => Err(StoreError::NoSuchCollection(c)),
            _ => Err(StoreError::Protocol),
        }
    }

    /// A session-gated `ListMembers` against one replica. Successful
    /// replies (and their gossip clock stamps) are folded into the
    /// session token; a behind replica surfaces as
    /// [`StoreError::SessionBehind`].
    fn list_one_session(
        &self,
        world: &mut StoreRt,
        node: NodeId,
        coll: CollectionId,
    ) -> Result<MembershipRead, StoreError> {
        let session = self.session_token().unwrap_or_default();
        let msg = StoreMsg::WithSession {
            session,
            inner: Box::new(StoreMsg::ListMembers(coll)),
        };
        let mut clock = None;
        let reply = match self.call(world, node, msg)? {
            StoreMsg::SessionStamped { clock: c, inner } => {
                clock = Some(c);
                *inner
            }
            other => other,
        };
        match reply {
            StoreMsg::Members { version, entries } => {
                self.session_observe(coll, version, clock.as_ref());
                Ok(MembershipRead { version, entries })
            }
            StoreMsg::SessionBehind { have, need, .. } => {
                Err(StoreError::SessionBehind { have, need })
            }
            StoreMsg::NoSuchCollection(c) => Err(StoreError::NoSuchCollection(c)),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Acquires a read lock on the primary (strong baseline). The lock
    /// token identifies this client.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure.
    pub fn acquire_read_lock(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
    ) -> Result<(), StoreError> {
        match self.call(
            world,
            cref.home,
            StoreMsg::AcquireReadLock {
                coll: cref.id,
                token: self.lock_token,
            },
        )? {
            StoreMsg::Ack => Ok(()),
            StoreMsg::NoSuchCollection(c) => Err(StoreError::NoSuchCollection(c)),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Acquires a grow guard on the primary (§3.3): removals are deferred
    /// until released, so the set only grows while iterating.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure.
    pub fn acquire_grow_guard(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
    ) -> Result<(), StoreError> {
        match self.call(
            world,
            cref.home,
            StoreMsg::AcquireGrowGuard {
                coll: cref.id,
                token: self.lock_token,
            },
        )? {
            StoreMsg::Ack => Ok(()),
            StoreMsg::NoSuchCollection(c) => Err(StoreError::NoSuchCollection(c)),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Releases this client's grow guard; when the last guard goes, the
    /// deferred removals land.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure.
    pub fn release_grow_guard(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
    ) -> Result<(), StoreError> {
        match self.call(
            world,
            cref.home,
            StoreMsg::ReleaseGrowGuard {
                coll: cref.id,
                token: self.lock_token,
            },
        )? {
            StoreMsg::Ack => Ok(()),
            _ => Err(StoreError::Protocol),
        }
    }

    /// Releases this client's read lock on the primary.
    ///
    /// # Errors
    ///
    /// [`StoreError::Net`] on communication failure.
    pub fn release_read_lock(
        &self,
        world: &mut StoreRt,
        cref: &CollectionRef,
    ) -> Result<(), StoreError> {
        match self.call(
            world,
            cref.home,
            StoreMsg::ReleaseReadLock {
                coll: cref.id,
                token: self.lock_token,
            },
        )? {
            StoreMsg::Ack => Ok(()),
            _ => Err(StoreError::Protocol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::StoreServer;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;

    fn world_with(n_servers: usize) -> (StoreWorld, NodeId, Vec<NodeId>) {
        let mut t = Topology::new();
        let client = t.add_node("client", 0);
        let servers: Vec<NodeId> = t.add_servers("s", n_servers);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(7),
            t,
            LatencyModel::Constant(SimDuration::from_millis(2)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        (w, client, servers)
    }

    fn entry(id: u64, home: NodeId) -> MemberEntry {
        MemberEntry {
            elem: ObjectId(id),
            home,
        }
    }

    #[test]
    fn object_round_trip() {
        let (mut w, c, s) = world_with(1);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let rec = ObjectRecord::new(ObjectId(1), "a", &b"hi"[..]);
        cl.put_object(&mut w, s[0], rec.clone()).unwrap();
        assert_eq!(cl.fetch_object(&mut w, s[0], ObjectId(1)).unwrap(), rec);
        cl.delete_object(&mut w, s[0], ObjectId(1)).unwrap();
        assert_eq!(
            cl.fetch_object(&mut w, s[0], ObjectId(1)),
            Err(StoreError::NotFound(ObjectId(1)))
        );
    }

    #[test]
    fn membership_lifecycle_with_replicas() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1], s[2]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        cl.add_member(&mut w, &cref, entry(1, s[0])).unwrap();
        cl.add_member(&mut w, &cref, entry(2, s[1])).unwrap();
        // All replicas agree.
        for policy in [ReadPolicy::Primary, ReadPolicy::Any, ReadPolicy::Quorum] {
            let r = cl.read_members(&mut w, &cref, policy).unwrap();
            assert_eq!(r.entries.len(), 2, "{policy:?}");
            assert_eq!(r.version, 2, "{policy:?}");
        }
    }

    #[test]
    fn partitioned_replica_goes_stale_and_any_reads_it() {
        let (mut w, c, s) = world_with(2);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        cl.add_member(&mut w, &cref, entry(1, s[0])).unwrap();
        // Cut the replica off; mutate again — replica misses the update.
        w.topology_mut().partition(&[s[1]]);
        cl.add_member(&mut w, &cref, entry(2, s[0])).unwrap();
        // Heal but now cut off the PRIMARY: Any falls back to the stale
        // replica.
        w.topology_mut().heal_partition();
        w.topology_mut().partition(&[s[0]]);
        let read = cl.read_members(&mut w, &cref, ReadPolicy::Any).unwrap();
        assert_eq!(read.version, 1);
        assert_eq!(read.entries.len(), 1); // stale: missing elem 2
                                           // Primary policy fails outright.
        assert!(matches!(
            cl.read_members(&mut w, &cref, ReadPolicy::Primary),
            Err(StoreError::Net(_))
        ));
    }

    #[test]
    fn quorum_takes_newest_and_fails_below_majority() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1], s[2]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        // Replica s[2] misses an update.
        w.topology_mut().partition(&[s[2]]);
        cl.add_member(&mut w, &cref, entry(1, s[0])).unwrap();
        w.topology_mut().heal_partition();
        // Quorum of {s0:v1, s1:v1, s2:v0} → newest v1.
        let read = cl.read_members(&mut w, &cref, ReadPolicy::Quorum).unwrap();
        assert_eq!(read.version, 1);
        // Cut off two of three replicas: no majority.
        w.topology_mut().partition(&[s[0], s[1]]);
        let err = cl.read_members(&mut w, &cref, ReadPolicy::Quorum);
        assert_eq!(err, Err(StoreError::NoQuorum { got: 1, need: 2 }));
        assert!(err.unwrap_err().is_failure());
    }

    #[test]
    fn leaderless_unions_reachable_replicas() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1], s[2]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        // s[2] misses the first add, s[1] misses the second: no single
        // replica holds the whole membership.
        w.topology_mut().partition(&[s[2]]);
        cl.add_member(&mut w, &cref, entry(1, s[0])).unwrap();
        w.topology_mut().heal_partition();
        w.topology_mut().partition(&[s[1]]);
        cl.add_member(&mut w, &cref, entry(2, s[0])).unwrap();
        w.topology_mut().heal_partition();
        // Leaderless with the primary cut off unions the two stale
        // secondaries back into the full membership.
        w.topology_mut().partition(&[s[0]]);
        let read = cl
            .read_members(&mut w, &cref, ReadPolicy::Leaderless)
            .unwrap();
        assert_eq!(read.entries.len(), 2);
        assert_eq!(read.version, 2);
        // Quorum cannot form with a second replica also gone; leaderless
        // still answers from the lone survivor.
        w.topology_mut().partition(&[s[0], s[1]]);
        assert!(matches!(
            cl.read_members(&mut w, &cref, ReadPolicy::Quorum),
            Err(StoreError::NoQuorum { .. })
        ));
        let read = cl
            .read_members(&mut w, &cref, ReadPolicy::Leaderless)
            .unwrap();
        assert_eq!(read.entries.len(), 2, "s2 held the full v2 sync");
        // Everything gone: the failure exception surfaces.
        w.topology_mut().partition(&[s[0], s[1], s[2]]);
        assert!(cl
            .read_members(&mut w, &cref, ReadPolicy::Leaderless)
            .unwrap_err()
            .is_failure());
    }

    #[test]
    fn mutation_fails_when_primary_unreachable() {
        let (mut w, c, s) = world_with(2);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        w.topology_mut().crash(s[0]);
        let r = cl.add_member(&mut w, &cref, entry(1, s[0]));
        assert!(matches!(r, Err(StoreError::Net(_))));
    }

    #[test]
    fn read_lock_stalls_writers() {
        let (mut w, c, s) = world_with(1);
        let reader = StoreClient::new(c, SimDuration::from_millis(50));
        let cref = CollectionRef::unreplicated(CollectionId(1), s[0]);
        reader.create_collection(&mut w, &cref).unwrap();
        reader.acquire_read_lock(&mut w, &cref).unwrap();
        let writer = StoreClient::new(c, SimDuration::from_millis(50));
        assert_eq!(
            writer.add_member(&mut w, &cref, entry(1, s[0])),
            Err(StoreError::Locked)
        );
        reader.release_read_lock(&mut w, &cref).unwrap();
        assert!(writer.add_member(&mut w, &cref, entry(1, s[0])).is_ok());
    }

    #[test]
    fn query_node_finds_matching_objects() {
        let (mut w, c, s) = world_with(1);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        cl.put_object(
            &mut w,
            s[0],
            ObjectRecord::new(ObjectId(1), "x.face", &b""[..]),
        )
        .unwrap();
        cl.put_object(
            &mut w,
            s[0],
            ObjectRecord::new(ObjectId(2), "y.txt", &b""[..]),
        )
        .unwrap();
        let hits = cl
            .query_node(&mut w, s[0], &Query::NameSuffix(".face".into()))
            .unwrap();
        assert_eq!(hits, vec![ObjectId(1)]);
    }

    #[test]
    fn missing_collection_surfaces() {
        let (mut w, c, s) = world_with(1);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let cref = CollectionRef::unreplicated(CollectionId(42), s[0]);
        assert_eq!(
            cl.read_members(&mut w, &cref, ReadPolicy::Primary),
            Err(StoreError::NoSuchCollection(CollectionId(42)))
        );
    }

    #[test]
    fn retries_ride_out_lossy_links() {
        use weakset_sim::link::LinkState;
        let (mut w, c, s) = world_with(1);
        // Half the messages vanish; without retries fetches often fail.
        w.topology_mut().set_link(c, s[0], LinkState::lossy(0.5));
        let flaky = StoreClient::new(c, SimDuration::from_millis(20));
        // Each attempt must survive both directions (p = 0.25), so a
        // deep retry budget is needed to make failure negligible.
        let sturdy = flaky.clone().with_retries(25);
        sturdy
            .put_object(&mut w, s[0], ObjectRecord::new(ObjectId(1), "a", &b"x"[..]))
            .unwrap();
        let mut flaky_failures = 0;
        let mut sturdy_failures = 0;
        for _ in 0..20 {
            if flaky.fetch_object(&mut w, s[0], ObjectId(1)).is_err() {
                flaky_failures += 1;
            }
            if sturdy.fetch_object(&mut w, s[0], ObjectId(1)).is_err() {
                sturdy_failures += 1;
            }
        }
        assert!(flaky_failures > 0, "a 50% lossy link must bite sometimes");
        assert_eq!(sturdy_failures, 0, "25 retries make 50% loss negligible");
    }

    #[test]
    fn error_display() {
        assert!(StoreError::Locked.to_string().contains("read-locked"));
        assert!(StoreError::NoQuorum { got: 1, need: 2 }
            .to_string()
            .contains("1 of 2"));
        assert!(!StoreError::Locked.is_failure());
    }

    /// Four shard collections, all replicated on the same three nodes.
    fn sharded_fixture(w: &mut StoreWorld, cl: &StoreClient, s: &[NodeId]) -> Vec<CollectionRef> {
        (0..4u64)
            .map(|i| {
                let cref = CollectionRef {
                    id: CollectionId(100 + i),
                    home: s[0],
                    replicas: vec![s[1], s[2]],
                };
                cl.create_collection(w, &cref).unwrap();
                cl.add_member(w, &cref, entry(10 * i + 1, s[0])).unwrap();
                cl.add_member(w, &cref, entry(10 * i + 2, s[1])).unwrap();
                cref
            })
            .collect()
    }

    #[test]
    fn batched_read_matches_sequential_and_saves_round_trips() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let shards = sharded_fixture(&mut w, &cl, &s);

        let sequential: Vec<_> = shards
            .iter()
            .map(|cref| cl.read_members(&mut w, cref, ReadPolicy::Quorum).unwrap())
            .collect();
        let rpc_before = w.metrics().counter("rpc.sent");
        let batched = cl.read_members_batched(&mut w, &shards, ReadPolicy::Quorum);
        let rpc_spent = w.metrics().counter("rpc.sent") - rpc_before;

        for (seq, bat) in sequential.iter().zip(&batched) {
            assert_eq!(Ok(seq), bat.as_ref(), "same reads either way");
        }
        // 4 shards × 3 replicas sequentially = 12 messages; batched,
        // one envelope per node = 3.
        assert_eq!(rpc_spent, 3);
        assert_eq!(w.metrics().counter("net.batch.envelopes"), 3);
        assert_eq!(w.metrics().counter("net.batch.parts"), 12);
        assert_eq!(w.metrics().counter("store.read.batched.contacts"), 12);
        assert_eq!(w.metrics().counter("store.read.batched.quorum.ok"), 4);
    }

    #[test]
    fn batched_quorum_takes_newest_and_tolerates_minority_loss() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let shards = sharded_fixture(&mut w, &cl, &s);
        // One shard's replica s[2] misses an update.
        w.topology_mut().partition(&[s[2]]);
        cl.add_member(&mut w, &shards[1], entry(99, s[0])).unwrap();
        w.topology_mut().heal_partition();
        // The minority replica down: quorum still forms everywhere and
        // shard 1 reads its newest version.
        w.topology_mut().partition(&[s[2]]);
        let reads = cl.read_members_batched(&mut w, &shards, ReadPolicy::Quorum);
        assert_eq!(reads[1].as_ref().unwrap().version, 3);
        assert_eq!(reads[1].as_ref().unwrap().entries.len(), 3);
        for r in &reads {
            assert!(r.is_ok());
        }
        // A majority gone: every shard fails with NoQuorum.
        w.topology_mut().partition(&[s[1], s[2]]);
        let reads = cl.read_members_batched(&mut w, &shards, ReadPolicy::Quorum);
        for r in reads {
            assert_eq!(r, Err(StoreError::NoQuorum { got: 1, need: 2 }));
        }
    }

    #[test]
    fn batched_leaderless_unions_and_primary_reads_home_only() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50));
        let shards = sharded_fixture(&mut w, &cl, &s);
        // Primary policy batches one request per home node only.
        let rpc_before = w.metrics().counter("rpc.sent");
        let reads = cl.read_members_batched(&mut w, &shards, ReadPolicy::Primary);
        assert_eq!(w.metrics().counter("rpc.sent") - rpc_before, 1);
        for r in &reads {
            assert_eq!(r.as_ref().unwrap().entries.len(), 2);
        }
        // Leaderless with the primary cut off still answers from the
        // secondaries, per shard.
        w.topology_mut().partition(&[s[0]]);
        let reads = cl.read_members_batched(&mut w, &shards, ReadPolicy::Leaderless);
        for r in &reads {
            assert_eq!(r.as_ref().unwrap().entries.len(), 2);
        }
        let reads = cl.read_members_batched(&mut w, &shards, ReadPolicy::Primary);
        for r in reads {
            assert!(r.unwrap_err().is_failure());
        }
    }

    #[test]
    fn session_survives_primary_isolating_partition() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50)).with_session();
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1], s[2]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        cl.add_member(&mut w, &cref, entry(1, s[0])).unwrap();
        // s[2] misses the second add and goes stale at v1.
        w.topology_mut().partition(&[s[2]]);
        cl.add_member(&mut w, &cref, entry(2, s[0])).unwrap();
        assert_eq!(cl.session_token().unwrap().floor(cref.id), 2);
        w.topology_mut().heal_partition();
        // Now the PRIMARY is cut off. Plain Any can serve the stale
        // replica; a session read never does — the stale replica
        // answers SessionBehind and the read redirects to s[1].
        w.topology_mut().partition(&[s[0]]);
        let read = cl
            .read_members(&mut w, &cref, ReadPolicy::CausalSession)
            .unwrap();
        assert_eq!(read.version, 2, "read-your-writes despite lost primary");
        assert_eq!(read.entries.len(), 2);
        assert!(w.metrics().counter(session_names::READ_BEHIND) >= 1);
        assert!(w.metrics().counter(session_names::READ_REDIRECT) >= 1);
    }

    #[test]
    fn session_read_waits_for_laggard_to_catch_up() {
        let (mut w, c, s) = world_with(2);
        let cl = StoreClient::new(c, SimDuration::from_millis(100)).with_session();
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        cl.add_member(&mut w, &cref, entry(1, s[0])).unwrap();
        // The replica misses the second add, then the primary vanishes:
        // every reachable replica is now behind the session.
        w.topology_mut().partition(&[s[1]]);
        cl.add_member(&mut w, &cref, entry(2, s[0])).unwrap();
        w.topology_mut().heal_partition();
        w.topology_mut().partition(&[s[0]]);
        // Replication catches the laggard up 20ms from now.
        let replica = s[1];
        let coll = cref.id;
        let members = vec![entry(1, s[0]), entry(2, s[0])];
        w.spawn_in(SimDuration::from_millis(20), move |w: &mut StoreWorld| {
            w.with_service_mut::<StoreServer, _>(replica, |srv| {
                srv.apply(StoreMsg::SyncMembers {
                    coll,
                    version: 2,
                    members,
                });
            });
        });
        let read = cl
            .read_members(&mut w, &cref, ReadPolicy::CausalSession)
            .unwrap();
        assert_eq!(read.version, 2, "the read blocked until catch-up");
        assert_eq!(read.entries.len(), 2);
        assert!(w.metrics().counter(session_names::READ_BEHIND) >= 1);
        assert_eq!(w.metrics().counter(session_names::READ_GAVE_UP), 0);
        assert!(w.metrics().latency(session_names::READ_WAIT_US).is_some());
    }

    #[test]
    fn session_read_fails_rather_than_serving_stale() {
        let (mut w, c, s) = world_with(2);
        let cl = StoreClient::new(c, SimDuration::from_millis(30)).with_session();
        let cref = CollectionRef {
            id: CollectionId(1),
            home: s[0],
            replicas: vec![s[1]],
        };
        cl.create_collection(&mut w, &cref).unwrap();
        cl.add_member(&mut w, &cref, entry(1, s[0])).unwrap();
        w.topology_mut().partition(&[s[1]]);
        cl.add_member(&mut w, &cref, entry(2, s[0])).unwrap();
        w.topology_mut().heal_partition();
        w.topology_mut().partition(&[s[0]]);
        // No catch-up ever arrives: after the timeout the session read
        // surfaces the paper's failure exception instead of stale data.
        let err = cl
            .read_members(&mut w, &cref, ReadPolicy::CausalSession)
            .unwrap_err();
        assert_eq!(err, StoreError::SessionBehind { have: 1, need: 2 });
        assert!(err.is_failure());
        assert!(w.metrics().counter(session_names::READ_GAVE_UP) >= 1);
        // A plain Any read happily serves the stale replica — that gap
        // is exactly what the session token closes.
        let stale = cl.read_members(&mut w, &cref, ReadPolicy::Any).unwrap();
        assert_eq!(stale.version, 1);
    }

    #[test]
    fn batched_session_reads_stay_monotonic_across_shards() {
        let (mut w, c, s) = world_with(3);
        let cl = StoreClient::new(c, SimDuration::from_millis(50)).with_session();
        let shards = sharded_fixture(&mut w, &cl, &s);
        // Shard 1 gains a member that replica s[2] misses.
        w.topology_mut().partition(&[s[2]]);
        cl.add_member(&mut w, &shards[1], entry(99, s[0])).unwrap();
        w.topology_mut().heal_partition();
        assert_eq!(cl.session_token().unwrap().floor(shards[1].id), 3);
        // The batched fan-out gates each shard part independently: the
        // stale replica answers SessionBehind for shard 1 only, and the
        // union from the fresh replicas satisfies the session.
        let reads = cl.read_members_batched(&mut w, &shards, ReadPolicy::CausalSession);
        for (i, r) in reads.iter().enumerate() {
            let r = r.as_ref().unwrap();
            let expect = if i == 1 { 3usize } else { 2 };
            assert_eq!(r.version, expect as u64, "shard {i}");
            assert_eq!(r.entries.len(), expect, "shard {i}");
        }
        assert!(w.metrics().counter(session_names::READ_BEHIND) >= 1);
        // Sequential session reads see exactly the same memberships:
        // the batched path is an optimisation, not a semantic change.
        let sequential: Vec<_> = shards
            .iter()
            .map(|cref| {
                cl.read_members(&mut w, cref, ReadPolicy::CausalSession)
                    .unwrap()
            })
            .collect();
        for (seq, bat) in sequential.iter().zip(&reads) {
            assert_eq!(Ok(seq), bat.as_ref());
        }
    }
}
