//! Placement policies: which node a new object lands on.

use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;

/// Chooses home nodes for newly-created objects.
#[derive(Clone, Debug)]
pub enum Placement {
    /// Cycle through the node list.
    RoundRobin {
        /// Next index to hand out.
        next: usize,
    },
    /// Every object goes to one node.
    Pinned(NodeId),
    /// Uniformly random node.
    Random,
}

impl Placement {
    /// A round-robin policy starting at the first node.
    pub fn round_robin() -> Self {
        Placement::RoundRobin { next: 0 }
    }

    /// Picks a home node from `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty (there is nowhere to place the object).
    pub fn choose(&mut self, nodes: &[NodeId], rng: &mut SimRng) -> NodeId {
        assert!(!nodes.is_empty(), "no candidate nodes for placement");
        match self {
            Placement::RoundRobin { next } => {
                let n = nodes[*next % nodes.len()];
                *next += 1;
                n
            }
            Placement::Pinned(n) => *n,
            Placement::Random => nodes[rng.index(nodes.len())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> Vec<NodeId> {
        (0..3).map(NodeId).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = Placement::round_robin();
        let mut rng = SimRng::new(0);
        let picks: Vec<u32> = (0..5).map(|_| p.choose(&nodes(), &mut rng).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn pinned_always_same() {
        let mut p = Placement::Pinned(NodeId(2));
        let mut rng = SimRng::new(0);
        for _ in 0..4 {
            assert_eq!(p.choose(&nodes(), &mut rng), NodeId(2));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut rng1 = SimRng::new(5);
        let mut rng2 = SimRng::new(5);
        let mut p = Placement::Random;
        let a: Vec<u32> = (0..8).map(|_| p.choose(&nodes(), &mut rng1).0).collect();
        let b: Vec<u32> = (0..8).map(|_| p.choose(&nodes(), &mut rng2).0).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 3));
    }

    #[test]
    #[should_panic(expected = "no candidate nodes")]
    fn empty_candidates_panic() {
        Placement::Random.choose(&[], &mut SimRng::new(0));
    }
}
