//! Dotted version vectors: the causal metadata that anti-entropy gossip
//! ships over the wire.
//!
//! A *dot* names one mutation event at one replica; a *version vector*
//! summarises, per replica, how many of its dots have been observed. The
//! CRDT semantics built on top (grow-only and observed-remove sets) live
//! in the `weakset-gossip` crate; this module only defines the plain wire
//! data so the [`crate::msg::StoreMsg`] protocol can carry digests and
//! deltas without depending on the gossip crate.

use crate::collection::MemberEntry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use weakset_sim::node::NodeId;

/// One mutation event: the `counter`-th membership change issued by
/// `replica`. Dots totally order events *per replica* and are globally
/// unique, which lets replicas exchange exactly the events a peer has
/// not yet observed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dot {
    /// The replica that issued the mutation.
    pub replica: NodeId,
    /// 1-based sequence number of the mutation at that replica.
    pub counter: u64,
}

impl fmt::Debug for Dot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.replica.0, self.counter)
    }
}

/// A per-replica summary of observed dots: `vv[r] = n` means every dot
/// `r:1 ..= r:n` has been observed. Joining two vectors takes the
/// pointwise maximum, so version vectors form a lattice — the digest half
/// of the digest-then-delta exchange.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionVector {
    counters: BTreeMap<NodeId, u64>,
}

impl VersionVector {
    /// The empty vector (no dots observed).
    pub fn new() -> Self {
        VersionVector::default()
    }

    /// The highest observed counter for `replica` (0 when unseen).
    pub fn get(&self, replica: NodeId) -> u64 {
        self.counters.get(&replica).copied().unwrap_or(0)
    }

    /// True when `dot` has been observed.
    pub fn contains(&self, dot: Dot) -> bool {
        self.get(dot.replica) >= dot.counter
    }

    /// Mints the next dot for `replica` and records it as observed.
    pub fn advance(&mut self, replica: NodeId) -> Dot {
        let c = self.counters.entry(replica).or_insert(0);
        *c += 1;
        Dot {
            replica,
            counter: *c,
        }
    }

    /// Records `dot` as observed (pointwise max with a single dot).
    ///
    /// Gossip only ever delivers deltas alongside the sender's full
    /// vector, so "observing" a dot may safely imply observing all its
    /// per-replica predecessors.
    pub fn observe(&mut self, dot: Dot) {
        let c = self.counters.entry(dot.replica).or_insert(0);
        *c = (*c).max(dot.counter);
    }

    /// Joins with `other`: pointwise maximum (the lattice join).
    pub fn join(&mut self, other: &VersionVector) {
        for (&r, &n) in &other.counters {
            let c = self.counters.entry(r).or_insert(0);
            *c = (*c).max(n);
        }
    }

    /// True when every dot covered by `other` is covered by `self`.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other.counters.iter().all(|(&r, &n)| self.get(r) >= n)
    }

    /// Total number of dots covered — a scalar, monotone summary used as
    /// the `version` field of leaderless membership reads (replicas with
    /// identical vectors report identical totals).
    pub fn total(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Number of replicas with at least one observed dot.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no dots have been observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterates `(replica, highest counter)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.counters.iter().map(|(&r, &n)| (r, n))
    }
}

/// A membership entry tagged with the dot of the add that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DottedEntry {
    /// The add event's dot.
    pub dot: Dot,
    /// The member that was added.
    pub entry: MemberEntry,
}

/// The delta half of a digest-then-delta exchange: everything a receiver
/// needs to join a peer's state into its own.
///
/// `novel` carries only the dotted entries whose dots the requester's
/// digest did not cover — the member payloads that actually cross the
/// wire. `vv` is the sender's full version vector and `live` its full
/// live-dot list; together they let the receiver detect removals (a dot
/// it holds that `vv` covers but `live` omits was removed at the sender).
/// Dots are 16 bytes on the simulated wire, so the live list stays cheap
/// even when no entries need shipping.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MembershipDelta {
    /// The sender's full version vector.
    pub vv: VersionVector,
    /// Dotted entries the requester had not observed.
    pub novel: Vec<DottedEntry>,
    /// Every dot still live (not removed) at the sender.
    pub live: Vec<Dot>,
}

impl MembershipDelta {
    /// Approximate wire size in bytes: 16 per version-vector slot and
    /// live dot, 28 per novel dotted entry.
    pub fn wire_size(&self) -> usize {
        self.vv.len() * 16 + self.novel.len() * 28 + self.live.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn advance_mints_sequential_dots() {
        let mut vv = VersionVector::new();
        assert_eq!(
            vv.advance(n(1)),
            Dot {
                replica: n(1),
                counter: 1
            }
        );
        assert_eq!(
            vv.advance(n(1)),
            Dot {
                replica: n(1),
                counter: 2
            }
        );
        assert_eq!(
            vv.advance(n(2)),
            Dot {
                replica: n(2),
                counter: 1
            }
        );
        assert_eq!(vv.get(n(1)), 2);
        assert_eq!(vv.total(), 3);
        assert_eq!(vv.len(), 2);
        assert!(!vv.is_empty());
    }

    #[test]
    fn contains_and_observe() {
        let mut vv = VersionVector::new();
        let d3 = Dot {
            replica: n(1),
            counter: 3,
        };
        assert!(!vv.contains(d3));
        vv.observe(d3);
        assert!(vv.contains(Dot {
            replica: n(1),
            counter: 2
        }));
        assert!(vv.contains(d3));
        assert!(!vv.contains(Dot {
            replica: n(1),
            counter: 4
        }));
        // Observing an older dot never regresses.
        vv.observe(Dot {
            replica: n(1),
            counter: 1,
        });
        assert_eq!(vv.get(n(1)), 3);
    }

    #[test]
    fn join_is_pointwise_max_and_dominates_agrees() {
        let mut a = VersionVector::new();
        a.observe(Dot {
            replica: n(1),
            counter: 5,
        });
        a.observe(Dot {
            replica: n(2),
            counter: 1,
        });
        let mut b = VersionVector::new();
        b.observe(Dot {
            replica: n(1),
            counter: 2,
        });
        b.observe(Dot {
            replica: n(3),
            counter: 4,
        });
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        a.join(&b);
        assert_eq!(a.get(n(1)), 5);
        assert_eq!(a.get(n(2)), 1);
        assert_eq!(a.get(n(3)), 4);
        assert!(a.dominates(&b));
        assert_eq!(a.iter().count(), 3);
    }

    #[test]
    fn delta_wire_size_scales_with_contents() {
        let mut vv = VersionVector::new();
        let dot = vv.advance(n(1));
        let delta = MembershipDelta {
            vv,
            novel: vec![DottedEntry {
                dot,
                entry: MemberEntry {
                    elem: ObjectId(1),
                    home: n(9),
                },
            }],
            live: vec![dot],
        };
        assert_eq!(delta.wire_size(), 16 + 28 + 16);
        assert_eq!(MembershipDelta::default().wire_size(), 0);
    }

    #[test]
    fn dot_debug_is_compact() {
        assert_eq!(
            format!(
                "{:?}",
                Dot {
                    replica: n(3),
                    counter: 7
                }
            ),
            "3:7"
        );
    }
}
