//! The client/server message protocol.

use crate::collection::MemberEntry;
use crate::dotted::{MembershipDelta, VersionVector};
use crate::object::{CollectionId, ObjectId, ObjectRecord};
use crate::query::Query;
use crate::session::SessionToken;
use crate::wire::{self, DeltaBatch, RangeReply, RangeSummary};
use serde::{Deserialize, Serialize};

/// Requests and replies exchanged with [`crate::server::StoreServer`]s.
///
/// One enum covers both directions: the simulator's service interface is
/// `M -> M`. Servers answer unknown/ill-typed requests with
/// [`StoreMsg::BadRequest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StoreMsg {
    // ---- requests ----
    /// Fetch one object by id.
    GetObject(ObjectId),
    /// Store (or overwrite) an object.
    PutObject(ObjectRecord),
    /// Delete an object.
    DeleteObject(ObjectId),
    /// Evaluate a query over this node's local objects.
    QueryLocal(Query),
    /// Create an empty collection replica on this node.
    CreateCollection(CollectionId),
    /// Read a collection replica's membership.
    ListMembers(CollectionId),
    /// Add a member on the primary; the reply carries the new membership.
    AddMember {
        /// Target collection.
        coll: CollectionId,
        /// The member to add.
        entry: MemberEntry,
    },
    /// Remove a member on the primary; the reply carries the new
    /// membership.
    RemoveMember {
        /// Target collection.
        coll: CollectionId,
        /// The member to remove.
        elem: ObjectId,
    },
    /// Overwrite a secondary replica with a newer membership version.
    SyncMembers {
        /// Target collection.
        coll: CollectionId,
        /// Version being pushed.
        version: u64,
        /// Full membership at that version.
        members: Vec<MemberEntry>,
    },
    /// Block collection mutations (strong baseline). `token` identifies
    /// the holder.
    AcquireReadLock {
        /// Target collection.
        coll: CollectionId,
        /// Lock-holder token.
        token: u64,
    },
    /// Release a previously-acquired read lock.
    ReleaseReadLock {
        /// Target collection.
        coll: CollectionId,
        /// Lock-holder token.
        token: u64,
    },
    /// Defer member removals while held (§3.3 grow guard): the set only
    /// grows until every guard is released.
    AcquireGrowGuard {
        /// Target collection.
        coll: CollectionId,
        /// Guard-holder token.
        token: u64,
    },
    /// Release a grow guard; when the last one goes, deferred removals
    /// land ("ghost collection").
    ReleaseGrowGuard {
        /// Target collection.
        coll: CollectionId,
        /// Guard-holder token.
        token: u64,
    },

    // ---- anti-entropy gossip requests (see weakset-gossip) ----
    /// Ask a gossip replica for its digest (version vector). Plain
    /// [`crate::server::StoreServer`]s answer [`StoreMsg::BadRequest`].
    GossipDigestReq(CollectionId),
    /// Pull: "here is my digest, send me what I am missing". The reply is
    /// a [`StoreMsg::GossipDelta`] with only the uncovered dots' entries.
    GossipDeltaReq {
        /// Target collection.
        coll: CollectionId,
        /// The requester's version vector.
        digest: VersionVector,
    },
    /// Push: deliver a delta for the receiver to join into its state.
    /// The reply is the receiver's post-join digest.
    GossipPush {
        /// Target collection.
        coll: CollectionId,
        /// The sender's delta.
        delta: MembershipDelta,
    },
    /// Merkle-range reconciliation probe: "here are summaries of ranges
    /// of my live-dot key space — tell me, per range, whether yours
    /// matches, or descend/enumerate it" (see `weakset-gossip`'s
    /// `reconcile` module). The reply is a [`StoreMsg::GossipRangeResp`];
    /// plain [`crate::server::StoreServer`]s answer
    /// [`StoreMsg::BadRequest`].
    GossipRangeReq {
        /// Target collection.
        coll: CollectionId,
        /// Summaries of the ranges the requester wants compared.
        ranges: Vec<RangeSummary>,
    },
    /// Deliver the compressed outcome of a Merkle-range descent: the
    /// entries the receiver is missing and the dots it should drop. The
    /// reply is the receiver's post-apply [`StoreMsg::GossipDigest`].
    GossipDeltaBatch {
        /// Target collection.
        coll: CollectionId,
        /// The sender's batch.
        batch: DeltaBatch,
    },

    // ---- causal sessions (see crate::session) ----
    /// A request annotated with the client's session dependency vector
    /// ([`crate::client::ReadPolicy::CausalSession`]). A replica that has
    /// not yet applied the session's dependencies for the target
    /// collection answers [`StoreMsg::SessionBehind`] instead of serving
    /// stale data; otherwise it serves `inner` normally (gossip replicas
    /// wrap the reply in [`StoreMsg::SessionStamped`]).
    WithSession {
        /// The client's observed dependencies.
        session: SessionToken,
        /// The request being gated.
        inner: Box<StoreMsg>,
    },

    // ---- batching (both directions) ----
    /// Several co-located requests coalesced into one wire-level
    /// envelope (`weakset_sim::net::BatchEnvelope`). A server answers
    /// with a [`StoreMsg::BatchReply`] carrying one reply per part, in
    /// request order.
    Batch(Vec<StoreMsg>),
    /// Per-part replies to a [`StoreMsg::Batch`], in request order.
    BatchReply(Vec<StoreMsg>),

    // ---- replies ----
    /// Successful fetch.
    Object(ObjectRecord),
    /// The object does not exist on this node.
    NotFound(ObjectId),
    /// Generic success.
    Ack,
    /// Membership read or post-mutation membership.
    Members {
        /// Replica's version.
        version: u64,
        /// Membership at that version.
        entries: Vec<MemberEntry>,
    },
    /// Local query results.
    Matches(Vec<ObjectId>),
    /// The collection is read-locked; the mutation was refused.
    Locked,
    /// The collection does not exist on this node.
    NoSuchCollection(CollectionId),
    /// The request was not understood.
    BadRequest,
    /// A gossip replica's digest (reply to [`StoreMsg::GossipDigestReq`]
    /// and [`StoreMsg::GossipPush`]).
    GossipDigest {
        /// The collection the digest describes.
        coll: CollectionId,
        /// The replica's version vector.
        digest: VersionVector,
    },
    /// A gossip delta (reply to [`StoreMsg::GossipDeltaReq`]).
    GossipDelta {
        /// The collection the delta describes.
        coll: CollectionId,
        /// The replying replica's delta against the requester's digest.
        delta: MembershipDelta,
    },
    /// Per-range answers to a [`StoreMsg::GossipRangeReq`], in request
    /// order, plus the replier's digest so one round can finish the
    /// version-vector join even when every range matches.
    GossipRangeResp {
        /// The collection compared.
        coll: CollectionId,
        /// The replying replica's version vector.
        digest: VersionVector,
        /// One reply per requested range, in request order.
        ranges: Vec<RangeReply>,
    },
    /// The replica has not applied the session's dependencies for this
    /// collection yet (reply to [`StoreMsg::WithSession`]). The client
    /// redirects to another replica or waits and retries.
    SessionBehind {
        /// The collection the session read targeted.
        coll: CollectionId,
        /// The replica's current version (scalar total for gossip).
        have: u64,
        /// The session's required floor (scalar total for gossip).
        need: u64,
    },
    /// A reply from a gossip replica to a [`StoreMsg::WithSession`]
    /// request, stamped with the replica's post-apply digest so the
    /// client can fold dot-level clocks into its session token.
    SessionStamped {
        /// The replying replica's version vector for the collection.
        clock: VersionVector,
        /// The wrapped ordinary reply.
        inner: Box<StoreMsg>,
    },
}

impl StoreMsg {
    /// Approximate wire size in bytes, for bandwidth-charged simulations
    /// (`weakset_sim::world::World::set_bandwidth`). Control messages are
    /// small and constant; object and membership transfers scale with
    /// their payloads.
    pub fn wire_size(&self) -> usize {
        const HEADER: usize = 32;
        match self {
            StoreMsg::Object(rec) | StoreMsg::PutObject(rec) => {
                HEADER
                    + rec.name.len()
                    + rec.size()
                    + rec
                        .attrs
                        .iter()
                        .map(|(k, v)| k.len() + v.len())
                        .sum::<usize>()
            }
            StoreMsg::Members { entries, .. } => HEADER + entries.len() * 12,
            StoreMsg::SyncMembers { members, .. } => HEADER + members.len() * 12,
            StoreMsg::Matches(ids) => HEADER + ids.len() * 8,
            StoreMsg::GossipDeltaReq { digest, .. } | StoreMsg::GossipDigest { digest, .. } => {
                HEADER + digest.len() * 16
            }
            StoreMsg::GossipPush { delta, .. } | StoreMsg::GossipDelta { delta, .. } => {
                HEADER + delta.wire_size()
            }
            StoreMsg::GossipRangeReq { ranges, .. } => {
                HEADER + ranges.iter().map(RangeSummary::encoded_size).sum::<usize>()
            }
            StoreMsg::GossipRangeResp { digest, ranges, .. } => {
                HEADER
                    + wire::vv_encoded_size(digest)
                    + ranges.iter().map(RangeReply::encoded_size).sum::<usize>()
            }
            StoreMsg::GossipDeltaBatch { batch, .. } => HEADER + batch.encoded_size(),
            // One shared header for the whole envelope; the parts keep
            // their own sizes. Batching therefore saves (parts - 1)
            // headers of wire bytes on top of the per-message latency.
            StoreMsg::Batch(parts) | StoreMsg::BatchReply(parts) => {
                HEADER + parts.iter().map(StoreMsg::wire_size).sum::<usize>()
            }
            StoreMsg::WithSession { session, inner } => session.wire_size() + inner.wire_size(),
            StoreMsg::SessionStamped { clock, inner } => clock.len() * 16 + inner.wire_size(),
            _ => HEADER,
        }
    }
}

impl weakset_sim::net::BatchEnvelope for StoreMsg {
    fn wrap_batch(parts: Vec<Self>) -> Self {
        StoreMsg::Batch(parts)
    }

    fn unwrap_batch(self) -> Result<Vec<Self>, Self> {
        match self {
            StoreMsg::Batch(parts) | StoreMsg::BatchReply(parts) => Ok(parts),
            other => Err(other),
        }
    }
}
