//! # weakset-store
//!
//! A distributed object repository over [`weakset_sim`]: the "wide-area
//! information system" substrate that weak sets iterate over.
//!
//! The model matches the paper's Figure 2 and Section 3: a *collection*
//! object is logically one object whose membership list lives on a home
//! node (optionally with secondary replicas that can go stale), while the
//! member *objects* are scattered across other nodes. An element can
//! therefore exist (be listed) yet be inaccessible (its home node
//! partitioned away) — exactly the existence/accessibility split the
//! paper's `reachable` construct captures.
//!
//! * [`object`] — object/collection identities and records.
//! * [`server`] — the per-node store service (objects, collection
//!   replicas, read locks).
//! * [`client`] — typed client operations: primary-serialized mutations
//!   with best-effort replica sync, and [`client::ReadPolicy`] for
//!   primary/any/quorum membership reads.
//! * [`collection`] — versioned membership state with a full mutation log
//!   (the omniscient history that conformance checking replays).
//! * [`dotted`] — dots, version vectors, and membership deltas: the wire
//!   data for the `weakset-gossip` anti-entropy protocol.
//! * [`query`] — predicate queries ("all Chinese restaurant menus").
//! * [`cache`] — client-side TTL object cache.
//! * [`placement`] — policies for placing new objects on nodes.
//! * [`wire`] — compact encodings (varint + dot-list dedup) and the
//!   Merkle-range reconciliation message payloads.
//!
//! ## Example
//!
//! ```
//! use weakset_sim::prelude::*;
//! use weakset_store::prelude::*;
//!
//! let mut topo = Topology::new();
//! let me = topo.add_node("client", 0);
//! let srv = topo.add_node("server", 1);
//! let mut world = StoreWorld::new(WorldConfig::seeded(1), topo, LatencyModel::default());
//! world.install_service(srv, Box::new(StoreServer::new()));
//!
//! let client = StoreClient::new(me, SimDuration::from_millis(100));
//! let cref = CollectionRef::unreplicated(CollectionId(1), srv);
//! client.create_collection(&mut world, &cref)?;
//! client.put_object(&mut world, srv, ObjectRecord::new(ObjectId(1), "menu", &b"dim sum"[..]))?;
//! client.add_member(&mut world, &cref, MemberEntry { elem: ObjectId(1), home: srv })?;
//! let read = client.read_members(&mut world, &cref, ReadPolicy::Primary)?;
//! assert_eq!(read.entries.len(), 1);
//! # Ok::<(), weakset_store::client::StoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod collection;
pub mod dotted;
pub mod msg;
pub mod object;
pub mod placement;
pub mod query;
pub mod server;
pub mod session;
pub mod wire;

/// One-stop imports for store users.
pub mod prelude {
    pub use crate::cache::ObjectCache;
    pub use crate::client::{
        CollectionRef, MembershipRead, ReadPolicy, StoreClient, StoreError, StoreRt, StoreWorld,
    };
    pub use crate::collection::{CollectionState, MemberEntry, MembershipVersion};
    pub use crate::dotted::{Dot, DottedEntry, MembershipDelta, VersionVector};
    pub use crate::msg::StoreMsg;
    pub use crate::object::{CollectionId, ObjectId, ObjectRecord};
    pub use crate::placement::Placement;
    pub use crate::query::Query;
    pub use crate::server::StoreServer;
    pub use crate::session::SessionToken;
    pub use crate::wire::{DeltaBatch, RangeKey, RangeReply, RangeSummary};
}
