//! Client-side object caching with TTL staleness.
//!
//! The paper notes that an iterator "might keep a cached version, which is
//! a way to implement a history object", and that "cached data may be
//! stale". This cache serves both roles: iterators keep fetched objects,
//! and the TTL bounds how stale a hit can be.

use crate::object::{ObjectId, ObjectRecord};
use std::collections::HashMap;
use weakset_sim::time::{SimDuration, SimTime};

/// A TTL cache of object records.
#[derive(Clone, Debug)]
pub struct ObjectCache {
    ttl: SimDuration,
    entries: HashMap<ObjectId, (SimTime, ObjectRecord)>,
    hits: u64,
    misses: u64,
}

impl ObjectCache {
    /// A cache whose entries expire `ttl` after insertion.
    pub fn new(ttl: SimDuration) -> Self {
        ObjectCache {
            ttl,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A cache whose entries never expire.
    pub fn unbounded() -> Self {
        Self::new(SimDuration::MAX)
    }

    /// Looks up an unexpired entry.
    pub fn get(&mut self, now: SimTime, id: ObjectId) -> Option<&ObjectRecord> {
        let fresh = match self.entries.get(&id) {
            Some((at, _)) => now.saturating_since(*at) <= self.ttl,
            None => false,
        };
        if fresh {
            self.hits += 1;
            self.entries.get(&id).map(|(_, rec)| rec)
        } else {
            self.misses += 1;
            self.entries.remove(&id);
            None
        }
    }

    /// Inserts (or refreshes) an entry.
    pub fn put(&mut self, now: SimTime, rec: ObjectRecord) {
        self.entries.insert(rec.id, (now, rec));
    }

    /// Removes an entry.
    pub fn invalidate(&mut self, id: ObjectId) {
        self.entries.remove(&id);
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of resident entries (including possibly-expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> ObjectRecord {
        ObjectRecord::new(ObjectId(id), format!("o{id}"), &b""[..])
    }

    #[test]
    fn hit_within_ttl() {
        let mut c = ObjectCache::new(SimDuration::from_millis(10));
        c.put(SimTime::ZERO, rec(1));
        assert!(c.get(SimTime::from_millis(5), ObjectId(1)).is_some());
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn miss_after_ttl_evicts() {
        let mut c = ObjectCache::new(SimDuration::from_millis(10));
        c.put(SimTime::ZERO, rec(1));
        assert!(c.get(SimTime::from_millis(11), ObjectId(1)).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn unknown_id_is_miss() {
        let mut c = ObjectCache::new(SimDuration::from_millis(10));
        assert!(c.get(SimTime::ZERO, ObjectId(9)).is_none());
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn put_refreshes_age() {
        let mut c = ObjectCache::new(SimDuration::from_millis(10));
        c.put(SimTime::ZERO, rec(1));
        c.put(SimTime::from_millis(8), rec(1));
        assert!(c.get(SimTime::from_millis(15), ObjectId(1)).is_some());
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = ObjectCache::unbounded();
        c.put(SimTime::ZERO, rec(1));
        c.put(SimTime::ZERO, rec(2));
        c.invalidate(ObjectId(1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn unbounded_never_expires() {
        let mut c = ObjectCache::unbounded();
        c.put(SimTime::ZERO, rec(1));
        assert!(c.get(SimTime::from_secs(1_000_000), ObjectId(1)).is_some());
    }
}
