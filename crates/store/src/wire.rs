//! Compact wire encoding for anti-entropy metadata: varints, dot lists
//! with per-replica dedup, and the Merkle-range reconciliation messages.
//!
//! The simulator never serializes messages to real bytes — they travel
//! as Rust values — but the *accounting* must still be honest: gossip
//! charges `gossip.digest_bytes` / `gossip.delta_bytes` with the size
//! each payload would occupy in the canonical encoding defined here.
//!
//! The encoding:
//!
//! * integers are LEB128 varints ([`varint_len`]);
//! * a dot list is grouped by replica — the `NodeId` is written once per
//!   group, followed by the group's counters delta-encoded in ascending
//!   order ([`dots_encoded_size`]) — so a million dots minted by a
//!   handful of replicas cost about one varint each, not 16 bytes;
//! * a version vector is its `(replica, counter)` pairs as varints
//!   ([`vv_encoded_size`]);
//! * a member entry payload is its element id and home node as varints.
//!
//! The same rules size both the classic [`MembershipDelta`] exchange and
//! the [`DeltaBatch`] / range-digest messages used by
//! `weakset-gossip`'s `DigestMode::MerkleRange` reconciliation.

use crate::dotted::{Dot, DottedEntry, MembershipDelta, VersionVector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use weakset_sim::node::NodeId;

/// Bytes a LEB128 varint of `v` occupies (1–10).
pub fn varint_len(v: u64) -> usize {
    ((64 - v.max(1).leading_zeros()) as usize).div_ceil(7)
}

/// Encoded size of a version vector: a length varint plus one
/// `(replica, counter)` varint pair per slot.
pub fn vv_encoded_size(vv: &VersionVector) -> usize {
    varint_len(vv.len() as u64)
        + vv.iter()
            .map(|(r, n)| varint_len(r.0 as u64) + varint_len(n))
            .sum::<usize>()
}

/// Encoded size of a dot list, grouped by replica and delta-encoded:
/// per group one replica varint, one count varint, then each counter as
/// a varint of its distance from the previous counter in the group.
pub fn dots_encoded_size(dots: impl IntoIterator<Item = Dot>) -> usize {
    let mut groups: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
    for d in dots {
        groups.entry(d.replica).or_default().push(d.counter);
    }
    let mut size = varint_len(groups.len() as u64);
    for (replica, mut counters) in groups {
        counters.sort_unstable();
        size += varint_len(replica.0 as u64) + varint_len(counters.len() as u64);
        let mut prev = 0u64;
        for c in counters {
            size += varint_len(c - prev);
            prev = c;
        }
    }
    size
}

/// Encoded size of a dotted-entry list: the dots as a deduped list plus
/// each entry's element id and home node.
pub fn entries_encoded_size(entries: &[DottedEntry]) -> usize {
    dots_encoded_size(entries.iter().map(|e| e.dot))
        + entries
            .iter()
            .map(|e| varint_len(e.entry.elem.0) + varint_len(e.entry.home.0 as u64))
            .sum::<usize>()
}

/// Encoded size of a full digest-then-delta payload: the sender's
/// vector, the novel entries, and the live-dot list.
pub fn delta_encoded_size(delta: &MembershipDelta) -> usize {
    vv_encoded_size(&delta.vv)
        + entries_encoded_size(&delta.novel)
        + dots_encoded_size(delta.live.iter().copied())
}

/// One aligned range of the 64-bit dot-key space: the keys whose top
/// `depth` bits equal `prefix`'s. Depth 0 is the whole space; each
/// level of the reconciliation tree extends the prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RangeKey {
    /// The shared key prefix, left-aligned (low bits are zero).
    pub prefix: u64,
    /// How many leading bits of `prefix` are significant (0–64).
    pub depth: u8,
}

impl RangeKey {
    /// The whole key space.
    pub const ROOT: RangeKey = RangeKey {
        prefix: 0,
        depth: 0,
    };

    /// First key in the range.
    pub fn lo(&self) -> u64 {
        self.prefix
    }

    /// Last key in the range (inclusive — the range `[lo, hi]` cannot
    /// overflow the way a half-open bound at `u64::MAX` would).
    pub fn hi(&self) -> u64 {
        if self.depth >= 64 {
            self.prefix
        } else {
            self.prefix | (u64::MAX >> self.depth)
        }
    }

    /// True when `key` falls inside the range.
    pub fn contains(&self, key: u64) -> bool {
        self.lo() <= key && key <= self.hi()
    }

    /// The `2^bits` aligned subranges at `depth + bits`. Empty when the
    /// split would exceed 64 bits of depth.
    pub fn split(&self, bits: u8) -> Vec<RangeKey> {
        let depth = self.depth.saturating_add(bits);
        if depth > 64 {
            return Vec::new();
        }
        let step = if depth == 64 { 1 } else { 1u64 << (64 - depth) };
        (0..(1u64 << bits))
            .map(|i| RangeKey {
                prefix: self.prefix + i * step,
                depth,
            })
            .collect()
    }

    /// Encoded size: prefix plus depth varints.
    pub fn encoded_size(&self) -> usize {
        varint_len(self.prefix) + varint_len(self.depth as u64)
    }
}

/// A fingerprint of one range of a replica's live-dot set: the dot
/// count plus an order-independent XOR hash. Two replicas whose
/// summaries agree hold identical live dots in the range (up to hash
/// collision); a mismatch is descended, not shipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeSummary {
    /// The range summarized.
    pub key: RangeKey,
    /// Live dots in the range.
    pub count: u64,
    /// XOR of the per-dot hashes in the range.
    pub hash: u64,
}

impl RangeSummary {
    /// Encoded size: the range key, count, and hash.
    pub fn encoded_size(&self) -> usize {
        self.key.encoded_size() + varint_len(self.count) + 8
    }
}

/// A replica's answer for one queried range of a
/// [`crate::msg::StoreMsg::GossipRangeReq`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RangeReply {
    /// The replica's summary matches the requester's: identical
    /// subtrees, nothing to do.
    Match(RangeKey),
    /// Mismatch on a populous range: the replica's summaries for the
    /// range's subranges, for the requester to descend.
    Split(Vec<RangeSummary>),
    /// Mismatch on a small range: the replica's live entries in it,
    /// dots and member payloads both (so the requester can adopt
    /// missing adds without another round trip).
    Leaf {
        /// The range enumerated.
        key: RangeKey,
        /// Every live entry the replica holds in the range.
        entries: Vec<DottedEntry>,
    },
}

impl RangeReply {
    /// Encoded size of the reply (a one-byte tag plus the payload).
    pub fn encoded_size(&self) -> usize {
        1 + match self {
            RangeReply::Match(key) => key.encoded_size(),
            RangeReply::Split(children) => {
                varint_len(children.len() as u64)
                    + children
                        .iter()
                        .map(RangeSummary::encoded_size)
                        .sum::<usize>()
            }
            RangeReply::Leaf { key, entries } => key.encoded_size() + entries_encoded_size(entries),
        }
    }
}

/// The final leg of a Merkle-range reconciliation: everything one side
/// learned the other is missing, compressed. Unlike a
/// [`MembershipDelta`] it never carries the full live-dot list — only
/// the entries to adopt and the dots to drop, each proportional to the
/// symmetric difference the descent located.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaBatch {
    /// The sender's full version vector (the receiver joins it; it also
    /// certifies every dot in `drop` as observed by the sender).
    pub vv: VersionVector,
    /// Entries live at the sender that the receiver was missing.
    pub novel: Vec<DottedEntry>,
    /// Dots live at the receiver that the sender observed and removed.
    pub drop: Vec<Dot>,
}

impl DeltaBatch {
    /// True when applying the batch would change nothing.
    pub fn is_empty(&self) -> bool {
        self.novel.is_empty() && self.drop.is_empty() && self.vv.is_empty()
    }

    /// Encoded size: vector, novel entries, and the drop-dot list.
    pub fn encoded_size(&self) -> usize {
        vv_encoded_size(&self.vv)
            + entries_encoded_size(&self.novel)
            + dots_encoded_size(self.drop.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::MemberEntry;
    use crate::object::ObjectId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn dot(r: u32, c: u64) -> Dot {
        Dot {
            replica: n(r),
            counter: c,
        }
    }

    #[test]
    fn varint_lengths_match_leb128() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(16_383), 2);
        assert_eq!(varint_len(16_384), 3);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn dot_lists_dedup_replicas_and_delta_encode_counters() {
        // 1000 consecutive dots from one replica: one group header plus
        // ~one byte per dot, nowhere near 16 bytes per dot.
        let dots: Vec<Dot> = (1..=1000).map(|c| dot(3, c)).collect();
        let size = dots_encoded_size(dots.iter().copied());
        assert!(size < 1010, "dense run encodes near 1 byte/dot: {size}");
        // The same 1000 counters spread over 1000 replicas repeat the
        // replica id every time and cost strictly more.
        let spread: Vec<Dot> = (1..=1000u64).map(|c| dot(c as u32, c)).collect();
        assert!(dots_encoded_size(spread.iter().copied()) > size);
        // Order does not matter.
        let mut rev = dots.clone();
        rev.reverse();
        assert_eq!(dots_encoded_size(rev), size);
    }

    #[test]
    fn encoded_delta_counts_removal_metadata() {
        let mut vv = VersionVector::new();
        let d1 = vv.advance(n(1));
        vv.advance(n(1)); // removal dot: no live entry
        let delta = MembershipDelta {
            vv,
            novel: vec![DottedEntry {
                dot: d1,
                entry: MemberEntry {
                    elem: ObjectId(9),
                    home: n(1),
                },
            }],
            live: vec![d1],
        };
        let full = delta_encoded_size(&delta);
        let no_live = delta_encoded_size(&MembershipDelta {
            live: Vec::new(),
            ..delta.clone()
        });
        assert!(full > no_live, "the live list costs bytes");
        assert!(full >= vv_encoded_size(&delta.vv));
    }

    #[test]
    fn range_keys_split_and_cover() {
        let root = RangeKey::ROOT;
        assert_eq!(root.lo(), 0);
        assert_eq!(root.hi(), u64::MAX);
        let kids = root.split(2);
        assert_eq!(kids.len(), 4);
        // Children tile the parent exactly.
        assert_eq!(kids[0].lo(), 0);
        for pair in kids.windows(2) {
            assert_eq!(pair[0].hi().wrapping_add(1), pair[1].lo());
        }
        assert_eq!(kids[3].hi(), u64::MAX);
        for k in &kids {
            assert!(root.contains(k.lo()) && root.contains(k.hi()));
        }
        // Max depth: singleton ranges, deeper splits refuse.
        let deep = RangeKey {
            prefix: 5,
            depth: 64,
        };
        assert_eq!(deep.lo(), deep.hi());
        assert!(deep.split(1).is_empty());
    }

    #[test]
    fn batch_encoding_scales_with_contents() {
        assert_eq!(DeltaBatch::default().encoded_size(), 3);
        assert!(DeltaBatch::default().is_empty());
        let mut vv = VersionVector::new();
        let d = vv.advance(n(2));
        let batch = DeltaBatch {
            vv,
            novel: vec![DottedEntry {
                dot: d,
                entry: MemberEntry {
                    elem: ObjectId(1),
                    home: n(2),
                },
            }],
            drop: vec![dot(3, 7)],
        };
        assert!(!batch.is_empty());
        assert!(batch.encoded_size() > DeltaBatch::default().encoded_size());
        let summary = RangeSummary {
            key: RangeKey::ROOT,
            count: 1,
            hash: 0xdead_beef,
        };
        assert!(summary.encoded_size() >= 10);
        let reply = RangeReply::Split(vec![summary]);
        assert!(reply.encoded_size() > summary.encoded_size());
    }
}
