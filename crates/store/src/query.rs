//! Predicate queries over objects.
//!
//! The paper's motivating examples are all queries: "the `.face` files of
//! everyone on CMU's home page", "papers by a particular author", "menus of
//! all Chinese restaurants". A [`Query`] is a predicate on
//! [`ObjectRecord`]s; servers evaluate it over their local objects and a
//! weak set materializes the union.

use crate::object::ObjectRecord;
use serde::{Deserialize, Serialize};

/// A predicate on object records.
///
/// ```
/// use weakset_store::prelude::*;
/// let menu = ObjectRecord::new(ObjectId(1), "golden-wok.menu", &b""[..])
///     .with_attr("cuisine", "chinese");
/// let q = Query::And(vec![
///     Query::attr("cuisine", "chinese"),
///     Query::NameSuffix(".menu".into()),
/// ]);
/// assert!(q.matches(&menu));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Matches every object.
    All,
    /// `attrs[key] == value`.
    AttrEquals {
        /// Attribute key.
        key: String,
        /// Required value.
        value: String,
    },
    /// Object name starts with the prefix.
    NamePrefix(String),
    /// Object name ends with the suffix (e.g. `".face"`).
    NameSuffix(String),
    /// Conjunction.
    And(Vec<Query>),
    /// Disjunction.
    Or(Vec<Query>),
    /// Negation.
    Not(Box<Query>),
}

impl Query {
    /// Convenience constructor for attribute equality.
    pub fn attr(key: impl Into<String>, value: impl Into<String>) -> Self {
        Query::AttrEquals {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Evaluates the predicate on one record.
    pub fn matches(&self, rec: &ObjectRecord) -> bool {
        match self {
            Query::All => true,
            Query::AttrEquals { key, value } => rec.attr(key) == Some(value.as_str()),
            Query::NamePrefix(p) => rec.name.starts_with(p.as_str()),
            Query::NameSuffix(s) => rec.name.ends_with(s.as_str()),
            Query::And(qs) => qs.iter().all(|q| q.matches(rec)),
            Query::Or(qs) => qs.iter().any(|q| q.matches(rec)),
            Query::Not(q) => !q.matches(rec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;

    fn rec() -> ObjectRecord {
        ObjectRecord::new(ObjectId(1), "golden-wok.menu", &b""[..])
            .with_attr("cuisine", "chinese")
            .with_attr("city", "pittsburgh")
    }

    #[test]
    fn all_matches_everything() {
        assert!(Query::All.matches(&rec()));
    }

    #[test]
    fn attr_equality() {
        assert!(Query::attr("cuisine", "chinese").matches(&rec()));
        assert!(!Query::attr("cuisine", "italian").matches(&rec()));
        assert!(!Query::attr("stars", "5").matches(&rec()));
    }

    #[test]
    fn name_prefix_suffix() {
        assert!(Query::NamePrefix("golden".into()).matches(&rec()));
        assert!(Query::NameSuffix(".menu".into()).matches(&rec()));
        assert!(!Query::NameSuffix(".face".into()).matches(&rec()));
    }

    #[test]
    fn boolean_combinators() {
        let q = Query::And(vec![
            Query::attr("cuisine", "chinese"),
            Query::attr("city", "pittsburgh"),
        ]);
        assert!(q.matches(&rec()));
        let q = Query::Or(vec![
            Query::attr("cuisine", "italian"),
            Query::attr("city", "pittsburgh"),
        ]);
        assert!(q.matches(&rec()));
        let q = Query::Not(Box::new(Query::attr("cuisine", "chinese")));
        assert!(!q.matches(&rec()));
        let empty_and = Query::And(vec![]);
        assert!(empty_and.matches(&rec()));
        let empty_or = Query::Or(vec![]);
        assert!(!empty_or.matches(&rec()));
    }
}
