//! Objects and their identities.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies an object (a file, a menu, a card-catalog entry, …) across
/// the whole repository.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// Identifies a collection object (a directory, a query result set, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CollectionId(pub u64);

impl fmt::Debug for CollectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CollectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A stored object: identity, a human-meaningful name, an opaque payload,
/// and string attributes that queries match on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// The object's identity.
    pub id: ObjectId,
    /// Display name, e.g. `"golden-wok-menu"` or `"wing.face"`.
    pub name: String,
    /// Payload bytes (file contents, menu text, …).
    #[serde(with = "bytes_serde")]
    pub payload: Bytes,
    /// Attributes for predicate queries, e.g. `cuisine = chinese`.
    pub attrs: BTreeMap<String, String>,
}

// Referenced by the `#[serde(with = ...)]` attribute; the vendored no-op
// serde derive does not expand code that calls these, so silence dead_code.
#[allow(dead_code)]
mod bytes_serde {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        b.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        Vec::<u8>::deserialize(d).map(Bytes::from)
    }
}

impl ObjectRecord {
    /// A record with a name and payload and no attributes.
    pub fn new(id: ObjectId, name: impl Into<String>, payload: impl Into<Bytes>) -> Self {
        ObjectRecord {
            id,
            name: name.into(),
            payload: payload.into(),
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute addition.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Reads an attribute.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Payload size in bytes.
    pub fn size(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builder() {
        let r = ObjectRecord::new(ObjectId(1), "menu", &b"noodles"[..])
            .with_attr("cuisine", "chinese")
            .with_attr("city", "pittsburgh");
        assert_eq!(r.attr("cuisine"), Some("chinese"));
        assert_eq!(r.attr("missing"), None);
        assert_eq!(r.size(), 7);
        assert_eq!(r.name, "menu");
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(ObjectId(3).to_string(), "o3");
        assert_eq!(CollectionId(4).to_string(), "c4");
        assert_eq!(format!("{:?}", ObjectId(3)), "o3");
        assert_eq!(ObjectId::from(9u64), ObjectId(9));
    }
}
