//! The per-node object store server.

use crate::collection::CollectionState;
#[cfg(test)]
use crate::collection::MemberEntry;
use crate::msg::StoreMsg;
use crate::object::{CollectionId, ObjectId, ObjectRecord};
use std::collections::{BTreeSet, HashMap};
use weakset_sim::node::NodeId;
use weakset_sim::world::{Service, ServiceCtx};

/// A node's object store: local objects plus any collection replicas
/// (primary or secondary) hosted here.
#[derive(Debug, Default)]
pub struct StoreServer {
    objects: HashMap<ObjectId, ObjectRecord>,
    collections: HashMap<CollectionId, CollectionState>,
    read_locks: HashMap<CollectionId, BTreeSet<u64>>,
    grow_guards: HashMap<CollectionId, BTreeSet<u64>>,
}

impl StoreServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-loads an object (test/workload setup without RPC traffic).
    pub fn preload_object(&mut self, rec: ObjectRecord) {
        self.objects.insert(rec.id, rec);
    }

    /// Pre-creates a collection replica (setup without RPC traffic).
    pub fn preload_collection(&mut self, id: CollectionId) -> &mut CollectionState {
        self.collections.entry(id).or_default()
    }

    /// Read access to a hosted collection replica.
    pub fn collection(&self, id: CollectionId) -> Option<&CollectionState> {
        self.collections.get(&id)
    }

    /// Number of locally-stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Reads a local object without RPC (omniscient test access).
    pub fn object(&self, id: ObjectId) -> Option<&ObjectRecord> {
        self.objects.get(&id)
    }

    /// True when someone holds a read lock on the collection.
    pub fn is_read_locked(&self, id: CollectionId) -> bool {
        self.read_locks.get(&id).is_some_and(|s| !s.is_empty())
    }

    /// True when someone holds a grow guard on the collection.
    pub fn is_grow_guarded(&self, id: CollectionId) -> bool {
        self.grow_guards.get(&id).is_some_and(|s| !s.is_empty())
    }

    /// Applies a request *locally*, bypassing the network but honouring
    /// all server-side semantics (locks, versioning, the mutation log).
    ///
    /// Scheduled environment actions in experiments use this so that a
    /// long stream of mutator events cannot recurse through the event
    /// loop; it is exactly what a co-located client would observe.
    pub fn apply(&mut self, msg: StoreMsg) -> StoreMsg {
        self.handle_msg(msg)
    }

    fn handle_msg(&mut self, msg: StoreMsg) -> StoreMsg {
        match msg {
            StoreMsg::GetObject(id) => match self.objects.get(&id) {
                Some(rec) => StoreMsg::Object(rec.clone()),
                None => StoreMsg::NotFound(id),
            },
            StoreMsg::PutObject(rec) => {
                self.objects.insert(rec.id, rec);
                StoreMsg::Ack
            }
            StoreMsg::DeleteObject(id) => {
                self.objects.remove(&id);
                StoreMsg::Ack
            }
            StoreMsg::QueryLocal(q) => {
                let mut hits: Vec<ObjectId> = self
                    .objects
                    .values()
                    .filter(|rec| q.matches(rec))
                    .map(|rec| rec.id)
                    .collect();
                hits.sort_unstable();
                StoreMsg::Matches(hits)
            }
            StoreMsg::CreateCollection(id) => {
                self.collections.entry(id).or_default();
                StoreMsg::Ack
            }
            StoreMsg::ListMembers(id) => match self.collections.get(&id) {
                Some(c) => StoreMsg::Members {
                    version: c.version(),
                    entries: c.snapshot(),
                },
                None => StoreMsg::NoSuchCollection(id),
            },
            StoreMsg::AddMember { coll, entry } => self.mutate(coll, |c| {
                c.add(entry);
            }),
            StoreMsg::RemoveMember { coll, elem } => {
                if self.is_grow_guarded(coll) {
                    // §3.3: the removal is accepted but deferred; the
                    // member lingers as a ghost until the guard releases.
                    self.mutate(coll, |c| {
                        c.defer_remove(elem);
                    })
                } else {
                    self.mutate(coll, |c| {
                        c.remove(elem);
                    })
                }
            }
            StoreMsg::SyncMembers {
                coll,
                version,
                members,
            } => match self.collections.get_mut(&coll) {
                Some(c) => {
                    c.sync_to(version, &members);
                    StoreMsg::Ack
                }
                None => StoreMsg::NoSuchCollection(coll),
            },
            StoreMsg::AcquireReadLock { coll, token } => {
                if !self.collections.contains_key(&coll) {
                    return StoreMsg::NoSuchCollection(coll);
                }
                self.read_locks.entry(coll).or_default().insert(token);
                StoreMsg::Ack
            }
            StoreMsg::ReleaseReadLock { coll, token } => {
                if let Some(holders) = self.read_locks.get_mut(&coll) {
                    holders.remove(&token);
                }
                StoreMsg::Ack
            }
            StoreMsg::AcquireGrowGuard { coll, token } => {
                if !self.collections.contains_key(&coll) {
                    return StoreMsg::NoSuchCollection(coll);
                }
                self.grow_guards.entry(coll).or_default().insert(token);
                StoreMsg::Ack
            }
            StoreMsg::ReleaseGrowGuard { coll, token } => {
                if let Some(holders) = self.grow_guards.get_mut(&coll) {
                    holders.remove(&token);
                    if holders.is_empty() {
                        // Last guard gone: collect the ghosts.
                        if let Some(c) = self.collections.get_mut(&coll) {
                            c.apply_deferred();
                        }
                    }
                }
                StoreMsg::Ack
            }
            // A session-gated request: refuse to serve a membership read
            // until this replica has applied the session's dependencies.
            // Versions are primary-serialized and replica sync ships full
            // snapshots, so `version >= floor` implies every dependency
            // has been applied here.
            StoreMsg::WithSession { session, inner } => match *inner {
                StoreMsg::ListMembers(id) => {
                    let need = session.floor(id);
                    match self.collections.get(&id) {
                        Some(c) if c.version() >= need => StoreMsg::Members {
                            version: c.version(),
                            entries: c.snapshot(),
                        },
                        Some(c) => StoreMsg::SessionBehind {
                            coll: id,
                            have: c.version(),
                            need,
                        },
                        // A replica that never heard of the collection is
                        // behind any non-trivial session.
                        None if need > 0 => StoreMsg::SessionBehind {
                            coll: id,
                            have: 0,
                            need,
                        },
                        None => StoreMsg::NoSuchCollection(id),
                    }
                }
                // Mutations and everything else are primary-serialized
                // already; the session learns the new version from the
                // ordinary reply.
                other => self.handle_msg(other),
            },
            // A batch envelope: answer each part independently, in
            // request order.
            StoreMsg::Batch(parts) => {
                StoreMsg::BatchReply(parts.into_iter().map(|p| self.handle_msg(p)).collect())
            }
            // Plain store servers do not speak the anti-entropy protocol;
            // gossip requests belong on `weakset-gossip` replica nodes.
            StoreMsg::GossipDigestReq(_)
            | StoreMsg::GossipDeltaReq { .. }
            | StoreMsg::GossipPush { .. }
            | StoreMsg::GossipRangeReq { .. }
            | StoreMsg::GossipDeltaBatch { .. } => StoreMsg::BadRequest,
            // Reply variants arriving as requests are protocol errors.
            StoreMsg::Object(_)
            | StoreMsg::NotFound(_)
            | StoreMsg::Ack
            | StoreMsg::Members { .. }
            | StoreMsg::Matches(_)
            | StoreMsg::Locked
            | StoreMsg::NoSuchCollection(_)
            | StoreMsg::BadRequest
            | StoreMsg::BatchReply(_)
            | StoreMsg::GossipDigest { .. }
            | StoreMsg::GossipDelta { .. }
            | StoreMsg::GossipRangeResp { .. }
            | StoreMsg::SessionBehind { .. }
            | StoreMsg::SessionStamped { .. } => StoreMsg::BadRequest,
        }
    }

    fn mutate(&mut self, coll: CollectionId, f: impl FnOnce(&mut CollectionState)) -> StoreMsg {
        if self.is_read_locked(coll) {
            return StoreMsg::Locked;
        }
        match self.collections.get_mut(&coll) {
            Some(c) => {
                f(c);
                StoreMsg::Members {
                    version: c.version(),
                    entries: c.snapshot(),
                }
            }
            None => StoreMsg::NoSuchCollection(coll),
        }
    }
}

impl Service<StoreMsg> for StoreServer {
    fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: StoreMsg) -> StoreMsg {
        self.handle_msg(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn entry(id: u64) -> MemberEntry {
        MemberEntry {
            elem: ObjectId(id),
            home: NodeId(0),
        }
    }

    #[test]
    fn object_lifecycle() {
        let mut s = StoreServer::new();
        let rec = ObjectRecord::new(ObjectId(1), "a", &b"x"[..]);
        assert_eq!(
            s.handle_msg(StoreMsg::PutObject(rec.clone())),
            StoreMsg::Ack
        );
        assert_eq!(
            s.handle_msg(StoreMsg::GetObject(ObjectId(1))),
            StoreMsg::Object(rec)
        );
        assert_eq!(
            s.handle_msg(StoreMsg::DeleteObject(ObjectId(1))),
            StoreMsg::Ack
        );
        assert_eq!(
            s.handle_msg(StoreMsg::GetObject(ObjectId(1))),
            StoreMsg::NotFound(ObjectId(1))
        );
    }

    #[test]
    fn collection_membership_via_messages() {
        let mut s = StoreServer::new();
        let c = CollectionId(7);
        assert_eq!(s.handle_msg(StoreMsg::CreateCollection(c)), StoreMsg::Ack);
        let r = s.handle_msg(StoreMsg::AddMember {
            coll: c,
            entry: entry(1),
        });
        assert_eq!(
            r,
            StoreMsg::Members {
                version: 1,
                entries: vec![entry(1)]
            }
        );
        let r = s.handle_msg(StoreMsg::RemoveMember {
            coll: c,
            elem: ObjectId(1),
        });
        assert_eq!(
            r,
            StoreMsg::Members {
                version: 2,
                entries: vec![]
            }
        );
    }

    #[test]
    fn missing_collection_reported() {
        let mut s = StoreServer::new();
        assert_eq!(
            s.handle_msg(StoreMsg::ListMembers(CollectionId(9))),
            StoreMsg::NoSuchCollection(CollectionId(9))
        );
    }

    #[test]
    fn read_lock_blocks_mutations() {
        let mut s = StoreServer::new();
        let c = CollectionId(1);
        s.handle_msg(StoreMsg::CreateCollection(c));
        assert_eq!(
            s.handle_msg(StoreMsg::AcquireReadLock { coll: c, token: 5 }),
            StoreMsg::Ack
        );
        assert!(s.is_read_locked(c));
        assert_eq!(
            s.handle_msg(StoreMsg::AddMember {
                coll: c,
                entry: entry(1)
            }),
            StoreMsg::Locked
        );
        s.handle_msg(StoreMsg::ReleaseReadLock { coll: c, token: 5 });
        assert!(!s.is_read_locked(c));
        assert!(matches!(
            s.handle_msg(StoreMsg::AddMember {
                coll: c,
                entry: entry(1)
            }),
            StoreMsg::Members { .. }
        ));
    }

    #[test]
    fn multiple_lock_holders() {
        let mut s = StoreServer::new();
        let c = CollectionId(1);
        s.handle_msg(StoreMsg::CreateCollection(c));
        s.handle_msg(StoreMsg::AcquireReadLock { coll: c, token: 1 });
        s.handle_msg(StoreMsg::AcquireReadLock { coll: c, token: 2 });
        s.handle_msg(StoreMsg::ReleaseReadLock { coll: c, token: 1 });
        assert!(s.is_read_locked(c));
        s.handle_msg(StoreMsg::ReleaseReadLock { coll: c, token: 2 });
        assert!(!s.is_read_locked(c));
    }

    #[test]
    fn local_query_scans_objects() {
        let mut s = StoreServer::new();
        s.preload_object(
            ObjectRecord::new(ObjectId(1), "a.menu", &b""[..]).with_attr("cuisine", "chinese"),
        );
        s.preload_object(
            ObjectRecord::new(ObjectId(2), "b.menu", &b""[..]).with_attr("cuisine", "thai"),
        );
        let r = s.handle_msg(StoreMsg::QueryLocal(Query::attr("cuisine", "chinese")));
        assert_eq!(r, StoreMsg::Matches(vec![ObjectId(1)]));
        assert_eq!(s.object_count(), 2);
    }

    #[test]
    fn sync_members_applies_to_replica() {
        let mut s = StoreServer::new();
        let c = CollectionId(2);
        s.handle_msg(StoreMsg::CreateCollection(c));
        let r = s.handle_msg(StoreMsg::SyncMembers {
            coll: c,
            version: 5,
            members: vec![entry(3)],
        });
        assert_eq!(r, StoreMsg::Ack);
        assert_eq!(s.collection(c).unwrap().version(), 5);
        assert!(s.collection(c).unwrap().contains(ObjectId(3)));
    }

    #[test]
    fn grow_guard_defers_removals_until_release() {
        let mut s = StoreServer::new();
        let c = CollectionId(1);
        s.handle_msg(StoreMsg::CreateCollection(c));
        s.handle_msg(StoreMsg::AddMember {
            coll: c,
            entry: entry(1),
        });
        s.handle_msg(StoreMsg::AddMember {
            coll: c,
            entry: entry(2),
        });
        assert_eq!(
            s.handle_msg(StoreMsg::AcquireGrowGuard { coll: c, token: 9 }),
            StoreMsg::Ack
        );
        assert!(s.is_grow_guarded(c));
        // Removal is accepted but deferred: still a member, version
        // unchanged (the set only grows).
        let r = s.handle_msg(StoreMsg::RemoveMember {
            coll: c,
            elem: ObjectId(1),
        });
        assert!(matches!(r, StoreMsg::Members { version: 2, .. }));
        assert!(s.collection(c).unwrap().contains(ObjectId(1)));
        assert_eq!(s.collection(c).unwrap().deferred().count(), 1);
        // Additions still land normally under the guard.
        s.handle_msg(StoreMsg::AddMember {
            coll: c,
            entry: entry(3),
        });
        assert_eq!(s.collection(c).unwrap().len(), 3);
        // Release: ghosts are collected.
        s.handle_msg(StoreMsg::ReleaseGrowGuard { coll: c, token: 9 });
        assert!(!s.is_grow_guarded(c));
        assert!(!s.collection(c).unwrap().contains(ObjectId(1)));
        assert_eq!(s.collection(c).unwrap().len(), 2);
    }

    #[test]
    fn multiple_grow_guards_defer_until_last_release() {
        let mut s = StoreServer::new();
        let c = CollectionId(1);
        s.handle_msg(StoreMsg::CreateCollection(c));
        s.handle_msg(StoreMsg::AddMember {
            coll: c,
            entry: entry(1),
        });
        s.handle_msg(StoreMsg::AcquireGrowGuard { coll: c, token: 1 });
        s.handle_msg(StoreMsg::AcquireGrowGuard { coll: c, token: 2 });
        s.handle_msg(StoreMsg::RemoveMember {
            coll: c,
            elem: ObjectId(1),
        });
        s.handle_msg(StoreMsg::ReleaseGrowGuard { coll: c, token: 1 });
        assert!(s.collection(c).unwrap().contains(ObjectId(1)));
        s.handle_msg(StoreMsg::ReleaseGrowGuard { coll: c, token: 2 });
        assert!(!s.collection(c).unwrap().contains(ObjectId(1)));
    }

    #[test]
    fn grow_guard_on_missing_collection() {
        let mut s = StoreServer::new();
        assert_eq!(
            s.handle_msg(StoreMsg::AcquireGrowGuard {
                coll: CollectionId(5),
                token: 1
            }),
            StoreMsg::NoSuchCollection(CollectionId(5))
        );
    }

    #[test]
    fn reply_as_request_is_bad() {
        let mut s = StoreServer::new();
        assert_eq!(s.handle_msg(StoreMsg::Ack), StoreMsg::BadRequest);
        assert_eq!(s.handle_msg(StoreMsg::Locked), StoreMsg::BadRequest);
    }

    #[test]
    fn session_gating_on_plain_replica() {
        use crate::session::SessionToken;
        let mut s = StoreServer::new();
        let c = CollectionId(1);
        s.handle_msg(StoreMsg::CreateCollection(c));
        s.handle_msg(StoreMsg::AddMember {
            coll: c,
            entry: entry(1),
        }); // version 1
        let mut tok = SessionToken::new();
        tok.observe_version(c, 3);
        let gated = |tok: &SessionToken| StoreMsg::WithSession {
            session: tok.clone(),
            inner: Box::new(StoreMsg::ListMembers(c)),
        };
        assert_eq!(
            s.handle_msg(gated(&tok)),
            StoreMsg::SessionBehind {
                coll: c,
                have: 1,
                need: 3
            }
        );
        // Once the replica catches up, the same session read succeeds.
        s.handle_msg(StoreMsg::SyncMembers {
            coll: c,
            version: 3,
            members: vec![entry(1), entry(2)],
        });
        assert!(matches!(
            s.handle_msg(gated(&tok)),
            StoreMsg::Members { version: 3, .. }
        ));
        // An empty session is satisfied by anyone; a missing collection
        // under a non-trivial session counts as "behind".
        assert!(matches!(
            s.handle_msg(StoreMsg::WithSession {
                session: SessionToken::new(),
                inner: Box::new(StoreMsg::ListMembers(CollectionId(9))),
            }),
            StoreMsg::NoSuchCollection(_)
        ));
        let mut other = SessionToken::new();
        other.observe_version(CollectionId(9), 1);
        assert_eq!(
            s.handle_msg(StoreMsg::WithSession {
                session: other,
                inner: Box::new(StoreMsg::ListMembers(CollectionId(9))),
            }),
            StoreMsg::SessionBehind {
                coll: CollectionId(9),
                have: 0,
                need: 1
            }
        );
        // Non-read inner requests pass straight through.
        assert!(matches!(
            s.handle_msg(StoreMsg::WithSession {
                session: tok,
                inner: Box::new(StoreMsg::AddMember {
                    coll: c,
                    entry: entry(5)
                }),
            }),
            StoreMsg::Members { .. }
        ));
    }

    #[test]
    fn preload_helpers() {
        let mut s = StoreServer::new();
        s.preload_collection(CollectionId(1)).add(entry(1));
        assert!(s.collection(CollectionId(1)).unwrap().contains(ObjectId(1)));
        s.preload_object(ObjectRecord::new(ObjectId(9), "x", &b""[..]));
        assert!(s.object(ObjectId(9)).is_some());
    }
}
