//! Distributed collection objects.
//!
//! A collection is "logically a single object, but physically different
//! parts of it may be scattered across many nodes" (§3). Here the
//! *membership list* lives on a home node (optionally replicated, see
//! [`crate::client`]) while the member objects themselves live wherever
//! their home nodes are — the containment structure of the paper's
//! Figure 2.
//!
//! Every mutation appends a snapshot to the collection's version log. The
//! log is the omniscient state history that conformance checking replays;
//! a real deployment would not keep it.

use crate::object::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use weakset_sim::node::NodeId;

/// One member of a collection: the element and the node its object lives
/// on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemberEntry {
    /// The member object's id.
    pub elem: ObjectId,
    /// The node holding the member object.
    pub home: NodeId,
}

/// A versioned membership snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MembershipVersion {
    /// Monotonic version number (0 = initial empty membership).
    pub version: u64,
    /// The full membership at this version.
    pub members: Vec<MemberEntry>,
}

/// The state of one collection replica (primary or secondary).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectionState {
    members: BTreeMap<ObjectId, NodeId>,
    version: u64,
    log: Vec<MembershipVersion>,
    /// Removals deferred while a grow guard is held (§3.3's "ghost"
    /// mechanism): the member stays visible until the guard releases.
    deferred: std::collections::BTreeSet<ObjectId>,
}

impl Default for CollectionState {
    fn default() -> Self {
        CollectionState::new()
    }
}

impl CollectionState {
    /// A new, empty collection at version 0.
    pub fn new() -> Self {
        CollectionState {
            members: BTreeMap::new(),
            version: 0,
            log: vec![MembershipVersion {
                version: 0,
                members: Vec::new(),
            }],
            deferred: std::collections::BTreeSet::new(),
        }
    }

    /// Current version number.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the collection has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True when `elem` is currently a member.
    pub fn contains(&self, elem: ObjectId) -> bool {
        self.members.contains_key(&elem)
    }

    /// The current membership, sorted by element id.
    pub fn snapshot(&self) -> Vec<MemberEntry> {
        self.members
            .iter()
            .map(|(&elem, &home)| MemberEntry { elem, home })
            .collect()
    }

    /// Adds a member; returns true (and bumps the version) when it was new.
    pub fn add(&mut self, entry: MemberEntry) -> bool {
        if self.members.contains_key(&entry.elem) {
            return false;
        }
        self.members.insert(entry.elem, entry.home);
        self.bump();
        true
    }

    /// Removes a member; returns true (and bumps the version) when it was
    /// present.
    pub fn remove(&mut self, elem: ObjectId) -> bool {
        if self.members.remove(&elem).is_none() {
            return false;
        }
        self.bump();
        true
    }

    /// Replaces the entire membership with a newer version (replica sync).
    /// Older or equal versions are ignored (idempotent, out-of-order safe).
    /// Returns true when applied.
    pub fn sync_to(&mut self, version: u64, members: &[MemberEntry]) -> bool {
        if version <= self.version && !(version == 0 && self.version == 0) {
            return false;
        }
        if version == self.version {
            return false;
        }
        self.members = members.iter().map(|m| (m.elem, m.home)).collect();
        self.version = version;
        self.log.push(MembershipVersion {
            version,
            members: members.to_vec(),
        });
        true
    }

    fn bump(&mut self) {
        self.version += 1;
        self.log.push(MembershipVersion {
            version: self.version,
            members: self.snapshot(),
        });
    }

    /// The full version log: membership after every change, oldest first.
    pub fn log(&self) -> &[MembershipVersion] {
        &self.log
    }

    /// The logged membership at exactly `version`, if that version was
    /// ever recorded (replica sync can skip versions). This is the lookup
    /// conformance observers use to evaluate a spec pre-state at an
    /// invocation's linearization point.
    pub fn members_at(&self, version: u64) -> Option<&[MemberEntry]> {
        self.log
            .iter()
            .find(|mv| mv.version == version)
            .map(|mv| mv.members.as_slice())
    }

    /// Defers the removal of a member (grow-guard mode, §3.3): the member
    /// remains visible as a "ghost" until [`CollectionState::apply_deferred`]
    /// runs. Returns true when the element is a member (so there is
    /// something to remove later).
    pub fn defer_remove(&mut self, elem: ObjectId) -> bool {
        if self.members.contains_key(&elem) {
            self.deferred.insert(elem);
            true
        } else {
            false
        }
    }

    /// Elements whose removal is currently deferred.
    pub fn deferred(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.deferred.iter().copied()
    }

    /// Applies every deferred removal (guard released: the ghosts are
    /// collected). Returns how many removals landed.
    pub fn apply_deferred(&mut self) -> usize {
        let pending: Vec<ObjectId> = self.deferred.iter().copied().collect();
        self.deferred.clear();
        pending.into_iter().filter(|&e| self.remove(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u64, node: u32) -> MemberEntry {
        MemberEntry {
            elem: ObjectId(id),
            home: NodeId(node),
        }
    }

    #[test]
    fn new_collection_is_empty_at_version_zero() {
        let c = CollectionState::new();
        assert!(c.is_empty());
        assert_eq!(c.version(), 0);
        assert_eq!(c.log().len(), 1);
        assert!(c.log()[0].members.is_empty());
    }

    #[test]
    fn add_bumps_version_and_logs() {
        let mut c = CollectionState::new();
        assert!(c.add(e(1, 0)));
        assert!(!c.add(e(1, 0))); // no duplicates
        assert_eq!(c.version(), 1);
        assert_eq!(c.len(), 1);
        assert!(c.contains(ObjectId(1)));
        assert_eq!(c.log().len(), 2);
    }

    #[test]
    fn remove_bumps_version() {
        let mut c = CollectionState::new();
        c.add(e(1, 0));
        assert!(c.remove(ObjectId(1)));
        assert!(!c.remove(ObjectId(1)));
        assert_eq!(c.version(), 2);
        assert!(c.is_empty());
        // Log: initial, after add, after remove.
        assert_eq!(c.log().len(), 3);
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut c = CollectionState::new();
        c.add(e(5, 0));
        c.add(e(1, 1));
        let snap = c.snapshot();
        assert_eq!(snap[0].elem, ObjectId(1));
        assert_eq!(snap[1].elem, ObjectId(5));
    }

    #[test]
    fn deferred_removals_are_ghosts_until_applied() {
        let mut c = CollectionState::new();
        c.add(e(1, 0));
        c.add(e(2, 0));
        assert!(c.defer_remove(ObjectId(1)));
        assert!(!c.defer_remove(ObjectId(9))); // not a member
        assert!(c.contains(ObjectId(1)));
        assert_eq!(c.deferred().collect::<Vec<_>>(), vec![ObjectId(1)]);
        assert_eq!(c.version(), 2); // no version bump while deferred
        assert_eq!(c.apply_deferred(), 1);
        assert!(!c.contains(ObjectId(1)));
        assert_eq!(c.version(), 3);
        assert_eq!(c.deferred().count(), 0);
        // Idempotent.
        assert_eq!(c.apply_deferred(), 0);
    }

    #[test]
    fn members_at_looks_up_logged_versions() {
        let mut c = CollectionState::new();
        c.add(e(1, 0));
        c.add(e(2, 0));
        assert_eq!(c.members_at(0), Some(&[][..]));
        assert_eq!(c.members_at(1), Some(&[e(1, 0)][..]));
        assert_eq!(c.members_at(2), Some(&[e(1, 0), e(2, 0)][..]));
        assert_eq!(c.members_at(9), None);
        // Sync can skip versions; the gap stays unknown.
        let mut s = CollectionState::new();
        s.sync_to(3, &[e(7, 1)]);
        assert_eq!(s.members_at(2), None);
        assert_eq!(s.members_at(3), Some(&[e(7, 1)][..]));
    }

    #[test]
    fn sync_applies_only_newer_versions() {
        let mut c = CollectionState::new();
        assert!(c.sync_to(3, &[e(1, 0), e(2, 0)]));
        assert_eq!(c.version(), 3);
        assert_eq!(c.len(), 2);
        // Stale sync ignored.
        assert!(!c.sync_to(2, &[e(9, 0)]));
        assert_eq!(c.len(), 2);
        // Same version ignored.
        assert!(!c.sync_to(3, &[e(9, 0)]));
        // Newer applies.
        assert!(c.sync_to(4, &[e(9, 0)]));
        assert!(c.contains(ObjectId(9)));
        assert_eq!(c.log().last().unwrap().version, 4);
    }
}
