//! # weak-sets
//!
//! Umbrella crate for the reproduction of Wing & Steere, *Specifying Weak
//! Sets* (ICDCS 1995). Re-exports every sub-crate; see the README for the
//! architecture and `examples/` for runnable walkthroughs.

#![forbid(unsafe_code)]

pub use weakset;
pub use weakset_fs;
pub use weakset_gossip;
pub use weakset_obs;
pub use weakset_runtime;
pub use weakset_sim;
pub use weakset_spec;
pub use weakset_store;

/// Everything most programs need.
pub mod prelude {
    pub use weakset::prelude::*;
    pub use weakset_fs::prelude::*;
    pub use weakset_gossip::prelude::*;
    pub use weakset_obs::prelude::*;
    pub use weakset_runtime::prelude::*;
    pub use weakset_sim::prelude::*;
    pub use weakset_spec::prelude::*;
    pub use weakset_store::prelude::*;
}
